//! TCP transport: length-prefixed frames over real sockets.
//!
//! This is the deployment transport — a librarian process listens on a
//! socket, a receptionist connects. Frames are `u32` little-endian
//! length + encoded [`Message`] (see [`crate::wire`] for the framing
//! rules). One connection carries either sequential request/response
//! exchanges (plain frames, answered in order — the paper's
//! "librarian-to-receptionist session" model) or correlated multiplexed
//! frames pipelined by [`crate::mux::MuxTransport`], answered in
//! completion order.
//!
//! The server couples a nonblocking accept loop with one reader thread
//! per connection and a **bounded worker pool**: readers decode frames
//! off the socket and enqueue correlated requests on a bounded job
//! queue; workers pull jobs, run the service, and write replies under a
//! per-connection writer lock (replies to different correlation ids may
//! interleave). When the queue is full the readers block, which stops
//! them draining their sockets, which backpressures clients through
//! TCP's own flow control — load shedding without unbounded thread
//! growth. Plain frames are handled on the reader thread itself, which
//! preserves their strict per-connection ordering.

use crate::message::Message;
use crate::transport::{AtomicTrafficStats, Service, TrafficStats, Transport};
use crate::wire::{envelope_v1, mux_envelope, read_frame, split_envelope, write_frame, MUX_V1_TAG};
use crate::NetError;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use teraphim_obs::{EventKind, ServerTimings, SpanContext, TraceSink};

/// Saturating microseconds for span timing.
fn elapsed_micros(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Socket configuration applied uniformly to every client connection:
/// one knob each for connect, read and write, all optional. `Nagle` is
/// always disabled — the protocol's exchanges are small and
/// latency-sensitive, so coalescing delay is never worth it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpOptions {
    /// Bound on establishing the connection; `None` blocks until the OS
    /// gives up.
    pub connect_timeout: Option<Duration>,
    /// Bound on each socket read ([`NetError::Timeout`] on expiry).
    pub read_timeout: Option<Duration>,
    /// Bound on each socket write ([`NetError::Timeout`] on expiry).
    pub write_timeout: Option<Duration>,
}

impl TcpOptions {
    /// One deadline for everything: connect, every read, every write.
    pub fn with_deadline(deadline: Duration) -> Self {
        TcpOptions {
            connect_timeout: Some(deadline),
            read_timeout: Some(deadline),
            write_timeout: Some(deadline),
        }
    }
}

/// Connects a raw stream per `options`: `TCP_NODELAY` on, timeouts
/// applied. Shared by [`TcpTransport`] and the multiplexed pool.
pub(crate) fn connect_stream(addr: SocketAddr, options: TcpOptions) -> Result<TcpStream, NetError> {
    let stream = match options.connect_timeout {
        Some(t) => TcpStream::connect_timeout(&addr, t).map_err(map_timeout_io_error)?,
        None => TcpStream::connect(addr)?,
    };
    stream.set_nodelay(true)?;
    stream.set_read_timeout(options.read_timeout)?;
    stream.set_write_timeout(options.write_timeout)?;
    Ok(stream)
}

/// A client connection to one librarian server.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    stats: TrafficStats,
    last: (u64, u64),
    trace: TraceSink,
    librarian: u32,
    last_timings: Option<ServerTimings>,
}

impl TcpTransport {
    /// Connects to a librarian server with no deadline: exchanges block
    /// until the peer answers or the connection dies.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the connection fails.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self::from_stream(stream))
    }

    /// Connects with explicit socket options — the uniform path that
    /// [`TcpTransport::connect`] and
    /// [`TcpTransport::connect_with_deadline`] both reduce to.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] if the connection cannot be
    /// established within `options.connect_timeout`, [`NetError::Io`]
    /// on other failures.
    pub fn connect_with(addr: SocketAddr, options: TcpOptions) -> Result<Self, NetError> {
        Ok(Self::from_stream(connect_stream(addr, options)?))
    }

    /// Connects with a per-operation deadline: the connect itself, and
    /// every subsequent socket read and write, must each complete within
    /// `deadline` or the request fails with [`NetError::Timeout`]. This
    /// bounds how long a dead or wedged librarian can stall a fan-out.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] if the connection cannot be
    /// established in time, [`NetError::Io`] on other failures.
    pub fn connect_with_deadline(addr: SocketAddr, deadline: Duration) -> Result<Self, NetError> {
        Self::connect_with(addr, TcpOptions::with_deadline(deadline))
    }

    fn from_stream(stream: TcpStream) -> Self {
        TcpTransport {
            stream,
            stats: TrafficStats::default(),
            last: (0, 0),
            trace: TraceSink::disabled(),
            librarian: 0,
            last_timings: None,
        }
    }

    /// Attaches a trace sink: a socket deadline expiry records a
    /// `timeout` event tagged with `librarian`.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceSink, librarian: u32) -> Self {
        self.trace = trace;
        self.librarian = librarian;
        self
    }
}

/// Maps socket-timeout I/O errors to the typed [`NetError::Timeout`].
/// (`WouldBlock` is what Unix returns for a timed-out read on a socket
/// with `SO_RCVTIMEO`; Windows uses `TimedOut`.)
pub(crate) fn map_timeout_io_error(e: std::io::Error) -> NetError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => NetError::Timeout,
        _ => NetError::Io(e),
    }
}

/// Lifts frame-level I/O errors into typed timeouts where applicable.
pub(crate) fn map_timeout_frame_error(e: NetError) -> NetError {
    match e {
        NetError::Io(io) => map_timeout_io_error(io),
        other => other,
    }
}

impl Transport for TcpTransport {
    fn request(&mut self, request: &Message) -> Result<Message, NetError> {
        let result = self.exchange(request);
        if matches!(result, Err(NetError::Timeout)) && self.trace.is_enabled() {
            self.trace.record(EventKind::Timeout {
                librarian: self.librarian,
            });
        }
        result
    }

    fn stats(&self) -> TrafficStats {
        self.stats
    }

    fn last_exchange(&self) -> (u64, u64) {
        self.last
    }

    fn set_trace(&mut self, trace: TraceSink, librarian: u32) {
        self.trace = trace;
        self.librarian = librarian;
    }

    fn last_server_timings(&self) -> Option<ServerTimings> {
        self.last_timings
    }
}

impl TcpTransport {
    /// One length-prefixed request/response exchange over the socket.
    /// A tracing transport wraps the request in a v1 envelope carrying
    /// the span context, which asks the server to echo its phase
    /// timings; an untraced one sends the bare message, byte-for-byte
    /// the PR-wire of earlier releases. Either way only the inner
    /// message payload is counted — envelopes are framing overhead.
    fn exchange(&mut self, request: &Message) -> Result<Message, NetError> {
        self.last_timings = None;
        let encoded = request.encode();
        let span = if self.trace.is_enabled() && !request.is_admin() {
            Some(SpanContext::sampled(
                self.trace.current_trace_id(),
                self.librarian,
            ))
        } else {
            None
        };
        match &span {
            Some(span) => {
                let framed = envelope_v1(None, Some(span), None, &encoded);
                write_frame(&mut self.stream, &framed).map_err(map_timeout_frame_error)?;
            }
            None => write_frame(&mut self.stream, &encoded).map_err(map_timeout_frame_error)?,
        }
        let response_bytes = read_frame(&mut self.stream)
            .map_err(map_timeout_frame_error)?
            .ok_or(NetError::Disconnected)?;
        let env = split_envelope(&response_bytes)?;
        self.last_timings = env.timings;
        let payload = env.message;
        self.stats.round_trips += 1;
        self.stats.bytes_sent += encoded.len() as u64;
        self.stats.bytes_received += payload.len() as u64;
        self.last = (encoded.len() as u64, payload.len() as u64);
        let response = Message::decode(payload)?;
        match response {
            Message::Error { message } => Err(NetError::Remote(message)),
            Message::Unavailable { message } => Err(NetError::Unavailable(message)),
            response => Ok(response),
        }
    }
}

/// Sizing for a [`TcpServer`]'s bounded worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerOptions {
    /// Worker threads draining the correlated-request queue. Each
    /// worker is pinned to one service replica (`worker % replicas`),
    /// so concurrency across replicas needs at least as many workers.
    pub workers: usize,
    /// Bound on queued correlated requests. A full queue blocks the
    /// connection readers, which backpressures clients through TCP
    /// flow control instead of growing memory without bound.
    pub queue_depth: usize,
}

impl Default for ServerOptions {
    /// Two workers over a 128-deep queue: enough to overlap service
    /// work with socket I/O on a single replica without oversubscribing
    /// small machines.
    fn default() -> Self {
        ServerOptions {
            workers: 2,
            queue_depth: 128,
        }
    }
}

/// A correlated request waiting for a worker: the decoded-frame bytes,
/// the id to echo, the connection to answer on, and — for v1
/// envelopes — the span context it carried plus the enqueue instant,
/// so the worker can attribute queue wait.
struct Job {
    corr: u64,
    request: Vec<u8>,
    writer: Arc<Mutex<TcpStream>>,
    /// Span context carried by a v1 envelope, if any.
    span: Option<SpanContext>,
    /// Reply with a v1 envelope echoing server phase timings.
    reply_v1: bool,
    /// When the reader enqueued the job; queue wait is measured from
    /// here to the worker's pop.
    created: Instant,
}

/// A bounded MPMC queue: readers push (blocking when full), workers pop
/// (blocking when empty), `close` wakes everyone for shutdown.
struct JobQueue {
    state: Mutex<JobQueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct JobQueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(JobQueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a job, blocking while the queue is full. Returns `false`
    /// when the queue has been closed (server shutting down).
    fn push(&self, job: Job) -> bool {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while st.jobs.len() >= self.capacity && !st.closed {
            st = self
                .not_full
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if st.closed {
            return false;
        }
        st.jobs.push_back(job);
        self.not_empty.notify_one();
        true
    }

    /// Dequeues the next job, blocking while empty. Drains remaining
    /// jobs after close; returns `None` only when closed *and* empty.
    fn pop(&self) -> Option<Job> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = st.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// A running librarian server.
///
/// Dropping the handle signals shutdown and joins the accept thread and
/// worker pool.
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    traffic: Arc<AtomicTrafficStats>,
    accept_thread: Option<JoinHandle<()>>,
    queue: Arc<JobQueue>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

/// How often the nonblocking accept loop re-checks the shutdown flag
/// while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

impl TcpServer {
    /// Serves `service` on `addr` (use port 0 for an ephemeral port)
    /// with default [`ServerOptions`]. Each connection gets a reader
    /// thread; plain requests on one connection are sequential,
    /// correlated requests go through the worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the listener cannot be bound.
    pub fn spawn<S, A>(service: S, addr: A) -> Result<TcpServer, NetError>
    where
        S: Service + 'static,
        A: ToSocketAddrs,
    {
        Self::spawn_with(vec![service], addr, ServerOptions::default())
    }

    /// Serves a set of interchangeable `services` replicas on `addr`
    /// under explicit pool sizing. Every replica must answer any request
    /// identically (e.g. librarians built over the same collection):
    /// each worker is pinned to `replica = worker % replicas`, so with
    /// `workers == replicas` correlated requests run lock-free in
    /// parallel, while plain connections share replicas round-robin.
    ///
    /// # Panics
    ///
    /// Panics if `services` is empty.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the listener cannot be bound.
    pub fn spawn_with<S, A>(
        services: Vec<S>,
        addr: A,
        options: ServerOptions,
    ) -> Result<TcpServer, NetError>
    where
        S: Service + 'static,
        A: ToSocketAddrs,
    {
        assert!(!services.is_empty(), "at least one service replica");
        let replicas: Vec<Arc<Mutex<S>>> = services
            .into_iter()
            .map(|s| Arc::new(Mutex::new(s)))
            .collect();
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let traffic = Arc::new(AtomicTrafficStats::new());
        let queue = Arc::new(JobQueue::new(options.queue_depth));

        let workers: Vec<JoinHandle<()>> = (0..options.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let service = Arc::clone(&replicas[i % replicas.len()]);
                let traffic = Arc::clone(&traffic);
                std::thread::spawn(move || worker_loop(&queue, &service, &traffic))
            })
            .collect();

        let shutdown_flag = Arc::clone(&shutdown);
        let accept_traffic = Arc::clone(&traffic);
        let accept_queue = Arc::clone(&queue);
        let accept_thread = std::thread::spawn(move || {
            let mut conn_id = 0usize;
            // Nonblocking accept + short poll: shutdown needs no
            // self-connect trick and cannot be missed.
            while !shutdown_flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // The listener is nonblocking; the accepted
                        // socket must not be.
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        let service = Arc::clone(&replicas[conn_id % replicas.len()]);
                        conn_id = conn_id.wrapping_add(1);
                        let conn_shutdown = Arc::clone(&shutdown_flag);
                        let conn_traffic = Arc::clone(&accept_traffic);
                        let conn_queue = Arc::clone(&accept_queue);
                        // Connection readers are detached: they exit when
                        // their client hangs up (EOF at a frame boundary)
                        // or shutdown closes the job queue. Joining them
                        // here would stall shutdown while any client is
                        // still connected.
                        std::thread::spawn(move || {
                            let _ = serve_connection(
                                stream,
                                &service,
                                &conn_shutdown,
                                &conn_traffic,
                                &conn_queue,
                            );
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
        });
        Ok(TcpServer {
            addr,
            shutdown,
            traffic,
            accept_thread: Some(accept_thread),
            queue,
            workers,
        })
    }

    /// The bound address (with the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregate traffic served so far, across all connection threads.
    /// Directions are from the server's perspective: `bytes_received`
    /// counts requests, `bytes_sent` responses. Correlated frames are
    /// counted by their message payload only (the envelope is framing
    /// overhead), so totals mirror the clients' counters exactly.
    pub fn traffic(&self) -> TrafficStats {
        self.traffic.snapshot()
    }

    /// Signals shutdown, then joins the accept thread and worker pool.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Runs the service over one decoded request payload under a single
/// service lock, harvesting the service's scan/rank phase measurement
/// when `timed`. Returns the response and `(scan, rank)` microseconds.
fn handle_timed<S: Service>(
    payload: &[u8],
    service: &Arc<Mutex<S>>,
    timed: bool,
) -> (Message, Option<(u64, u64)>) {
    let mut svc = service.lock().unwrap_or_else(PoisonError::into_inner);
    match Message::decode(payload) {
        Ok(request) => {
            let response = svc.handle(request);
            let phases = if timed {
                svc.take_phase_timings()
            } else {
                None
            };
            (response, phases)
        }
        Err(e) => (
            Message::Error {
                message: format!("bad request: {e}"),
            },
            None,
        ),
    }
}

/// Runs the service over one decoded request payload.
fn handle_payload<S: Service>(payload: &[u8], service: &Arc<Mutex<S>>) -> Message {
    handle_timed(payload, service, false).0
}

/// Drains the job queue until closed-and-empty: decode, serve, reply
/// under the connection's writer lock. Write failures mean the client
/// is gone; the job is simply dropped.
///
/// For v1 jobs the worker is the server-side clock: queue wait is the
/// enqueue-to-pop gap, scan/rank come from the service's own phase
/// measurement, and serialize is the encode time; the reply echoes all
/// four in its envelope. Span-carrying jobs additionally hand the
/// timings back to the service (a second, brief lock) so it can keep
/// server-side totals and flight exemplars — requests without a span
/// never pay that re-lock.
fn worker_loop<S: Service>(
    queue: &JobQueue,
    service: &Arc<Mutex<S>>,
    traffic: &AtomicTrafficStats,
) {
    while let Some(job) = queue.pop() {
        let timed = job.reply_v1 || job.span.is_some();
        let queue_micros = if timed {
            elapsed_micros(job.created)
        } else {
            0
        };
        let (response, phases) = handle_timed(&job.request, service, timed);
        let encode_started = Instant::now();
        let encoded = response.encode();
        traffic.record(encoded.len() as u64, job.request.len() as u64);
        let framed = if timed {
            let (scan, rank) = phases.unwrap_or((0, 0));
            let timings = ServerTimings {
                queue_micros,
                scan_micros: scan,
                rank_micros: rank,
                serialize_micros: elapsed_micros(encode_started),
            };
            if let Some(span) = &job.span {
                service
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .note_server_timings(&timings, Some(span));
            }
            envelope_v1(Some(job.corr), None, Some(&timings), &encoded)
        } else {
            mux_envelope(job.corr, &encoded)
        };
        let mut w = job.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = write_frame(&mut *w, &framed);
    }
}

fn serve_connection<S: Service>(
    stream: TcpStream,
    service: &Arc<Mutex<S>>,
    shutdown: &AtomicBool,
    traffic: &AtomicTrafficStats,
    queue: &Arc<JobQueue>,
) -> Result<(), NetError> {
    stream.set_nodelay(true)?;
    // Workers answer correlated frames out of order while this thread
    // answers plain frames in order; the shared writer lock keeps their
    // frames from interleaving mid-write.
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let mut reader = stream;
    while let Some(frame) = read_frame(&mut reader)? {
        // A shut-down server stops serving even on live connections; the
        // client observes EOF on its next exchange.
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match split_envelope(&frame) {
            Ok(env) if env.corr.is_some() => {
                let job = Job {
                    corr: env.corr.expect("guarded"),
                    request: env.message.to_vec(),
                    writer: Arc::clone(&writer),
                    span: env.span,
                    reply_v1: frame.first() == Some(&MUX_V1_TAG),
                    created: Instant::now(),
                };
                if !queue.push(job) {
                    break; // queue closed: shutting down
                }
            }
            Ok(env) if frame.first() == Some(&MUX_V1_TAG) => {
                // A v1 envelope without a correlation id: an in-order
                // exchange that still wants span timing. Served inline
                // like a plain frame (queue wait is zero by
                // construction), replying with a v1 timings echo.
                let message = env.message.to_vec();
                let span = env.span;
                let (response, phases) = handle_timed(&message, service, true);
                let encode_started = Instant::now();
                let encoded = response.encode();
                traffic.record(encoded.len() as u64, message.len() as u64);
                let (scan, rank) = phases.unwrap_or((0, 0));
                let timings = ServerTimings {
                    queue_micros: 0,
                    scan_micros: scan,
                    rank_micros: rank,
                    serialize_micros: elapsed_micros(encode_started),
                };
                if let Some(span) = &span {
                    service
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .note_server_timings(&timings, Some(span));
                }
                let framed = envelope_v1(None, None, Some(&timings), &encoded);
                let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
                write_frame(&mut *w, &framed)?;
            }
            Ok(_) => {
                let response = handle_payload(&frame, service);
                let encoded = response.encode();
                traffic.record(encoded.len() as u64, frame.len() as u64);
                let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
                write_frame(&mut *w, &encoded)?;
            }
            Err(e) => {
                let response = Message::Error {
                    message: format!("bad request: {e}"),
                };
                let encoded = response.encode();
                traffic.record(encoded.len() as u64, frame.len() as u64);
                let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
                write_frame(&mut *w, &encoded)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::split_mux_envelope;

    struct Doubler;

    impl Service for Doubler {
        fn handle(&mut self, request: Message) -> Message {
            match request {
                Message::RankRequest { query_id, k, .. } => Message::RankResponse {
                    query_id: query_id * 2,
                    epoch: 0,
                    entries: vec![(k, 0.5)],
                },
                _ => Message::Error {
                    message: "nope".into(),
                },
            }
        }
    }

    #[test]
    fn tcp_roundtrip_on_loopback() {
        let server = TcpServer::spawn(Doubler, "127.0.0.1:0").unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        let resp = client
            .request(&Message::RankRequest {
                query_id: 21,
                k: 5,
                terms: vec![("a".into(), 1)],
            })
            .unwrap();
        assert_eq!(
            resp,
            Message::RankResponse {
                query_id: 42,
                epoch: 0,
                entries: vec![(5, 0.5)],
            }
        );
        server.shutdown();
    }

    #[test]
    fn multiple_sequential_requests_share_a_connection() {
        let server = TcpServer::spawn(Doubler, "127.0.0.1:0").unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        for i in 0..10 {
            let resp = client
                .request(&Message::RankRequest {
                    query_id: i,
                    k: 1,
                    terms: vec![],
                })
                .unwrap();
            assert!(matches!(resp, Message::RankResponse { query_id, .. } if query_id == i * 2));
        }
        assert_eq!(client.stats().round_trips, 10);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = TcpServer::spawn(Doubler, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client = TcpTransport::connect(addr).unwrap();
                    for j in 0..5 {
                        let resp = client
                            .request(&Message::RankRequest {
                                query_id: i * 100 + j,
                                k: 1,
                                terms: vec![],
                            })
                            .unwrap();
                        assert!(matches!(
                            resp,
                            Message::RankResponse { query_id, .. } if query_id == (i * 100 + j) * 2
                        ));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn server_traffic_aggregates_across_connections() {
        let server = TcpServer::spawn(Doubler, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = TcpTransport::connect(addr).unwrap();
                    for j in 0..5 {
                        client
                            .request(&Message::RankRequest {
                                query_id: j,
                                k: 1,
                                terms: vec![],
                            })
                            .unwrap();
                    }
                    client.stats()
                })
            })
            .collect();
        let mut client_total = TrafficStats::default();
        for h in handles {
            client_total.absorb(&h.join().unwrap());
        }
        let server_total = server.traffic();
        // The server counts the same exchanges, directions mirrored.
        assert_eq!(server_total.round_trips, 20);
        assert_eq!(server_total.bytes_received, client_total.bytes_sent);
        assert_eq!(server_total.bytes_sent, client_total.bytes_received);
        server.shutdown();
    }

    #[test]
    fn remote_error_surfaces_as_neterror() {
        let server = TcpServer::spawn(Doubler, "127.0.0.1:0").unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        let err = client.request(&Message::StatsRequest).unwrap_err();
        assert_eq!(err, NetError::Remote("nope".into()));
        server.shutdown();
    }

    #[test]
    fn stats_track_wire_bytes() {
        let server = TcpServer::spawn(Doubler, "127.0.0.1:0").unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        let req = Message::RankRequest {
            query_id: 1,
            k: 1,
            terms: vec![("term".into(), 2)],
        };
        client.request(&req).unwrap();
        assert_eq!(client.stats().bytes_sent, req.wire_len() as u64);
        assert!(client.stats().bytes_received > 0);
        server.shutdown();
    }

    #[test]
    fn silent_server_times_out_within_the_deadline() {
        use std::time::Instant;
        // A listener that accepts but never reads or replies.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            // Keep accepted sockets alive until the test is done.
            let mut held = Vec::new();
            while let Ok((stream, _)) = listener.accept() {
                held.push(stream);
                if !held.is_empty() {
                    std::thread::sleep(Duration::from_millis(400));
                    break;
                }
            }
        });
        let deadline = Duration::from_millis(100);
        let mut client = TcpTransport::connect_with_deadline(addr, deadline).unwrap();
        let start = Instant::now();
        let err = client
            .request(&Message::RankRequest {
                query_id: 1,
                k: 1,
                terms: vec![],
            })
            .unwrap_err();
        let elapsed = start.elapsed();
        assert_eq!(err, NetError::Timeout);
        assert!(err.is_transient());
        assert!(
            elapsed >= deadline && elapsed < deadline * 3,
            "timed out after {elapsed:?} with deadline {deadline:?}"
        );
        hold.join().unwrap();
    }

    #[test]
    fn deadline_connect_to_healthy_server_works_normally() {
        let server = TcpServer::spawn(Doubler, "127.0.0.1:0").unwrap();
        let mut client =
            TcpTransport::connect_with_deadline(server.addr(), Duration::from_secs(5)).unwrap();
        let resp = client
            .request(&Message::RankRequest {
                query_id: 3,
                k: 1,
                terms: vec![],
            })
            .unwrap();
        assert!(matches!(resp, Message::RankResponse { query_id: 6, .. }));
        server.shutdown();
    }

    #[test]
    fn unavailable_over_tcp_is_transient() {
        let server = TcpServer::spawn(
            |_req: Message| Message::Unavailable {
                message: "compacting".into(),
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        let err = client.request(&Message::StatsRequest).unwrap_err();
        assert_eq!(err, NetError::Unavailable("compacting".into()));
        assert!(err.is_transient());
        server.shutdown();
    }

    /// The old shutdown path woke the acceptor by connecting to itself,
    /// which could hang if the connect was swallowed. The nonblocking
    /// accept loop must shut down promptly even with idle clients still
    /// connected.
    #[test]
    fn shutdown_is_prompt_with_idle_connections() {
        use std::time::Instant;
        let server = TcpServer::spawn(Doubler, "127.0.0.1:0").unwrap();
        // Two idle clients hold connections open across shutdown.
        let _idle_a = TcpTransport::connect(server.addr()).unwrap();
        let _idle_b = TcpTransport::connect(server.addr()).unwrap();
        let start = Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "shutdown took {:?}",
            start.elapsed()
        );
    }

    /// Raw correlated frames over one connection: replies echo the
    /// correlation id and the worker pool serves them even when sent
    /// back-to-back without waiting.
    #[test]
    fn correlated_frames_pipeline_on_one_connection() {
        use std::collections::HashMap;
        let server = TcpServer::spawn_with(
            vec![Doubler, Doubler],
            "127.0.0.1:0",
            ServerOptions {
                workers: 2,
                queue_depth: 8,
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let n = 16u64;
        for corr in 0..n {
            let req = Message::RankRequest {
                query_id: corr as u32,
                k: 1,
                terms: vec![],
            };
            write_frame(&mut stream, &mux_envelope(corr, &req.encode())).unwrap();
        }
        let mut seen: HashMap<u64, u32> = HashMap::new();
        for _ in 0..n {
            let frame = read_frame(&mut stream).unwrap().unwrap();
            let (corr, payload) = split_mux_envelope(&frame).unwrap().unwrap();
            match Message::decode(payload).unwrap() {
                Message::RankResponse { query_id, .. } => {
                    seen.insert(corr, query_id);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Every reply routed to its request regardless of arrival order.
        assert_eq!(seen.len(), n as usize);
        for corr in 0..n {
            assert_eq!(seen[&corr], corr as u32 * 2);
        }
        assert_eq!(server.traffic().round_trips, n);
        server.shutdown();
    }

    /// Plain and correlated frames may share one connection: plain
    /// replies keep their strict ordering while correlated ones flow
    /// through the pool.
    #[test]
    fn plain_and_correlated_frames_share_a_connection() {
        let server = TcpServer::spawn(Doubler, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let rank = |id: u32| Message::RankRequest {
            query_id: id,
            k: 1,
            terms: vec![],
        };
        // A correlated request, then a plain one, without waiting.
        write_frame(&mut stream, &mux_envelope(99, &rank(7).encode())).unwrap();
        write_frame(&mut stream, &rank(8).encode()).unwrap();
        let mut plain = None;
        let mut correlated = None;
        for _ in 0..2 {
            let frame = read_frame(&mut stream).unwrap().unwrap();
            match split_mux_envelope(&frame).unwrap() {
                Some((corr, payload)) => {
                    assert_eq!(corr, 99);
                    correlated = Some(Message::decode(payload).unwrap());
                }
                None => plain = Some(Message::decode(&frame).unwrap()),
            }
        }
        assert!(
            matches!(correlated, Some(Message::RankResponse { query_id: 14, .. })),
            "{correlated:?}"
        );
        assert!(
            matches!(plain, Some(Message::RankResponse { query_id: 16, .. })),
            "{plain:?}"
        );
        server.shutdown();
    }

    /// A corrupt mux envelope answers a plain protocol error instead of
    /// killing the connection.
    #[test]
    fn corrupt_envelope_answers_an_error_frame() {
        let server = TcpServer::spawn(Doubler, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut stream, &[crate::wire::MUX_TAG]).unwrap();
        let frame = read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Message::decode(&frame).unwrap(),
            Message::Error { .. }
        ));
        server.shutdown();
    }
}
