//! TCP transport: length-prefixed frames over real sockets.
//!
//! This is the deployment transport — a librarian process listens on a
//! socket, a receptionist connects. Frames are `u32` little-endian
//! length + encoded [`Message`]. One connection carries many sequential
//! request/response exchanges, matching the paper's "librarian-to-
//! receptionist session" model (an MG process per session).

use crate::message::Message;
use crate::transport::{AtomicTrafficStats, Service, TrafficStats, Transport};
use crate::NetError;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use teraphim_obs::{EventKind, TraceSink};

/// Maximum accepted frame, guarding against corrupt length prefixes.
const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// Writes one length-prefixed frame.
fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), NetError> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, NetError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(NetError::Corrupt("frame too large"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A client connection to one librarian server.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    stats: TrafficStats,
    last: (u64, u64),
    trace: TraceSink,
    librarian: u32,
}

impl TcpTransport {
    /// Connects to a librarian server with no deadline: exchanges block
    /// until the peer answers or the connection dies.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the connection fails.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            stats: TrafficStats::default(),
            last: (0, 0),
            trace: TraceSink::disabled(),
            librarian: 0,
        })
    }

    /// Connects with a per-operation deadline: the connect itself, and
    /// every subsequent socket read and write, must each complete within
    /// `deadline` or the request fails with [`NetError::Timeout`]. This
    /// bounds how long a dead or wedged librarian can stall a fan-out.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Timeout`] if the connection cannot be
    /// established in time, [`NetError::Io`] on other failures.
    pub fn connect_with_deadline(
        addr: SocketAddr,
        deadline: std::time::Duration,
    ) -> Result<Self, NetError> {
        let stream = TcpStream::connect_timeout(&addr, deadline).map_err(map_timeout_io_error)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(deadline))?;
        stream.set_write_timeout(Some(deadline))?;
        Ok(TcpTransport {
            stream,
            stats: TrafficStats::default(),
            last: (0, 0),
            trace: TraceSink::disabled(),
            librarian: 0,
        })
    }

    /// Attaches a trace sink: a socket deadline expiry records a
    /// `timeout` event tagged with `librarian`.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceSink, librarian: u32) -> Self {
        self.trace = trace;
        self.librarian = librarian;
        self
    }
}

/// Maps socket-timeout I/O errors to the typed [`NetError::Timeout`].
/// (`WouldBlock` is what Unix returns for a timed-out read on a socket
/// with `SO_RCVTIMEO`; Windows uses `TimedOut`.)
fn map_timeout_io_error(e: std::io::Error) -> NetError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => NetError::Timeout,
        _ => NetError::Io(e),
    }
}

/// Lifts frame-level I/O errors into typed timeouts where applicable.
fn map_timeout_frame_error(e: NetError) -> NetError {
    match e {
        NetError::Io(io) => map_timeout_io_error(io),
        other => other,
    }
}

impl Transport for TcpTransport {
    fn request(&mut self, request: &Message) -> Result<Message, NetError> {
        let result = self.exchange(request);
        if matches!(result, Err(NetError::Timeout)) && self.trace.is_enabled() {
            self.trace.record(EventKind::Timeout {
                librarian: self.librarian,
            });
        }
        result
    }

    fn stats(&self) -> TrafficStats {
        self.stats
    }

    fn last_exchange(&self) -> (u64, u64) {
        self.last
    }
}

impl TcpTransport {
    /// One length-prefixed request/response exchange over the socket.
    fn exchange(&mut self, request: &Message) -> Result<Message, NetError> {
        let encoded = request.encode();
        write_frame(&mut self.stream, &encoded).map_err(map_timeout_frame_error)?;
        let response_bytes = read_frame(&mut self.stream)
            .map_err(map_timeout_frame_error)?
            .ok_or(NetError::Disconnected)?;
        self.stats.round_trips += 1;
        self.stats.bytes_sent += encoded.len() as u64;
        self.stats.bytes_received += response_bytes.len() as u64;
        self.last = (encoded.len() as u64, response_bytes.len() as u64);
        let response = Message::decode(&response_bytes)?;
        match response {
            Message::Error { message } => Err(NetError::Remote(message)),
            Message::Unavailable { message } => Err(NetError::Unavailable(message)),
            response => Ok(response),
        }
    }
}

/// A running librarian server.
///
/// Dropping the handle signals shutdown and joins the accept thread.
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    traffic: Arc<AtomicTrafficStats>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Serves `service` on `addr` (use port 0 for an ephemeral port).
    /// Each connection is handled on its own thread; requests on one
    /// connection are sequential.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the listener cannot be bound.
    pub fn spawn<S, A>(service: S, addr: A) -> Result<TcpServer, NetError>
    where
        S: Service + 'static,
        A: ToSocketAddrs,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let traffic = Arc::new(AtomicTrafficStats::new());
        let service = Arc::new(Mutex::new(service));
        let shutdown_flag = Arc::clone(&shutdown);
        let accept_traffic = Arc::clone(&traffic);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shutdown_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = Arc::clone(&service);
                let conn_shutdown = Arc::clone(&shutdown_flag);
                let conn_traffic = Arc::clone(&accept_traffic);
                // Connection threads are detached: they exit when their
                // client hangs up (EOF at a frame boundary) or shutdown
                // is signalled. Joining them here would deadlock shutdown
                // while any client is still connected.
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &service, &conn_shutdown, &conn_traffic);
                });
            }
        });
        Ok(TcpServer {
            addr,
            shutdown,
            traffic,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregate traffic served so far, across all connection threads.
    /// Directions are from the server's perspective: `bytes_received`
    /// counts requests, `bytes_sent` responses.
    pub fn traffic(&self) -> TrafficStats {
        self.traffic.snapshot()
    }

    /// Signals shutdown and joins the accept thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn serve_connection<S: Service>(
    mut stream: TcpStream,
    service: &Arc<Mutex<S>>,
    shutdown: &AtomicBool,
    traffic: &AtomicTrafficStats,
) -> Result<(), NetError> {
    stream.set_nodelay(true)?;
    while let Some(frame) = read_frame(&mut stream)? {
        // A shut-down server stops serving even on live connections; the
        // client observes EOF on its next exchange.
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let response = match Message::decode(&frame) {
            Ok(request) => service
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .handle(request),
            Err(e) => Message::Error {
                message: format!("bad request: {e}"),
            },
        };
        let encoded = response.encode();
        traffic.record(encoded.len() as u64, frame.len() as u64);
        write_frame(&mut stream, &encoded)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;

    impl Service for Doubler {
        fn handle(&mut self, request: Message) -> Message {
            match request {
                Message::RankRequest { query_id, k, .. } => Message::RankResponse {
                    query_id: query_id * 2,
                    epoch: 0,
                    entries: vec![(k, 0.5)],
                },
                _ => Message::Error {
                    message: "nope".into(),
                },
            }
        }
    }

    #[test]
    fn tcp_roundtrip_on_loopback() {
        let server = TcpServer::spawn(Doubler, "127.0.0.1:0").unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        let resp = client
            .request(&Message::RankRequest {
                query_id: 21,
                k: 5,
                terms: vec![("a".into(), 1)],
            })
            .unwrap();
        assert_eq!(
            resp,
            Message::RankResponse {
                query_id: 42,
                epoch: 0,
                entries: vec![(5, 0.5)],
            }
        );
        server.shutdown();
    }

    #[test]
    fn multiple_sequential_requests_share_a_connection() {
        let server = TcpServer::spawn(Doubler, "127.0.0.1:0").unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        for i in 0..10 {
            let resp = client
                .request(&Message::RankRequest {
                    query_id: i,
                    k: 1,
                    terms: vec![],
                })
                .unwrap();
            assert!(matches!(resp, Message::RankResponse { query_id, .. } if query_id == i * 2));
        }
        assert_eq!(client.stats().round_trips, 10);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = TcpServer::spawn(Doubler, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client = TcpTransport::connect(addr).unwrap();
                    for j in 0..5 {
                        let resp = client
                            .request(&Message::RankRequest {
                                query_id: i * 100 + j,
                                k: 1,
                                terms: vec![],
                            })
                            .unwrap();
                        assert!(matches!(
                            resp,
                            Message::RankResponse { query_id, .. } if query_id == (i * 100 + j) * 2
                        ));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn server_traffic_aggregates_across_connections() {
        let server = TcpServer::spawn(Doubler, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = TcpTransport::connect(addr).unwrap();
                    for j in 0..5 {
                        client
                            .request(&Message::RankRequest {
                                query_id: j,
                                k: 1,
                                terms: vec![],
                            })
                            .unwrap();
                    }
                    client.stats()
                })
            })
            .collect();
        let mut client_total = TrafficStats::default();
        for h in handles {
            client_total.absorb(&h.join().unwrap());
        }
        let server_total = server.traffic();
        // The server counts the same exchanges, directions mirrored.
        assert_eq!(server_total.round_trips, 20);
        assert_eq!(server_total.bytes_received, client_total.bytes_sent);
        assert_eq!(server_total.bytes_sent, client_total.bytes_received);
        server.shutdown();
    }

    #[test]
    fn remote_error_surfaces_as_neterror() {
        let server = TcpServer::spawn(Doubler, "127.0.0.1:0").unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        let err = client.request(&Message::StatsRequest).unwrap_err();
        assert_eq!(err, NetError::Remote("nope".into()));
        server.shutdown();
    }

    #[test]
    fn stats_track_wire_bytes() {
        let server = TcpServer::spawn(Doubler, "127.0.0.1:0").unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        let req = Message::RankRequest {
            query_id: 1,
            k: 1,
            terms: vec![("term".into(), 2)],
        };
        client.request(&req).unwrap();
        assert_eq!(client.stats().bytes_sent, req.wire_len() as u64);
        assert!(client.stats().bytes_received > 0);
        server.shutdown();
    }

    #[test]
    fn silent_server_times_out_within_the_deadline() {
        use std::time::{Duration, Instant};
        // A listener that accepts but never reads or replies.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            // Keep accepted sockets alive until the test is done.
            let mut held = Vec::new();
            while let Ok((stream, _)) = listener.accept() {
                held.push(stream);
                if !held.is_empty() {
                    std::thread::sleep(Duration::from_millis(400));
                    break;
                }
            }
        });
        let deadline = Duration::from_millis(100);
        let mut client = TcpTransport::connect_with_deadline(addr, deadline).unwrap();
        let start = Instant::now();
        let err = client
            .request(&Message::RankRequest {
                query_id: 1,
                k: 1,
                terms: vec![],
            })
            .unwrap_err();
        let elapsed = start.elapsed();
        assert_eq!(err, NetError::Timeout);
        assert!(err.is_transient());
        assert!(
            elapsed >= deadline && elapsed < deadline * 3,
            "timed out after {elapsed:?} with deadline {deadline:?}"
        );
        hold.join().unwrap();
    }

    #[test]
    fn deadline_connect_to_healthy_server_works_normally() {
        let server = TcpServer::spawn(Doubler, "127.0.0.1:0").unwrap();
        let mut client =
            TcpTransport::connect_with_deadline(server.addr(), std::time::Duration::from_secs(5))
                .unwrap();
        let resp = client
            .request(&Message::RankRequest {
                query_id: 3,
                k: 1,
                terms: vec![],
            })
            .unwrap();
        assert!(matches!(resp, Message::RankResponse { query_id: 6, .. }));
        server.shutdown();
    }

    #[test]
    fn unavailable_over_tcp_is_transient() {
        let server = TcpServer::spawn(
            |_req: Message| Message::Unavailable {
                message: "compacting".into(),
            },
            "127.0.0.1:0",
        )
        .unwrap();
        let mut client = TcpTransport::connect(server.addr()).unwrap();
        let err = client.request(&Message::StatsRequest).unwrap_err();
        assert_eq!(err, NetError::Unavailable("compacting".into()));
        assert!(err.is_transient());
        server.shutdown();
    }

    #[test]
    fn frame_helpers_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::Corrupt("frame too large"))
        ));
    }
}
