//! The transport abstraction and the in-process implementation.
//!
//! A [`Service`] is the server side of the protocol (a librarian); a
//! [`Transport`] is a receptionist's handle to one librarian. All
//! transports run requests through the binary codec so that
//! [`TrafficStats`] reflect true wire costs even in-process — the
//! simulation driver charges exactly these byte counts to the modelled
//! network.

use crate::message::Message;
use crate::NetError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use teraphim_obs::{EventKind, ServerTimings, SpanContext, TraceSink};

/// The server side of the protocol: anything that can answer a request.
pub trait Service: Send {
    /// Handles one request, producing a response ([`Message::Error`] for
    /// failures).
    fn handle(&mut self, request: Message) -> Message;

    /// Takes the scan/rank phase timings (microseconds) the service
    /// measured while handling its most recent request, resetting them.
    /// Services without internal phase clocks (test closures, echo
    /// stubs) return `None`; the transport then reports zeros, keeping
    /// span *structure* identical whether or not the engine measures.
    fn take_phase_timings(&mut self) -> Option<(u64, u64)> {
        None
    }

    /// Informs the service of the complete server-side timings of a
    /// handled request (queue wait and serialization are measured by
    /// the serving layer, outside [`Service::handle`]). Called only for
    /// sampled requests — ones carrying a [`SpanContext`] — so an
    /// implementation may ledger them or record a server-side flight
    /// exemplar without being on every hot path.
    fn note_server_timings(&mut self, timings: &ServerTimings, span: Option<&SpanContext>) {
        let _ = (timings, span);
    }
}

impl<F: FnMut(Message) -> Message + Send> Service for F {
    fn handle(&mut self, request: Message) -> Message {
        self(request)
    }
}

/// Cumulative traffic counters for one transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Requests issued (== round trips; the protocol is synchronous).
    pub round_trips: u64,
    /// Bytes sent (encoded requests).
    pub bytes_sent: u64,
    /// Bytes received (encoded responses).
    pub bytes_received: u64,
}

impl TrafficStats {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// Adds another transport's counters into this one.
    pub fn absorb(&mut self, other: &TrafficStats) {
        self.round_trips += other.round_trips;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
    }
}

/// Thread-safe traffic counters: the shared-accounting variant of
/// [`TrafficStats`] for paths where several threads count into one place
/// (a TCP server's connection threads, a fan-out's worker threads).
#[derive(Debug, Default)]
pub struct AtomicTrafficStats {
    round_trips: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
}

impl AtomicTrafficStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one request/response exchange.
    pub fn record(&self, sent: u64, received: u64) {
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(sent, Ordering::Relaxed);
        self.bytes_received.fetch_add(received, Ordering::Relaxed);
    }

    /// Merges a worker's locally accumulated counters.
    pub fn absorb(&self, other: &TrafficStats) {
        self.round_trips
            .fetch_add(other.round_trips, Ordering::Relaxed);
        self.bytes_sent
            .fetch_add(other.bytes_sent, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(other.bytes_received, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> TrafficStats {
        TrafficStats {
            round_trips: self.round_trips.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
        }
    }
}

/// An in-flight pipelined request issued with [`Transport::begin`],
/// completed by passing it back to [`Transport::finish`] **on the same
/// transport**.
#[derive(Debug)]
pub struct Ticket(pub(crate) TicketState);

impl Ticket {
    /// A ticket that is already dead on arrival: [`Transport::finish`]
    /// surfaces `error` without touching the wire. Transport decorators
    /// (fault injectors, chaos wrappers) use this to refuse a pipelined
    /// request at `begin` time while still forwarding healthy requests
    /// to a pipelining inner transport.
    pub fn failed(error: NetError) -> Ticket {
        Ticket(TicketState::Failed(error))
    }
}

#[derive(Debug)]
pub(crate) enum TicketState {
    /// Nothing has gone out yet: `finish` runs the full blocking
    /// exchange. Every transport gets this fallback for free, so
    /// pipelined dispatch degrades gracefully (to sequential issue
    /// order) over transports without true pipelining.
    Deferred(Message),
    /// `begin` itself failed; `finish` surfaces the error.
    Failed(NetError),
    /// Sent over a multiplexed connection; the connection's reactor
    /// thread completes it ([`crate::mux`]).
    Mux(crate::mux::MuxTicket),
}

/// A synchronous request/response channel to one librarian.
///
/// `Send` is a supertrait so that the fan-out path
/// ([`crate::fanout::dispatch`]) can hand each transport to its own
/// scoped worker thread.
pub trait Transport: Send {
    /// Sends `request` and waits for the response.
    ///
    /// # Errors
    ///
    /// Returns a [`NetError`] on transport failure or when the peer
    /// answers [`Message::Error`].
    fn request(&mut self, request: &Message) -> Result<Message, NetError>;

    /// Traffic counters accumulated so far.
    fn stats(&self) -> TrafficStats;

    /// The byte counts of the most recent request/response pair
    /// `(sent, received)`; (0, 0) before any request.
    fn last_exchange(&self) -> (u64, u64);

    /// Issues `request` without waiting for the reply. Pipelining
    /// transports (the multiplexed TCP path) put the request on the
    /// wire here; the default implementation defers the whole exchange
    /// to [`Transport::finish`], preserving `request`'s exact semantics
    /// for every existing transport and decorator.
    fn begin(&mut self, request: &Message) -> Ticket {
        Ticket(TicketState::Deferred(request.clone()))
    }

    /// Completes an exchange started by [`Transport::begin`] on this
    /// transport, blocking until the reply arrives (or the transport's
    /// deadline expires). Statistics and trace events are recorded
    /// here, exactly as a blocking `request` would have.
    ///
    /// # Errors
    ///
    /// Returns the same [`NetError`]s as [`Transport::request`], plus
    /// [`NetError::Corrupt`] if `ticket` came from a different
    /// transport.
    fn finish(&mut self, ticket: Ticket) -> Result<Message, NetError> {
        match ticket.0 {
            TicketState::Deferred(request) => self.request(&request),
            TicketState::Failed(e) => Err(e),
            TicketState::Mux(_) => Err(NetError::Corrupt("ticket finished on a foreign transport")),
        }
    }

    /// Attaches a trace sink and the librarian index this transport
    /// serves. Tracing transports record timeout events, propagate a
    /// [`SpanContext`] on sampled requests, and surface the server
    /// timings that come back; the default is a no-op so transports
    /// and decorators without tracing state remain valid. Decorators
    /// MUST forward this to their inner transport(s).
    fn set_trace(&mut self, trace: TraceSink, librarian: u32) {
        let _ = (trace, librarian);
    }

    /// The [`ServerTimings`] piggybacked on the most recent reply, if
    /// the peer sent any. `None` from transports that have not seen a
    /// timed reply — the fan-out then records zeroed server-phase
    /// events, keeping span structure identical across backends.
    /// Decorators MUST forward this to the inner transport that carried
    /// the last exchange.
    fn last_server_timings(&self) -> Option<ServerTimings> {
        None
    }
}

/// An in-process transport: requests are encoded, decoded by the service,
/// and the response encoded back — byte-faithful but without sockets.
///
/// Cloning shares the underlying service but *not* the statistics: each
/// clone counts its own traffic.
#[derive(Debug)]
pub struct InProcTransport<S: Service> {
    service: Arc<Mutex<S>>,
    stats: TrafficStats,
    last: (u64, u64),
    last_timings: Option<ServerTimings>,
    deadline: Option<std::time::Duration>,
    trace: TraceSink,
    librarian: u32,
}

impl<S: Service> InProcTransport<S> {
    /// Wraps a service.
    pub fn new(service: S) -> Self {
        InProcTransport {
            service: Arc::new(Mutex::new(service)),
            stats: TrafficStats::default(),
            last: (0, 0),
            last_timings: None,
            deadline: None,
            trace: TraceSink::disabled(),
            librarian: 0,
        }
    }

    /// Wraps an already-shared service (several receptionists talking to
    /// one librarian).
    pub fn from_shared(service: Arc<Mutex<S>>) -> Self {
        InProcTransport {
            service,
            stats: TrafficStats::default(),
            last: (0, 0),
            last_timings: None,
            deadline: None,
            trace: TraceSink::disabled(),
            librarian: 0,
        }
    }

    /// Attaches a trace sink: a deadline expiry records a `timeout`
    /// event tagged with `librarian`.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceSink, librarian: u32) -> Self {
        self.trace = trace;
        self.librarian = librarian;
        self
    }

    /// Sets a per-request deadline: if the service (queueing included)
    /// takes longer than this, the request fails with
    /// [`NetError::Timeout`]. The response, when it eventually
    /// materialises, is discarded — exactly the client's view of a
    /// read timeout on a socket, where the server may well complete the
    /// work after the client has stopped waiting.
    #[must_use]
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets or clears the per-request deadline on an existing transport.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Duration>) {
        self.deadline = deadline;
    }

    /// The per-request deadline, if one is set.
    pub fn deadline(&self) -> Option<std::time::Duration> {
        self.deadline
    }

    /// The shared service handle.
    pub fn service(&self) -> Arc<Mutex<S>> {
        Arc::clone(&self.service)
    }
}

impl<S: Service> Transport for InProcTransport<S> {
    fn request(&mut self, request: &Message) -> Result<Message, NetError> {
        let encoded = request.encode();
        // Decode on the "server side" to prove the codec carries
        // everything the service needs.
        let decoded = Message::decode(&encoded)?;
        let traced = self.trace.is_enabled();
        // Admin polls stay span-free (as on the wire transports): no
        // phase takeout, no server-side note, no timings echo. Timeout
        // events still record for any traced request.
        let sampling = traced && !request.is_admin();
        let started = std::time::Instant::now();
        let (response, phase_timings) = {
            let mut service = self.service.lock().unwrap_or_else(PoisonError::into_inner);
            let response = service.handle(decoded);
            // Only sampled requests pay for the timing takeout.
            let timings = if sampling {
                service.take_phase_timings()
            } else {
                None
            };
            (response, timings)
        };
        if let Some(deadline) = self.deadline {
            if started.elapsed() > deadline {
                // The request went out but the caller stopped waiting:
                // count what was sent, drop the late response.
                self.stats.round_trips += 1;
                self.stats.bytes_sent += encoded.len() as u64;
                self.last = (encoded.len() as u64, 0);
                self.last_timings = None;
                if traced {
                    self.trace.record(EventKind::Timeout {
                        librarian: self.librarian,
                    });
                }
                return Err(NetError::Timeout);
            }
        }
        let encode_started = std::time::Instant::now();
        let response_bytes = response.encode();
        if sampling {
            let (scan, rank) = phase_timings.unwrap_or((0, 0));
            let timings = ServerTimings {
                // In-process: no worker queue, so queue wait is truly 0.
                queue_micros: 0,
                scan_micros: scan,
                rank_micros: rank,
                serialize_micros: u64::try_from(encode_started.elapsed().as_micros())
                    .unwrap_or(u64::MAX),
            };
            self.service
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .note_server_timings(
                    &timings,
                    Some(&SpanContext::sampled(
                        self.trace.current_trace_id(),
                        self.librarian,
                    )),
                );
            self.last_timings = Some(timings);
        }
        self.stats.round_trips += 1;
        self.stats.bytes_sent += encoded.len() as u64;
        self.stats.bytes_received += response_bytes.len() as u64;
        self.last = (encoded.len() as u64, response_bytes.len() as u64);
        let response = Message::decode(&response_bytes)?;
        match response {
            Message::Error { message } => Err(NetError::Remote(message)),
            Message::Unavailable { message } => Err(NetError::Unavailable(message)),
            response => Ok(response),
        }
    }

    fn stats(&self) -> TrafficStats {
        self.stats
    }

    fn last_exchange(&self) -> (u64, u64) {
        self.last
    }

    fn set_trace(&mut self, trace: TraceSink, librarian: u32) {
        self.trace = trace;
        self.librarian = librarian;
    }

    fn last_server_timings(&self) -> Option<ServerTimings> {
        self.last_timings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A service that answers rank requests with a fixed ranking.
    struct Echo;

    impl Service for Echo {
        fn handle(&mut self, request: Message) -> Message {
            match request {
                Message::RankRequest { query_id, k, .. } => Message::RankResponse {
                    query_id,
                    epoch: 0,
                    entries: (0..k.min(3)).map(|d| (d, 1.0 / f64::from(d + 1))).collect(),
                },
                Message::StatsRequest => Message::StatsResponse {
                    num_docs: 42,
                    term_freqs: vec![],
                },
                _ => Message::Error {
                    message: "unsupported".into(),
                },
            }
        }
    }

    #[test]
    fn request_response_roundtrip() {
        let mut t = InProcTransport::new(Echo);
        let resp = t
            .request(&Message::RankRequest {
                query_id: 7,
                k: 3,
                terms: vec![("x".into(), 1)],
            })
            .unwrap();
        match resp {
            Message::RankResponse {
                query_id, entries, ..
            } => {
                assert_eq!(query_id, 7);
                assert_eq!(entries.len(), 3);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn stats_count_bytes_and_round_trips() {
        let mut t = InProcTransport::new(Echo);
        let req = Message::StatsRequest;
        let req_len = req.wire_len() as u64;
        t.request(&req).unwrap();
        t.request(&req).unwrap();
        let stats = t.stats();
        assert_eq!(stats.round_trips, 2);
        assert_eq!(stats.bytes_sent, 2 * req_len);
        assert!(stats.bytes_received > 0);
        assert_eq!(stats.total_bytes(), stats.bytes_sent + stats.bytes_received);
        let (sent, received) = t.last_exchange();
        assert_eq!(sent, req_len);
        assert!(received > 0);
    }

    #[test]
    fn remote_errors_become_neterror() {
        let mut t = InProcTransport::new(Echo);
        let err = t.request(&Message::IndexRequest).unwrap_err();
        assert_eq!(err, NetError::Remote("unsupported".into()));
        // The failed exchange is still counted (bytes did travel).
        assert_eq!(t.stats().round_trips, 1);
    }

    #[test]
    fn unavailable_becomes_transient_neterror() {
        let mut t = InProcTransport::new(|_req: Message| Message::Unavailable {
            message: "restarting".into(),
        });
        let err = t.request(&Message::StatsRequest).unwrap_err();
        assert_eq!(err, NetError::Unavailable("restarting".into()));
        assert!(err.is_transient());
    }

    #[test]
    fn deadline_times_out_slow_services() {
        use std::time::Duration;
        let mut t = InProcTransport::new(|_req: Message| {
            std::thread::sleep(Duration::from_millis(40));
            Message::StatsResponse {
                num_docs: 1,
                term_freqs: vec![],
            }
        })
        .with_deadline(Duration::from_millis(5));
        let err = t.request(&Message::StatsRequest).unwrap_err();
        assert_eq!(err, NetError::Timeout);
        assert!(err.is_transient());
        // The request went out; the response never counted.
        let stats = t.stats();
        assert_eq!(stats.round_trips, 1);
        assert!(stats.bytes_sent > 0);
        assert_eq!(stats.bytes_received, 0);
        assert_eq!(t.last_exchange().1, 0);
        // Clearing the deadline restores normal service.
        t.set_deadline(None);
        assert!(t.request(&Message::StatsRequest).is_ok());
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        use std::time::Duration;
        let mut t = InProcTransport::new(Echo).with_deadline(Duration::from_secs(5));
        assert_eq!(t.deadline(), Some(Duration::from_secs(5)));
        assert!(t.request(&Message::StatsRequest).is_ok());
    }

    #[test]
    fn closure_services_work() {
        let mut t = InProcTransport::new(|_req: Message| Message::StatsResponse {
            num_docs: 1,
            term_freqs: vec![],
        });
        let resp = t.request(&Message::StatsRequest).unwrap();
        assert!(matches!(resp, Message::StatsResponse { num_docs: 1, .. }));
    }

    #[test]
    fn shared_service_multiple_transports() {
        let t1 = InProcTransport::new(Echo);
        let mut t2 = InProcTransport::from_shared(t1.service());
        t2.request(&Message::StatsRequest).unwrap();
        // t1's stats are untouched; t2 counted its own.
        assert_eq!(t1.stats().round_trips, 0);
        assert_eq!(t2.stats().round_trips, 1);
    }

    #[test]
    fn atomic_stats_are_consistent_under_contention() {
        let shared = AtomicTrafficStats::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        shared.record(3, 7);
                    }
                });
            }
        });
        let total = shared.snapshot();
        assert_eq!(total.round_trips, 8_000);
        assert_eq!(total.bytes_sent, 24_000);
        assert_eq!(total.bytes_received, 56_000);

        let extra = TrafficStats {
            round_trips: 1,
            bytes_sent: 2,
            bytes_received: 3,
        };
        shared.absorb(&extra);
        assert_eq!(shared.snapshot().round_trips, 8_001);
        assert_eq!(shared.snapshot().total_bytes(), 80_005);
    }

    #[test]
    fn default_begin_finish_matches_blocking_request() {
        let mut t = InProcTransport::new(Echo);
        let req = Message::StatsRequest;
        let ticket = t.begin(&req);
        // Nothing went out at begin time on a non-pipelining transport.
        assert_eq!(t.stats().round_trips, 0);
        let resp = t.finish(ticket).unwrap();
        assert!(matches!(resp, Message::StatsResponse { num_docs: 42, .. }));
        assert_eq!(t.stats().round_trips, 1);
    }

    #[test]
    fn deferred_tickets_preserve_error_semantics() {
        let mut t = InProcTransport::new(Echo);
        let ticket = t.begin(&Message::IndexRequest);
        assert_eq!(
            t.finish(ticket).unwrap_err(),
            NetError::Remote("unsupported".into())
        );
    }

    #[test]
    fn traced_inproc_requests_surface_server_timings() {
        let sink = TraceSink::new();
        let mut t = InProcTransport::new(Echo);
        t.set_trace(sink.clone(), 3);
        assert_eq!(t.last_server_timings(), None);
        t.request(&Message::StatsRequest).unwrap();
        let timings = t.last_server_timings().unwrap();
        // In-process: no worker queue; Echo has no phase clocks either.
        assert_eq!(timings.queue_micros, 0);
        assert_eq!(timings.scan_micros, 0);
        assert_eq!(timings.rank_micros, 0);
        // An untraced transport skips the measurement entirely.
        let mut plain = InProcTransport::new(Echo);
        plain.request(&Message::StatsRequest).unwrap();
        assert_eq!(plain.last_server_timings(), None);
    }

    #[test]
    fn services_note_timings_for_sampled_requests_only() {
        struct Noting {
            noted: u64,
        }
        impl Service for Noting {
            fn handle(&mut self, _request: Message) -> Message {
                Message::StatsResponse {
                    num_docs: 1,
                    term_freqs: vec![],
                }
            }
            fn take_phase_timings(&mut self) -> Option<(u64, u64)> {
                Some((11, 22))
            }
            fn note_server_timings(&mut self, timings: &ServerTimings, span: Option<&SpanContext>) {
                assert_eq!(timings.scan_micros, 11);
                assert_eq!(timings.rank_micros, 22);
                assert!(span.is_some_and(|s| s.is_sampled()));
                self.noted += 1;
            }
        }
        let mut t = InProcTransport::new(Noting { noted: 0 });
        t.request(&Message::StatsRequest).unwrap();
        {
            let service = t.service();
            assert_eq!(service.lock().unwrap().noted, 0, "untraced: never noted");
        }
        t.set_trace(TraceSink::new(), 0);
        t.request(&Message::StatsRequest).unwrap();
        let timings = t.last_server_timings().unwrap();
        assert_eq!((timings.scan_micros, timings.rank_micros), (11, 22));
        let service = t.service();
        assert_eq!(service.lock().unwrap().noted, 1);
    }

    #[test]
    fn absorb_combines_counters() {
        let mut a = TrafficStats {
            round_trips: 1,
            bytes_sent: 10,
            bytes_received: 20,
        };
        let b = TrafficStats {
            round_trips: 2,
            bytes_sent: 5,
            bytes_received: 1,
        };
        a.absorb(&b);
        assert_eq!(a.round_trips, 3);
        assert_eq!(a.bytes_sent, 15);
        assert_eq!(a.bytes_received, 21);
    }
}
