//! Primitive wire encodings: little-endian integers, v-byte lengths,
//! length-prefixed byte strings.
//!
//! Variable-length integers use the v-byte code from
//! `teraphim-compress`, so small values (doc ids, list lengths, k) cost
//! one byte — the protocol's sizes faithfully reflect "document
//! identifiers are only a few bytes each".

use crate::NetError;
use teraphim_compress::codes::{read_vbyte, write_vbyte};

/// Appends a variable-length unsigned integer.
pub fn put_uint(out: &mut Vec<u8>, v: u64) {
    write_vbyte(out, v);
}

/// Reads a variable-length unsigned integer.
///
/// # Errors
///
/// Returns [`NetError::Corrupt`] on truncation or overflow.
pub fn get_uint(buf: &[u8], pos: &mut usize) -> Result<u64, NetError> {
    read_vbyte(buf, pos).map_err(|_| NetError::Corrupt("varint"))
}

/// Appends an `f64` as its little-endian bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Reads an `f64`.
///
/// # Errors
///
/// Returns [`NetError::Corrupt`] on truncation.
pub fn get_f64(buf: &[u8], pos: &mut usize) -> Result<f64, NetError> {
    let slice = buf
        .get(*pos..*pos + 8)
        .ok_or(NetError::Corrupt("f64 truncated"))?;
    *pos += 8;
    Ok(f64::from_bits(u64::from_le_bytes(
        slice.try_into().expect("8 bytes"),
    )))
}

/// Appends a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_uint(out, v.len() as u64);
    out.extend_from_slice(v);
}

/// Reads a length-prefixed byte string.
///
/// # Errors
///
/// Returns [`NetError::Corrupt`] on truncation or an absurd length.
pub fn get_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8], NetError> {
    let len = get_uint(buf, pos)? as usize;
    let slice = buf
        .get(*pos..*pos + len)
        .ok_or(NetError::Corrupt("bytes truncated"))?;
    *pos += len;
    Ok(slice)
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
///
/// # Errors
///
/// Returns [`NetError::Corrupt`] on truncation or invalid UTF-8.
pub fn get_str(buf: &[u8], pos: &mut usize) -> Result<String, NetError> {
    let bytes = get_bytes(buf, pos)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| NetError::Corrupt("string not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_roundtrip() {
        let mut out = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            put_uint(&mut out, v);
        }
        let mut pos = 0;
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            assert_eq!(get_uint(&out, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, out.len());
    }

    #[test]
    fn small_uints_are_one_byte() {
        let mut out = Vec::new();
        put_uint(&mut out, 42);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn f64_roundtrip_bit_exact() {
        let mut out = Vec::new();
        for v in [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, f64::NAN] {
            put_f64(&mut out, v);
        }
        let mut pos = 0;
        for v in [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, f64::NAN] {
            let got = get_f64(&out, &mut pos).unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn bytes_and_strings_roundtrip() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"hello");
        put_str(&mut out, "wörld");
        put_bytes(&mut out, b"");
        let mut pos = 0;
        assert_eq!(get_bytes(&out, &mut pos).unwrap(), b"hello");
        assert_eq!(get_str(&out, &mut pos).unwrap(), "wörld");
        assert_eq!(get_bytes(&out, &mut pos).unwrap(), b"");
    }

    #[test]
    fn truncation_is_detected() {
        let mut out = Vec::new();
        put_str(&mut out, "hello world");
        for cut in 0..out.len() {
            let mut pos = 0;
            assert!(get_str(&out[..cut], &mut pos).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut out = Vec::new();
        put_bytes(&mut out, &[0xFF, 0xFE]);
        let mut pos = 0;
        assert_eq!(
            get_str(&out, &mut pos),
            Err(NetError::Corrupt("string not UTF-8"))
        );
    }
}
