//! Primitive wire encodings: little-endian integers, v-byte lengths,
//! length-prefixed byte strings — and the stream framing built on them.
//!
//! Variable-length integers use the v-byte code from
//! `teraphim-compress`, so small values (doc ids, list lengths, k) cost
//! one byte — the protocol's sizes faithfully reflect "document
//! identifiers are only a few bytes each".
//!
//! # Framing
//!
//! Streams carry length-prefixed frames: a `u32` little-endian payload
//! length followed by the payload ([`write_frame`] / [`read_frame`]).
//! Two payload shapes share every stream:
//!
//! * a *plain* payload — one encoded [`crate::message::Message`],
//!   answered in order on the same connection;
//! * a *multiplexed* payload — the [`MUX_TAG`] marker byte, a v-byte
//!   correlation id, then the encoded message. Correlated replies may
//!   return in any order; the id routes each reply back to the exchange
//!   that issued it, which is what lets hundreds of in-flight queries
//!   pipeline over one connection.
//!
//! The marker byte cannot collide with a plain payload because message
//! tags are small constants (well below [`MUX_TAG`]).

use crate::NetError;
use std::io::{Read, Write};
use teraphim_compress::codes::{read_vbyte, write_vbyte};
use teraphim_obs::{ServerTimings, SpanContext};

/// Appends a variable-length unsigned integer.
pub fn put_uint(out: &mut Vec<u8>, v: u64) {
    write_vbyte(out, v);
}

/// Reads a variable-length unsigned integer.
///
/// # Errors
///
/// Returns [`NetError::Corrupt`] on truncation or overflow.
pub fn get_uint(buf: &[u8], pos: &mut usize) -> Result<u64, NetError> {
    read_vbyte(buf, pos).map_err(|_| NetError::Corrupt("varint"))
}

/// Appends an `f64` as its little-endian bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Reads an `f64`.
///
/// # Errors
///
/// Returns [`NetError::Corrupt`] on truncation.
pub fn get_f64(buf: &[u8], pos: &mut usize) -> Result<f64, NetError> {
    let slice = buf
        .get(*pos..*pos + 8)
        .ok_or(NetError::Corrupt("f64 truncated"))?;
    *pos += 8;
    Ok(f64::from_bits(u64::from_le_bytes(
        slice.try_into().expect("8 bytes"),
    )))
}

/// Appends a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_uint(out, v.len() as u64);
    out.extend_from_slice(v);
}

/// Reads a length-prefixed byte string.
///
/// # Errors
///
/// Returns [`NetError::Corrupt`] on truncation or an absurd length.
pub fn get_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8], NetError> {
    let len = get_uint(buf, pos)? as usize;
    let slice = buf
        .get(*pos..*pos + len)
        .ok_or(NetError::Corrupt("bytes truncated"))?;
    *pos += len;
    Ok(slice)
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
///
/// # Errors
///
/// Returns [`NetError::Corrupt`] on truncation or invalid UTF-8.
pub fn get_str(buf: &[u8], pos: &mut usize) -> Result<String, NetError> {
    let bytes = get_bytes(buf, pos)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| NetError::Corrupt("string not UTF-8"))
}

/// Maximum accepted frame, guarding against corrupt length prefixes.
pub const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// Marks a frame payload as multiplexed: [`MUX_TAG`], a v-byte
/// correlation id, then the encoded message. Plain payloads start with
/// a message tag, all of which are far smaller than this value.
pub const MUX_TAG: u8 = 0x80;

/// Writes one length-prefixed frame. The prefix and payload go out in a
/// single `write_all` so that, with `TCP_NODELAY` set, a small exchange
/// costs one packet rather than two.
///
/// # Errors
///
/// Returns [`NetError::Io`] on write failure.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), NetError> {
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary. Short reads mid-frame are retried by `read_exact`, so a
/// frame split across arbitrarily many TCP segments reassembles
/// correctly.
///
/// # Errors
///
/// Returns [`NetError::Io`] on read failure or EOF mid-frame, and
/// [`NetError::Corrupt`] when the length prefix exceeds [`MAX_FRAME`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, NetError> {
    // Read the prefix byte-wise: `read_exact` reports the same
    // `UnexpectedEof` for zero bytes (clean close) and a torn prefix
    // (peer died mid-write), but only the former is a frame boundary.
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < len_buf.len() {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid frame header",
                )
                .into())
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(NetError::Corrupt("frame too large"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Marks a frame payload as a *versioned* envelope: [`MUX_V1_TAG`], a
/// version/flags byte, then the optional sections the flags announce
/// (correlation id, [`SpanContext`], [`ServerTimings`]) and the encoded
/// message. Like [`MUX_TAG`], the marker cannot collide with a plain
/// payload — message tags are far smaller.
///
/// The fixed v0 layout (PR 6) had no room to grow: any new field would
/// have silently broken old peers. The v1 envelope carries an explicit
/// version nibble (readers reject versions they do not know, instead of
/// misparsing) and a flags nibble (each optional section is announced,
/// so a request without trace context costs zero extra bytes).
pub const MUX_V1_TAG: u8 = 0x81;

/// v1 envelope version nibble (shifted into the high half of the
/// version/flags byte).
pub const ENVELOPE_VERSION: u8 = 1;

/// v1 flag: the envelope carries a v-byte correlation id.
pub const ENV_CORR: u8 = 1;
/// v1 flag: the envelope carries a [`SpanContext`].
pub const ENV_SPAN: u8 = 1 << 1;
/// v1 flag: the envelope carries [`ServerTimings`] (replies only).
pub const ENV_TIMINGS: u8 = 1 << 2;

/// A parsed frame payload: the envelope's optional sections plus the
/// inner message bytes. Plain payloads parse with every option `None`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope<'a> {
    /// Correlation id, for multiplexed exchanges.
    pub corr: Option<u64>,
    /// Trace context propagated by the client (requests).
    pub span: Option<SpanContext>,
    /// Server-side phase timings piggybacked by the server (replies).
    pub timings: Option<ServerTimings>,
    /// The encoded inner message.
    pub message: &'a [u8],
}

impl<'a> Envelope<'a> {
    /// A plain payload: no envelope sections, the whole payload is the
    /// message.
    #[must_use]
    pub fn plain(message: &'a [u8]) -> Self {
        Envelope {
            corr: None,
            span: None,
            timings: None,
            message,
        }
    }
}

/// Builds a multiplexed frame payload: [`MUX_TAG`], the correlation id,
/// the encoded message.
pub fn mux_envelope(corr: u64, message: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 9 + message.len());
    out.push(MUX_TAG);
    put_uint(&mut out, corr);
    out.extend_from_slice(message);
    out
}

/// Appends a [`SpanContext`] in its wire form (defined here rather than
/// in `teraphim-obs`, which knows nothing about wire formats).
pub fn put_span_context(out: &mut Vec<u8>, span: &SpanContext) {
    put_uint(out, span.trace_id);
    put_uint(out, u64::from(span.parent_span));
    out.push(span.flags);
}

/// Reads a [`SpanContext`].
///
/// # Errors
///
/// Returns [`NetError::Corrupt`] on truncation or overflow.
pub fn get_span_context(buf: &[u8], pos: &mut usize) -> Result<SpanContext, NetError> {
    let trace_id = get_uint(buf, pos)?;
    let parent_span = u32::try_from(get_uint(buf, pos)?)
        .map_err(|_| NetError::Corrupt("span parent overflow"))?;
    let flags = *buf.get(*pos).ok_or(NetError::Corrupt("span truncated"))?;
    *pos += 1;
    Ok(SpanContext {
        trace_id,
        parent_span,
        flags,
    })
}

/// Appends [`ServerTimings`] in their wire form ([`SERVER_PHASES`]
/// order, v-byte each — all-zero timings cost four bytes).
///
/// [`SERVER_PHASES`]: teraphim_obs::SERVER_PHASES
pub fn put_server_timings(out: &mut Vec<u8>, timings: &ServerTimings) {
    put_uint(out, timings.queue_micros);
    put_uint(out, timings.scan_micros);
    put_uint(out, timings.rank_micros);
    put_uint(out, timings.serialize_micros);
}

/// Reads [`ServerTimings`].
///
/// # Errors
///
/// Returns [`NetError::Corrupt`] on truncation.
pub fn get_server_timings(buf: &[u8], pos: &mut usize) -> Result<ServerTimings, NetError> {
    Ok(ServerTimings {
        queue_micros: get_uint(buf, pos)?,
        scan_micros: get_uint(buf, pos)?,
        rank_micros: get_uint(buf, pos)?,
        serialize_micros: get_uint(buf, pos)?,
    })
}

/// Builds a v1 frame payload carrying any combination of correlation
/// id, trace context and server timings. With only a correlation id the
/// layout costs one byte more than [`mux_envelope`]; with nothing at
/// all it still parses (a plain message in v1 clothing), which the
/// per-call TCP path uses to request timings without a correlation id.
pub fn envelope_v1(
    corr: Option<u64>,
    span: Option<&SpanContext>,
    timings: Option<&ServerTimings>,
    message: &[u8],
) -> Vec<u8> {
    let mut flags = 0u8;
    if corr.is_some() {
        flags |= ENV_CORR;
    }
    if span.is_some() {
        flags |= ENV_SPAN;
    }
    if timings.is_some() {
        flags |= ENV_TIMINGS;
    }
    let mut out = Vec::with_capacity(2 + 9 + 16 + message.len());
    out.push(MUX_V1_TAG);
    out.push((ENVELOPE_VERSION << 4) | flags);
    if let Some(corr) = corr {
        put_uint(&mut out, corr);
    }
    if let Some(span) = span {
        put_span_context(&mut out, span);
    }
    if let Some(timings) = timings {
        put_server_timings(&mut out, timings);
    }
    out.extend_from_slice(message);
    out
}

/// Parses any frame payload — plain, v0 mux, or v1 — into an
/// [`Envelope`].
///
/// # Errors
///
/// Returns [`NetError::Corrupt`] when an envelope marker is present but
/// the envelope is truncated, or when a v1 envelope announces a version
/// newer than this peer understands.
pub fn split_envelope(payload: &[u8]) -> Result<Envelope<'_>, NetError> {
    match payload.first() {
        Some(&MUX_TAG) => {
            let mut pos = 1;
            let corr = get_uint(payload, &mut pos)?;
            Ok(Envelope {
                corr: Some(corr),
                span: None,
                timings: None,
                message: &payload[pos..],
            })
        }
        Some(&MUX_V1_TAG) => {
            let vf = *payload
                .get(1)
                .ok_or(NetError::Corrupt("envelope truncated"))?;
            if vf >> 4 != ENVELOPE_VERSION {
                return Err(NetError::Corrupt("unknown envelope version"));
            }
            let flags = vf & 0x0F;
            let mut pos = 2;
            let corr = if flags & ENV_CORR != 0 {
                Some(get_uint(payload, &mut pos)?)
            } else {
                None
            };
            let span = if flags & ENV_SPAN != 0 {
                Some(get_span_context(payload, &mut pos)?)
            } else {
                None
            };
            let timings = if flags & ENV_TIMINGS != 0 {
                Some(get_server_timings(payload, &mut pos)?)
            } else {
                None
            };
            Ok(Envelope {
                corr,
                span,
                timings,
                message: &payload[pos..],
            })
        }
        _ => Ok(Envelope::plain(payload)),
    }
}

/// Splits a frame payload into its correlation id and message bytes, or
/// `Ok(None)` when the payload is a plain (uncorrelated) message.
///
/// # Errors
///
/// Returns [`NetError::Corrupt`] when the payload carries the
/// [`MUX_TAG`] marker but the envelope is truncated.
pub fn split_mux_envelope(payload: &[u8]) -> Result<Option<(u64, &[u8])>, NetError> {
    match payload.first() {
        Some(&MUX_TAG) => {
            let mut pos = 1;
            let corr = get_uint(payload, &mut pos)?;
            Ok(Some((corr, &payload[pos..])))
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_roundtrip() {
        let mut out = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            put_uint(&mut out, v);
        }
        let mut pos = 0;
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            assert_eq!(get_uint(&out, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, out.len());
    }

    #[test]
    fn small_uints_are_one_byte() {
        let mut out = Vec::new();
        put_uint(&mut out, 42);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn f64_roundtrip_bit_exact() {
        let mut out = Vec::new();
        for v in [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, f64::NAN] {
            put_f64(&mut out, v);
        }
        let mut pos = 0;
        for v in [0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, f64::NAN] {
            let got = get_f64(&out, &mut pos).unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn bytes_and_strings_roundtrip() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"hello");
        put_str(&mut out, "wörld");
        put_bytes(&mut out, b"");
        let mut pos = 0;
        assert_eq!(get_bytes(&out, &mut pos).unwrap(), b"hello");
        assert_eq!(get_str(&out, &mut pos).unwrap(), "wörld");
        assert_eq!(get_bytes(&out, &mut pos).unwrap(), b"");
    }

    #[test]
    fn truncation_is_detected() {
        let mut out = Vec::new();
        put_str(&mut out, "hello world");
        for cut in 0..out.len() {
            let mut pos = 0;
            assert!(get_str(&out[..cut], &mut pos).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut out = Vec::new();
        put_bytes(&mut out, &[0xFF, 0xFE]);
        let mut pos = 0;
        assert_eq!(
            get_str(&out, &mut pos),
            Err(NetError::Corrupt("string not UTF-8"))
        );
    }

    /// A reader that hands back at most `chunk` bytes per call — the
    /// worst-case TCP segmentation a blocking reader can observe.
    struct ChunkedReader {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl ChunkedReader {
        fn new(data: Vec<u8>, chunk: usize) -> Self {
            ChunkedReader {
                data,
                pos: 0,
                chunk: chunk.max(1),
            }
        }
    }

    impl Read for ChunkedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::Corrupt("frame too large"))
        ));
    }

    #[test]
    fn split_frames_reassemble_at_every_chunk_size() {
        let payloads: [&[u8]; 4] = [b"first", b"", b"a much longer third frame payload", b"x"];
        let mut stream = Vec::new();
        for p in payloads {
            write_frame(&mut stream, p).unwrap();
        }
        // Every chunk size from one byte up must reassemble identically —
        // the length prefix itself may arrive split across reads.
        for chunk in 1..=stream.len() {
            let mut r = ChunkedReader::new(stream.clone(), chunk);
            for p in payloads {
                assert_eq!(
                    read_frame(&mut r).unwrap().as_deref(),
                    Some(p),
                    "chunk size {chunk}"
                );
            }
            assert_eq!(read_frame(&mut r).unwrap(), None, "chunk size {chunk}");
        }
    }

    #[test]
    fn eof_mid_frame_is_an_error_not_a_clean_close() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"whole frame").unwrap();
        // Truncate anywhere after the first byte: the reader must
        // distinguish a torn frame from EOF at a boundary.
        for cut in 1..stream.len() {
            let mut r = ChunkedReader::new(stream[..cut].to_vec(), 3);
            assert!(
                matches!(read_frame(&mut r), Err(NetError::Io(_))),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn back_to_back_pipelined_messages_parse_in_order() {
        use crate::message::Message;
        // Three pipelined requests written back-to-back, as a
        // multiplexing client does without waiting for replies.
        let messages: Vec<Message> = (0..3)
            .map(|i| Message::RankRequest {
                query_id: i,
                k: 5,
                terms: vec![(format!("term{i}"), i + 1)],
            })
            .collect();
        let mut stream = Vec::new();
        for (i, m) in messages.iter().enumerate() {
            write_frame(&mut stream, &mux_envelope(i as u64 + 7, &m.encode())).unwrap();
        }
        // Deliver one byte at a time: framing must still find every
        // message boundary.
        let mut r = ChunkedReader::new(stream, 1);
        for (i, m) in messages.iter().enumerate() {
            let frame = read_frame(&mut r).unwrap().unwrap();
            let (corr, payload) = split_mux_envelope(&frame).unwrap().unwrap();
            assert_eq!(corr, i as u64 + 7);
            assert_eq!(&Message::decode(payload).unwrap(), m);
        }
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn mux_envelope_roundtrip_and_plain_passthrough() {
        let env = mux_envelope(300, b"payload");
        assert_eq!(env[0], MUX_TAG);
        let (corr, rest) = split_mux_envelope(&env).unwrap().unwrap();
        assert_eq!(corr, 300);
        assert_eq!(rest, b"payload");

        // A plain message payload (tag byte is small) is not mux.
        assert_eq!(split_mux_envelope(&[1, 2, 3]).unwrap(), None);
        // Empty payloads are not mux either.
        assert_eq!(split_mux_envelope(&[]).unwrap(), None);
        // A truncated envelope is corrupt, not silently plain.
        assert!(split_mux_envelope(&[MUX_TAG]).is_err());
    }

    #[test]
    fn v1_envelope_roundtrips_every_flag_combination() {
        let span = SpanContext::sampled(u64::MAX, 7);
        let timings = ServerTimings {
            queue_micros: 1_000_000,
            scan_micros: 0,
            rank_micros: 42,
            serialize_micros: 3,
        };
        for corr in [None, Some(0u64), Some(u64::MAX)] {
            for s in [None, Some(span)] {
                for t in [None, Some(timings)] {
                    let payload = envelope_v1(corr, s.as_ref(), t.as_ref(), b"inner message");
                    assert_eq!(payload[0], MUX_V1_TAG);
                    let env = split_envelope(&payload).unwrap();
                    assert_eq!(env.corr, corr);
                    assert_eq!(env.span, s);
                    assert_eq!(env.timings, t);
                    assert_eq!(env.message, b"inner message");
                }
            }
        }
    }

    #[test]
    fn old_format_frames_still_decode_through_split_envelope() {
        // Satellite: the version/flags byte must not break v0 peers in
        // either direction. Frames produced by the PR 6 layout parse
        // unchanged through the new parser...
        let old = mux_envelope(300, b"payload");
        let env = split_envelope(&old).unwrap();
        assert_eq!(env.corr, Some(300));
        assert_eq!(env.span, None);
        assert_eq!(env.timings, None);
        assert_eq!(env.message, b"payload");
        // ...and so do plain payloads.
        let env = split_envelope(&[1, 2, 3]).unwrap();
        assert_eq!(env, Envelope::plain(&[1, 2, 3][..]));
        assert_eq!(split_envelope(&[]).unwrap().message, b"");
        // A v1 envelope downgraded to corr-only still satisfies the old
        // v0 parser's contract via its own tag... it must NOT, however,
        // be mistaken for v0 by the old parser (different marker), so an
        // old peer sees an unknown tag rather than garbage.
        let v1 = envelope_v1(Some(5), None, None, b"m");
        assert_eq!(split_mux_envelope(&v1).unwrap(), None, "not v0 mux");
    }

    #[test]
    fn v1_corruption_is_detected_not_misparsed() {
        // Truncations anywhere inside the envelope error out.
        let span = SpanContext::sampled(99, 2);
        let timings = ServerTimings {
            queue_micros: 5,
            scan_micros: 6,
            rank_micros: 7,
            serialize_micros: 300,
        };
        let payload = envelope_v1(Some(1000), Some(&span), Some(&timings), b"");
        for cut in 1..payload.len() {
            assert!(split_envelope(&payload[..cut]).is_err(), "cut {cut}");
        }
        // An unknown (future) version is rejected, never misparsed.
        let future = [MUX_V1_TAG, 2 << 4, 0, 0];
        assert!(matches!(
            split_envelope(&future),
            Err(NetError::Corrupt("unknown envelope version"))
        ));
    }

    #[test]
    fn span_and_timings_sections_roundtrip_standalone() {
        let mut out = Vec::new();
        let span = SpanContext {
            trace_id: 1 << 40,
            parent_span: u32::MAX,
            flags: 0,
        };
        put_span_context(&mut out, &span);
        let timings = ServerTimings::default();
        put_server_timings(&mut out, &timings);
        let mut pos = 0;
        assert_eq!(get_span_context(&out, &mut pos).unwrap(), span);
        assert_eq!(get_server_timings(&out, &mut pos).unwrap(), timings);
        assert_eq!(pos, out.len());
        // All-zero timings cost four bytes on the wire.
        let mut zeros = Vec::new();
        put_server_timings(&mut zeros, &ServerTimings::default());
        assert_eq!(zeros.len(), 4);
    }
}
