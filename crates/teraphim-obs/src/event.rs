//! The structured event vocabulary recorded into a [`QueryTrace`].
//!
//! Events are deliberately small, `Copy`-ish (only `Expansion` and
//! `Coverage` carry vectors) and built from `&'static str` labels so that
//! recording an event on the hot path costs one mutex push and no string
//! allocation.
//!
//! [`QueryTrace`]: crate::QueryTrace

/// A named phase of the query lifecycle.
///
/// Phases bracket stretches of a query operation between
/// [`EventKind::PhaseStart`] and [`EventKind::PhaseEnd`] events; the same
/// labels are emitted by the real receptionist and by the simulator so
/// per-phase latency can be attributed identically in both drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// CV preprocessing: collecting vocabularies from every librarian.
    VocabExchange,
    /// CI preprocessing: collecting full indexes to build the grouped index.
    IndexExchange,
    /// CI query step: ranking groups on the receptionist's grouped index.
    GroupRank,
    /// The rank fan-out: dispatching rank/score requests and merging replies.
    RankFanout,
    /// Fetching headers for the final ranking.
    HeaderFetch,
    /// Fetching full documents.
    DocFetch,
    /// Boolean query fan-out.
    Boolean,
}

impl Phase {
    /// Stable lowercase label used in the JSON encoding.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::VocabExchange => "vocab_exchange",
            Phase::IndexExchange => "index_exchange",
            Phase::GroupRank => "group_rank",
            Phase::RankFanout => "rank_fanout",
            Phase::HeaderFetch => "header_fetch",
            Phase::DocFetch => "doc_fetch",
            Phase::Boolean => "boolean",
        }
    }
}

/// The candidate documents a single librarian is asked to score in CI mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibCandidates {
    /// Librarian (partition) index.
    pub librarian: u32,
    /// Document ids, local to that librarian.
    pub docs: Vec<u32>,
}

/// One structured event in a query trace.
///
/// `Begin`/`End` delimit a traced operation and are consumed by
/// [`TraceSink::take_traces`] when the event stream is split into
/// [`QueryTrace`] values; every other variant lands in
/// [`QueryTrace::events`].
///
/// [`TraceSink::take_traces`]: crate::TraceSink::take_traces
/// [`QueryTrace`]: crate::QueryTrace
/// [`QueryTrace::events`]: crate::QueryTrace::events
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A traced operation starts (`query`, `enable_cv`, `headers`, ...).
    Begin {
        /// Operation name.
        op: &'static str,
        /// Methodology code (`"MS"`, `"CN"`, `"CV"`, `"CI"`) for query ops.
        methodology: Option<&'static str>,
        /// Query id assigned by the receptionist (0 in the simulator).
        query_id: u32,
        /// Requested answer size (0 for non-ranking operations).
        k: u32,
    },
    /// The traced operation ends (recorded on success *and* error paths).
    End,
    /// A lifecycle phase starts.
    PhaseStart {
        /// The phase.
        phase: Phase,
    },
    /// A lifecycle phase ends.
    PhaseEnd {
        /// The phase.
        phase: Phase,
    },
    /// A request message leaves for a librarian.
    Sent {
        /// Librarian index.
        librarian: u32,
        /// Encoded size of the request in bytes.
        bytes: u64,
        /// Message variant name, e.g. `"RankRequest"`.
        message: &'static str,
    },
    /// A reply message arrived back from a librarian.
    Reply {
        /// Librarian index.
        librarian: u32,
        /// Encoded size of the reply in bytes.
        bytes: u64,
        /// Message variant name, e.g. `"RankResponse"`.
        message: &'static str,
    },
    /// A transport attempt against a librarian timed out.
    Timeout {
        /// Librarian index.
        librarian: u32,
    },
    /// `RetryTransport` is about to retry after a transient error.
    Retry {
        /// Librarian index.
        librarian: u32,
        /// 1-based retry attempt number.
        attempt: u32,
        /// Error kind that triggered the retry (see `NetError::kind`).
        error: &'static str,
    },
    /// An injected fault fired (`FaultyTransport` or the simulator).
    Fault {
        /// Librarian index.
        librarian: u32,
        /// Fault action name: `"fail"`, `"delay"`, `"drop"` or `"garble"`.
        action: &'static str,
    },
    /// A librarian dropped out of the fan-out (after any retries).
    LibFailed {
        /// Librarian index.
        librarian: u32,
        /// Final error kind (see `NetError::kind`).
        error: &'static str,
    },
    /// CI group ranking expanded into per-librarian candidate sets.
    Expansion {
        /// Number of groups ranked (k′).
        k_prime: u32,
        /// Documents per group (G).
        group_size: u32,
        /// The selected group ids, best first.
        groups: Vec<u32>,
        /// Candidates per owning librarian, in librarian order.
        candidates: Vec<LibCandidates>,
    },
    /// A librarian finished scoring CI candidates.
    Scored {
        /// Librarian index.
        librarian: u32,
        /// Number of candidates that received a score.
        candidates: u32,
        /// Postings decoded while scoring.
        postings: u64,
    },
    /// The receptionist merged the fan-out replies into the final ranking.
    Merge {
        /// Total entries folded into the merge across all replies.
        entries: u64,
        /// Requested answer size.
        k: u32,
    },
    /// Coverage decision from `query_with_coverage`.
    Coverage {
        /// Librarians that answered.
        answered: Vec<u32>,
        /// Librarians that failed (after retries).
        failed: Vec<u32>,
        /// Fraction of the corpus covered, in permille (0..=1000), when
        /// collection statistics are known.
        docs_permille: Option<u32>,
    },
    /// A receptionist cache lookup was answered without touching the
    /// fleet.
    CacheHit {
        /// Cache kind: `"results"`, `"stats"` or `"docs"`.
        cache: &'static str,
    },
    /// A receptionist cache lookup missed (work proceeds normally).
    CacheMiss {
        /// Cache kind: `"results"`, `"stats"` or `"docs"`.
        cache: &'static str,
        /// True when the miss dropped an entry from a stale generation
        /// (epoch-based invalidation) rather than finding nothing.
        stale: bool,
    },
    /// A receptionist cache insert evicted older entries to make room.
    CacheEvict {
        /// Cache kind: `"results"`, `"stats"` or `"docs"`.
        cache: &'static str,
        /// Number of entries evicted by this insert.
        entries: u32,
    },
    /// A replica group failed over a request to another replica after a
    /// transient error on the one it preferred.
    Failover {
        /// Shard (subcollection / librarian slot) index.
        librarian: u32,
        /// Replica id the request failed on.
        from: u32,
        /// Replica id the request was rerouted to.
        to: u32,
        /// Error kind that triggered the failover (see `NetError::kind`).
        error: &'static str,
    },
    /// A replica joined a shard's replica group (membership change).
    Join {
        /// Shard (subcollection / librarian slot) index.
        librarian: u32,
        /// The joining replica's id.
        replica: u32,
        /// Routing-table version after the join.
        version: u64,
    },
    /// A replica left a shard's replica group (membership change).
    Leave {
        /// Shard (subcollection / librarian slot) index.
        librarian: u32,
        /// The departing replica's id.
        replica: u32,
        /// Routing-table version after the leave.
        version: u64,
    },
    /// A subcollection's index was handed to a joining replica
    /// (migration over the split machinery's shard space).
    Migrate {
        /// Shard (subcollection / librarian slot) index.
        librarian: u32,
        /// Documents carried by the migrated subcollection.
        docs: u64,
        /// The shard's index epoch at handoff; the joining replica
        /// adopts it so epoch-keyed caches stay coherent.
        epoch: u64,
    },
    /// Server-side time attributed to one phase of handling a request
    /// at a librarian (see [`crate::span::SERVER_PHASES`]): queue wait
    /// in the worker pool, index scan, ranking, reply serialization.
    /// Recorded client-side after the matching `reply`, from timings the
    /// server piggybacks on the wire (or zeros when the backend has no
    /// server-side clock — the simulator, or an untimed service), so the
    /// event *structure* is identical across sim, in-proc and TCP.
    ServerPhase {
        /// Librarian index.
        librarian: u32,
        /// Server phase label (`"queue_wait"`, `"scan"`, `"rank"`,
        /// `"serialize"`).
        phase: &'static str,
        /// Time spent in the phase, in microseconds. Zeroed by trace
        /// normalization (durations differ run to run, structure does
        /// not).
        micros: u64,
    },
}

impl EventKind {
    /// The librarian index this event is tagged with, if any.
    ///
    /// Used by trace normalization to canonicalize the arrival order of
    /// concurrent fan-out events.
    #[must_use]
    pub fn librarian(&self) -> Option<u32> {
        match *self {
            EventKind::Sent { librarian, .. }
            | EventKind::Reply { librarian, .. }
            | EventKind::Timeout { librarian }
            | EventKind::Retry { librarian, .. }
            | EventKind::Fault { librarian, .. }
            | EventKind::LibFailed { librarian, .. }
            | EventKind::Scored { librarian, .. }
            | EventKind::Failover { librarian, .. }
            | EventKind::Join { librarian, .. }
            | EventKind::Leave { librarian, .. }
            | EventKind::Migrate { librarian, .. }
            | EventKind::ServerPhase { librarian, .. } => Some(librarian),
            _ => None,
        }
    }

    /// Stable lowercase tag used in the JSON encoding.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::Begin { .. } => "begin",
            EventKind::End => "end",
            EventKind::PhaseStart { .. } => "phase_start",
            EventKind::PhaseEnd { .. } => "phase_end",
            EventKind::Sent { .. } => "sent",
            EventKind::Reply { .. } => "reply",
            EventKind::Timeout { .. } => "timeout",
            EventKind::Retry { .. } => "retry",
            EventKind::Fault { .. } => "fault",
            EventKind::LibFailed { .. } => "lib_failed",
            EventKind::Expansion { .. } => "expansion",
            EventKind::Scored { .. } => "scored",
            EventKind::Merge { .. } => "merge",
            EventKind::Coverage { .. } => "coverage",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::CacheEvict { .. } => "cache_evict",
            EventKind::Failover { .. } => "failover",
            EventKind::Join { .. } => "join",
            EventKind::Leave { .. } => "leave",
            EventKind::Migrate { .. } => "migrate",
            EventKind::ServerPhase { .. } => "server_phase",
        }
    }
}

/// A timestamped event.
///
/// `at_micros` is microseconds since the sink's epoch for real drivers, or
/// simulated microseconds for the simulator. Normalization zeroes it.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event time in microseconds (wall-clock since sink creation, or
    /// simulated time).
    pub at_micros: u64,
    /// What happened.
    pub kind: EventKind,
}
