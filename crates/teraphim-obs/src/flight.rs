//! The flight recorder: a fixed-size, lock-light buffer of completed
//! span trees with *tail-based* retention — it keeps the slowest
//! queries and every faulted or degraded one, because those are the
//! exemplars a p99 investigation needs, and discards the unremarkable
//! middle of the distribution.
//!
//! Like [`TraceSink`](crate::TraceSink), a disabled recorder is a
//! single `Option` check and performs **zero allocation** on the hit
//! path: [`FlightRecorder::record_entry`] takes a closure that builds
//! the entry and never calls it when recording is off or the recorder
//! is detached.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default retention budget (entries) when none is given.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One retained exemplar: the summary fields retention decisions need,
/// plus the span tree's line-oriented JSON for dumping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// Trace id the entry belongs to (0 when unknown).
    pub trace_id: u64,
    /// Operation name (`"query"`, `"headers"`, ...).
    pub op: String,
    /// Methodology code for query operations.
    pub methodology: Option<String>,
    /// Query id.
    pub query_id: u32,
    /// End-to-end duration of the operation, in microseconds.
    pub duration_micros: u64,
    /// A fault / timeout / librarian drop-out occurred.
    pub faulted: bool,
    /// Coverage was degraded (answered with librarians missing).
    pub degraded: bool,
    /// The stitched span tree, encoded by
    /// [`SpanTree::to_json`](crate::SpanTree::to_json).
    pub json: String,
}

impl FlightEntry {
    /// Whether retention must keep this entry in preference to merely
    /// slow ones.
    #[must_use]
    pub fn pinned(&self) -> bool {
        self.faulted || self.degraded
    }
}

#[derive(Debug)]
struct FlightInner {
    capacity: usize,
    entries: Mutex<Vec<FlightEntry>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

/// A cloneable handle to a shared flight recorder. The default handle
/// is detached (recording disabled, nothing allocated).
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<FlightInner>>,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` exemplars (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            inner: Some(Arc::new(FlightInner {
                capacity: capacity.max(1),
                entries: Mutex::new(Vec::new()),
                recorded: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// A detached (disabled) recorder; [`record_entry`] is free.
    ///
    /// [`record_entry`]: FlightRecorder::record_entry
    #[must_use]
    pub fn disabled() -> Self {
        FlightRecorder::default()
    }

    /// Whether the handle is attached to a buffer.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Offers an entry for retention. The closure runs only when the
    /// recorder is attached, so a disabled recorder does no work and no
    /// allocation. Retention under a full buffer:
    ///
    /// * faulted/degraded entries are *pinned* — a pinned candidate
    ///   always gets a slot, evicting the fastest non-pinned entry, or
    ///   the oldest pinned one when everything is pinned (the capacity
    ///   is a hard budget);
    /// * a plain entry is kept only if it is slower than the fastest
    ///   retained non-pinned entry, which it then replaces.
    pub fn record_entry(&self, make: impl FnOnce() -> FlightEntry) {
        let Some(inner) = &self.inner else { return };
        let entry = make();
        inner.recorded.fetch_add(1, Ordering::Relaxed);
        let mut entries = inner.entries.lock().expect("flight lock");
        if entries.len() < inner.capacity {
            entries.push(entry);
            return;
        }
        // Victim: the fastest non-pinned entry, if any.
        let victim = entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.pinned())
            .min_by_key(|(_, e)| e.duration_micros)
            .map(|(i, _)| i);
        match victim {
            Some(i) if entry.pinned() || entry.duration_micros > entries[i].duration_micros => {
                entries[i] = entry;
            }
            Some(_) => {
                inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
            None if entry.pinned() => {
                // All pinned and full: the budget is hard, evict the
                // oldest pinned exemplar.
                entries.remove(0);
                entries.push(entry);
            }
            None => {
                inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of retained entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.entries.lock().expect("flight lock").len())
    }

    /// True when nothing is retained (or the recorder is detached).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entries offered to an attached recorder.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.recorded.load(Ordering::Relaxed))
    }

    /// Entries rejected by retention (not slow enough, not pinned).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Snapshot of the retained exemplars, slowest first.
    #[must_use]
    pub fn entries(&self) -> Vec<FlightEntry> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out = inner.entries.lock().expect("flight lock").clone();
        out.sort_by_key(|e| std::cmp::Reverse(e.duration_micros));
        out
    }

    /// Drops all retained entries and resets counters.
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.entries.lock().expect("flight lock").clear();
            inner.recorded.store(0, Ordering::Relaxed);
            inner.dropped.store(0, Ordering::Relaxed);
        }
    }

    /// Dumps the retained exemplars as line-oriented JSON: one summary
    /// header, then per exemplar a summary line followed by its span
    /// tree (already line-oriented), slowest exemplar first.
    #[must_use]
    pub fn dump_json(&self) -> String {
        use std::fmt::Write as _;
        let entries = self.entries();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"flightrec\":true,\"retained\":{},\"recorded\":{},\"dropped\":{}}}",
            entries.len(),
            self.recorded(),
            self.dropped()
        );
        for e in &entries {
            let _ = writeln!(
                out,
                "{{\"exemplar\":{{\"trace_id\":{},\"op\":\"{}\",\"query_id\":{},\
                 \"duration_micros\":{},\"faulted\":{},\"degraded\":{}}}}}",
                e.trace_id, e.op, e.query_id, e.duration_micros, e.faulted, e.degraded
            );
            out.push_str(&e.json);
            if !e.json.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }

    /// Renders the recorder's own counters in Prometheus exposition
    /// format (validated by
    /// [`lint_prometheus`](crate::lint_prometheus)).
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "teraphim_flightrec_recorded_total",
            "Span trees offered to the flight recorder.",
            self.recorded(),
        );
        counter(
            "teraphim_flightrec_dropped_total",
            "Span trees rejected by tail-based retention.",
            self.dropped(),
        );
        counter(
            "teraphim_flightrec_retained",
            "Span trees currently retained as exemplars.",
            self.len() as u64,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(duration: u64, faulted: bool, degraded: bool) -> FlightEntry {
        FlightEntry {
            trace_id: duration,
            op: "query".to_owned(),
            methodology: Some("CN".to_owned()),
            query_id: duration as u32,
            duration_micros: duration,
            faulted,
            degraded,
            json: format!("{{\"d\":{duration}}}\n"),
        }
    }

    #[test]
    fn disabled_recorder_never_invokes_the_builder() {
        let rec = FlightRecorder::disabled();
        rec.record_entry(|| panic!("builder must not run when disabled"));
        assert!(!rec.is_enabled());
        assert!(rec.is_empty());
        assert_eq!(rec.recorded(), 0);
    }

    #[test]
    fn retains_slowest_under_budget() {
        let rec = FlightRecorder::new(3);
        for d in [10, 50, 20, 90, 5, 60] {
            rec.record_entry(|| entry(d, false, false));
        }
        let kept: Vec<u64> = rec.entries().iter().map(|e| e.duration_micros).collect();
        assert_eq!(kept, vec![90, 60, 50]);
        assert_eq!(rec.recorded(), 6);
        // Only the offer-time rejection (5) counts as dropped; entries
        // evicted later by slower arrivals were retained at the time.
        assert_eq!(rec.dropped(), 1);
    }

    #[test]
    fn faulted_and_degraded_are_pinned_over_slow() {
        let rec = FlightRecorder::new(2);
        rec.record_entry(|| entry(100, false, false));
        rec.record_entry(|| entry(90, false, false));
        // A fast but faulted query evicts the fastest plain entry.
        rec.record_entry(|| entry(1, true, false));
        let kept = rec.entries();
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().any(|e| e.faulted));
        assert!(kept.iter().any(|e| e.duration_micros == 100));
        // A fast degraded query then evicts the remaining plain one.
        rec.record_entry(|| entry(2, false, true));
        let kept = rec.entries();
        assert!(kept.iter().all(FlightEntry::pinned));
        // All pinned + full: budget is hard; oldest pinned is evicted.
        rec.record_entry(|| entry(3, true, true));
        assert_eq!(rec.len(), 2);
        let kept = rec.entries();
        assert!(kept.iter().any(|e| e.duration_micros == 3));
        // A plain entry cannot displace pinned exemplars.
        rec.record_entry(|| entry(1000, false, false));
        assert!(rec.entries().iter().all(FlightEntry::pinned));
    }

    #[test]
    fn dump_lists_exemplars_slowest_first() {
        let rec = FlightRecorder::new(4);
        rec.record_entry(|| entry(10, false, false));
        rec.record_entry(|| entry(30, true, false));
        let dump = rec.dump_json();
        let lines: Vec<&str> = dump.lines().collect();
        assert!(lines[0].contains("\"retained\":2"));
        assert!(lines[1].contains("\"duration_micros\":30"));
        assert!(lines[1].contains("\"faulted\":true"));
        assert!(lines[2].contains("{\"d\":30}"));
        assert!(lines[3].contains("\"duration_micros\":10"));
    }

    #[test]
    fn prometheus_rendering_passes_the_lint() {
        let rec = FlightRecorder::new(2);
        rec.record_entry(|| entry(10, false, false));
        let text = rec.render_prometheus();
        assert!(crate::lint_prometheus(&text).is_ok(), "{text}");
        assert!(text.contains("teraphim_flightrec_recorded_total 1"));
    }

    #[test]
    fn clear_resets_everything() {
        let rec = FlightRecorder::new(2);
        rec.record_entry(|| entry(10, false, false));
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.recorded(), 0);
    }
}
