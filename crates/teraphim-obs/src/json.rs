//! Hand-rolled JSON encoding for traces (the workspace takes no serde
//! dependency) and a line-based structural diff for golden-trace tests.
//!
//! The encoding is deliberately line-oriented: one event per line, stable
//! key order. Two traces are structurally equal iff their JSON strings are
//! byte-equal, which makes fixtures diffable with ordinary text tools.

use crate::event::{EventKind, TraceEvent};
use crate::trace::QueryTrace;
use std::fmt::Write as _;

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_u32_list(out: &mut String, items: &[u32]) {
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{item}");
    }
    out.push(']');
}

fn event_json(event: &TraceEvent) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"at\":{},\"ev\":\"{}\"",
        event.at_micros,
        event.kind.tag()
    );
    match &event.kind {
        EventKind::Begin {
            op,
            methodology,
            query_id,
            k,
        } => {
            out.push_str(",\"op\":");
            push_escaped(&mut out, op);
            out.push_str(",\"methodology\":");
            match methodology {
                Some(m) => push_escaped(&mut out, m),
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"query_id\":{query_id},\"k\":{k}");
        }
        EventKind::End => {}
        EventKind::PhaseStart { phase } | EventKind::PhaseEnd { phase } => {
            let _ = write!(out, ",\"phase\":\"{}\"", phase.as_str());
        }
        EventKind::Sent {
            librarian,
            bytes,
            message,
        }
        | EventKind::Reply {
            librarian,
            bytes,
            message,
        } => {
            let _ = write!(
                out,
                ",\"librarian\":{librarian},\"bytes\":{bytes},\"message\":"
            );
            push_escaped(&mut out, message);
        }
        EventKind::Timeout { librarian } => {
            let _ = write!(out, ",\"librarian\":{librarian}");
        }
        EventKind::Retry {
            librarian,
            attempt,
            error,
        } => {
            let _ = write!(
                out,
                ",\"librarian\":{librarian},\"attempt\":{attempt},\"error\":"
            );
            push_escaped(&mut out, error);
        }
        EventKind::Fault { librarian, action } => {
            let _ = write!(out, ",\"librarian\":{librarian},\"action\":");
            push_escaped(&mut out, action);
        }
        EventKind::LibFailed { librarian, error } => {
            let _ = write!(out, ",\"librarian\":{librarian},\"error\":");
            push_escaped(&mut out, error);
        }
        EventKind::Expansion {
            k_prime,
            group_size,
            groups,
            candidates,
        } => {
            let _ = write!(
                out,
                ",\"k_prime\":{k_prime},\"group_size\":{group_size},\"groups\":"
            );
            push_u32_list(&mut out, groups);
            out.push_str(",\"candidates\":[");
            for (i, c) in candidates.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"librarian\":{},\"docs\":", c.librarian);
                push_u32_list(&mut out, &c.docs);
                out.push('}');
            }
            out.push(']');
        }
        EventKind::Scored {
            librarian,
            candidates,
            postings,
        } => {
            let _ = write!(
                out,
                ",\"librarian\":{librarian},\"candidates\":{candidates},\"postings\":{postings}"
            );
        }
        EventKind::Merge { entries, k } => {
            let _ = write!(out, ",\"entries\":{entries},\"k\":{k}");
        }
        EventKind::Coverage {
            answered,
            failed,
            docs_permille,
        } => {
            out.push_str(",\"answered\":");
            push_u32_list(&mut out, answered);
            out.push_str(",\"failed\":");
            push_u32_list(&mut out, failed);
            match docs_permille {
                Some(p) => {
                    let _ = write!(out, ",\"docs_permille\":{p}");
                }
                None => out.push_str(",\"docs_permille\":null"),
            }
        }
        EventKind::CacheHit { cache } => {
            out.push_str(",\"cache\":");
            push_escaped(&mut out, cache);
        }
        EventKind::CacheMiss { cache, stale } => {
            out.push_str(",\"cache\":");
            push_escaped(&mut out, cache);
            let _ = write!(out, ",\"stale\":{stale}");
        }
        EventKind::CacheEvict { cache, entries } => {
            out.push_str(",\"cache\":");
            push_escaped(&mut out, cache);
            let _ = write!(out, ",\"entries\":{entries}");
        }
        EventKind::Failover {
            librarian,
            from,
            to,
            error,
        } => {
            let _ = write!(
                out,
                ",\"librarian\":{librarian},\"from\":{from},\"to\":{to},\"error\":"
            );
            push_escaped(&mut out, error);
        }
        EventKind::Join {
            librarian,
            replica,
            version,
        } => {
            let _ = write!(
                out,
                ",\"librarian\":{librarian},\"replica\":{replica},\"version\":{version}"
            );
        }
        EventKind::Leave {
            librarian,
            replica,
            version,
        } => {
            let _ = write!(
                out,
                ",\"librarian\":{librarian},\"replica\":{replica},\"version\":{version}"
            );
        }
        EventKind::Migrate {
            librarian,
            docs,
            epoch,
        } => {
            let _ = write!(
                out,
                ",\"librarian\":{librarian},\"docs\":{docs},\"epoch\":{epoch}"
            );
        }
        EventKind::ServerPhase {
            librarian,
            phase,
            micros,
        } => {
            let _ = write!(out, ",\"librarian\":{librarian},\"phase\":");
            push_escaped(&mut out, phase);
            let _ = write!(out, ",\"micros\":{micros}");
        }
    }
    out.push('}');
    out
}

impl QueryTrace {
    /// Encodes the trace as multi-line JSON: header fields first, then one
    /// event per line.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"driver\": ");
        push_escaped(&mut out, &self.driver);
        out.push_str(",\n  \"op\": ");
        push_escaped(&mut out, &self.op);
        out.push_str(",\n  \"methodology\": ");
        match &self.methodology {
            Some(m) => push_escaped(&mut out, m),
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\n  \"query_id\": {},\n  \"k\": {},\n  \"complete\": {},\n  \"events\": [",
            self.query_id, self.k, self.complete
        );
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&event_json(event));
        }
        if self.events.is_empty() {
            out.push(']');
        } else {
            out.push_str("\n  ]");
        }
        out.push_str("\n}");
        out
    }
}

/// Encodes a slice of traces as a JSON array (one event per line inside
/// each trace, see [`QueryTrace::to_json`]).
#[must_use]
pub fn traces_to_json(traces: &[QueryTrace]) -> String {
    let mut out = String::from("[");
    for (i, trace) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&trace.to_json());
    }
    out.push_str("\n]\n");
    out
}

/// Line-based structural diff between two JSON trace encodings.
///
/// Returns `None` when the inputs are equal (ignoring trailing
/// whitespace per line), otherwise a human-readable unified-style diff of
/// the mismatching region, suitable for golden-trace failure messages.
#[must_use]
pub fn diff_json(expected: &str, actual: &str) -> Option<String> {
    let expected_lines: Vec<&str> = expected.lines().map(str::trim_end).collect();
    let actual_lines: Vec<&str> = actual.lines().map(str::trim_end).collect();
    if expected_lines == actual_lines {
        return None;
    }
    let mut first = 0;
    while first < expected_lines.len()
        && first < actual_lines.len()
        && expected_lines[first] == actual_lines[first]
    {
        first += 1;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "traces differ from line {} (expected {} lines, actual {}):",
        first + 1,
        expected_lines.len(),
        actual_lines.len()
    );
    let context = 2;
    let start = first.saturating_sub(context);
    for (i, line) in expected_lines.iter().enumerate().skip(start) {
        if i >= first + context + 4 {
            let _ = writeln!(out, "- ...");
            break;
        }
        let marker = if actual_lines.get(i) == Some(line) {
            ' '
        } else {
            '-'
        };
        let _ = writeln!(out, "{marker} {line}");
    }
    for (i, line) in actual_lines.iter().enumerate().skip(first) {
        if i >= first + context + 4 {
            let _ = writeln!(out, "+ ...");
            break;
        }
        if expected_lines.get(i) != Some(line) {
            let _ = writeln!(out, "+ {line}");
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LibCandidates, Phase};

    #[test]
    fn event_lines_are_stable() {
        let e = TraceEvent {
            at_micros: 42,
            kind: EventKind::Sent {
                librarian: 3,
                bytes: 128,
                message: "RankRequest",
            },
        };
        assert_eq!(
            event_json(&e),
            "{\"at\":42,\"ev\":\"sent\",\"librarian\":3,\"bytes\":128,\"message\":\"RankRequest\"}"
        );
        let e = TraceEvent {
            at_micros: 0,
            kind: EventKind::Expansion {
                k_prime: 2,
                group_size: 3,
                groups: vec![5, 1],
                candidates: vec![LibCandidates {
                    librarian: 0,
                    docs: vec![9, 10],
                }],
            },
        };
        assert_eq!(
            event_json(&e),
            "{\"at\":0,\"ev\":\"expansion\",\"k_prime\":2,\"group_size\":3,\"groups\":[5,1],\
             \"candidates\":[{\"librarian\":0,\"docs\":[9,10]}]}"
        );
    }

    #[test]
    fn trace_json_round_trips_structure() {
        let trace = QueryTrace {
            driver: "real".to_owned(),
            op: "query".to_owned(),
            methodology: None,
            query_id: 1,
            k: 10,
            complete: true,
            events: vec![TraceEvent {
                at_micros: 0,
                kind: EventKind::PhaseStart {
                    phase: Phase::RankFanout,
                },
            }],
        };
        let json = trace.to_json();
        assert!(json.contains("\"methodology\": null"));
        assert!(json.contains("{\"at\":0,\"ev\":\"phase_start\",\"phase\":\"rank_fanout\"}"));
        assert!(diff_json(&json, &json).is_none());
    }

    #[test]
    fn diff_reports_first_divergence() {
        let a = "line1\nline2\nline3";
        let b = "line1\nlineX\nline3";
        let d = diff_json(a, b).expect("must differ");
        assert!(d.contains("line 2"));
        assert!(d.contains("- line2"));
        assert!(d.contains("+ lineX"));
    }
}
