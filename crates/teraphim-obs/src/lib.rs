//! # teraphim-obs
//!
//! Query-lifecycle observability for the TERAPHIM workspace: a lightweight
//! span/event API (no external dependencies) that the real receptionist
//! stack and the [`SimDriver`] both emit, producing one structured
//! [`QueryTrace`] per operation.
//!
//! The paper's claims — CV rankings byte-identical to mono-server, CI
//! scoring at most k′·G candidates, CN trading accuracy for traffic — are
//! claims about what happens *inside* a query. A trace captures exactly
//! that: per-librarian dispatch and reply events with message variants and
//! byte counts, retry/timeout/fault events from the transport decorators,
//! CI candidate expansion, merge sizes and coverage decisions, each stamped
//! with wall-clock (real drivers) or virtual (simulator) microseconds.
//!
//! ## Shape of the API
//!
//! * [`TraceSink`] — a cloneable collector; the disabled default costs
//!   nothing. Components share clones of the same sink.
//! * [`EventKind`] / [`TraceEvent`] / [`Phase`] — the event vocabulary.
//! * [`QueryTrace`] — one operation's events, split out of the sink by
//!   [`TraceSink::take_traces`]; [`QueryTrace::normalized`] makes traces
//!   deterministic for golden-fixture comparison, and
//!   [`QueryTrace::metrics`] rolls a trace up into per-phase durations and
//!   traffic counters.
//! * [`traces_to_json`] / [`diff_json`] — a stable line-oriented JSON
//!   encoding (no serde) and the structural diff used by the golden tests.
//! * [`MetricsRegistry`] / [`MetricsSnapshot`] — rolling fleet metrics
//!   (atomic counters and log-bucketed latency [`Histogram`]s, per
//!   librarian and per methodology) that a sink tees into via
//!   [`TraceSink::tee_metrics`], so everything that traces also meters;
//!   [`MetricsSnapshot::render_prometheus`] exposes a snapshot in the
//!   Prometheus text format.
//! * [`SpanContext`] / [`ServerTimings`] / [`SpanTree`] — distributed
//!   spans: the compact context a request carries across the wire, the
//!   per-phase server-side timings piggybacked on replies, and the
//!   client-side stitching of a trace into one span tree per query.
//! * [`FlightRecorder`] — a fixed-size exemplar buffer with tail-based
//!   retention (slowest + all faulted/degraded queries), attached to a
//!   sink via [`TraceSink::attach_flight`].
//!
//! [`SimDriver`]: https://docs.rs/teraphim-core

pub mod event;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod trace;

pub use event::{EventKind, LibCandidates, Phase, TraceEvent};
pub use flight::{FlightEntry, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use json::{diff_json, traces_to_json};
pub use metrics::{
    lint_prometheus, CacheMetrics, Histogram, HistogramSnapshot, LibrarianMetrics,
    MethodologyMetrics, MetricsRegistry, MetricsSnapshot, TrafficTotals, CACHE_KINDS,
};
pub use sink::TraceSink;
pub use span::{
    server_phase_index, ServerTimings, Span, SpanContext, SpanTree, SERVER_PHASES, SPAN_SAMPLED,
};
pub use trace::{
    trace_traffic_sums, LibTraffic, QueryTrace, TraceMetrics, TraceTrafficSums, NORMALIZED_DRIVER,
};
