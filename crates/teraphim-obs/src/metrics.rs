//! Rolling fleet metrics: a lock-light registry a [`TraceSink`] tees into.
//!
//! Tracing answers "what happened inside *this* query"; metrics answer
//! "how is the fleet doing *right now*". The [`MetricsRegistry`] keeps
//! atomic counters and log-bucketed latency [`Histogram`]s, rolled up
//! per librarian and per methodology, and is fed exclusively from the
//! existing trace event stream ([`MetricsRegistry::observe`] is called
//! by the sink for every recorded event). Instrumented code therefore
//! needs **zero new call sites** to light up the registry — anything
//! that already traces also meters.
//!
//! Counter updates are single atomic adds. The only lock is a small
//! mutex over the event-correlation state (which `Sent` is still
//! awaiting its `Reply`, which phase brackets are open), held for a few
//! instructions per event — the same cost class as the sink's own
//! buffer push. Snapshots ([`MetricsRegistry::snapshot`]) read the
//! atomics without stopping recorders.
//!
//! Histograms are log-bucketed (one bucket per power of two) because
//! query latencies span six orders of magnitude between an in-process
//! fan-out and a WAN exchange: uniform buckets would waste their
//! resolution on one end of that range, while 65 exponential buckets
//! cover all of `u64` with a fixed, merge-friendly layout and at most
//! 2× relative quantile error — plenty for p50/p95/p99 readouts.
//!
//! [`TraceSink`]: crate::TraceSink

use crate::event::{EventKind, Phase};
use crate::span::{server_phase_index, SERVER_PHASES};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// Number of log buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values whose bit length is `i`, i.e. `[2^(i-1), 2^i - 1]`.
pub const NUM_BUCKETS: usize = 65;

/// Methodology codes the registry keeps per-methodology slots for, in
/// slot order (matches the paper's MS/CN/CV/CI).
pub const METHODOLOGIES: [&str; 4] = ["MS", "CN", "CV", "CI"];

/// All phases, in the order `phase_index` assigns slots.
pub const PHASES: [Phase; 7] = [
    Phase::VocabExchange,
    Phase::IndexExchange,
    Phase::GroupRank,
    Phase::RankFanout,
    Phase::HeaderFetch,
    Phase::DocFetch,
    Phase::Boolean,
];

fn methodology_index(code: &str) -> Option<usize> {
    METHODOLOGIES.iter().position(|&m| m == code)
}

/// Receptionist cache kinds the registry keeps per-cache slots for, in
/// slot order (result, term-statistics, answer-document caches).
pub const CACHE_KINDS: [&str; 3] = ["results", "stats", "docs"];

fn cache_index(cache: &str) -> Option<usize> {
    CACHE_KINDS.iter().position(|&c| c == cache)
}

fn phase_index(phase: Phase) -> usize {
    PHASES
        .iter()
        .position(|&p| p == phase)
        .expect("PHASES covers every Phase variant")
}

/// The bucket a value lands in: its bit length (0 for the value 0).
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (the quantile estimate for samples
/// that landed in it).
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64.. => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A thread-safe log-bucketed histogram of `u64` samples.
///
/// Recording is three or four relaxed atomic operations; there is no
/// lock. Quantiles are read from a [`HistogramSnapshot`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy for quantile readout.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        let mut count = 0u64;
        for (b, slot) in buckets.iter_mut().zip(&self.buckets) {
            *b = slot.load(Ordering::Relaxed);
            count += *b;
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// An immutable copy of a [`Histogram`], with quantile readout and
/// merge support. Two snapshots merge by bucket-wise addition, so
/// per-librarian histograms roll up into fleet histograms exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; NUM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (exact).
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Rebuilds a snapshot from sparse `(bucket, count)` pairs — the
    /// wire form used by `Message::StatsReply`. Bucket bounds stand in
    /// for the lost exact `min`/`max`/`sum`, so quantiles keep their
    /// usual at-most-one-bucket error.
    #[must_use]
    pub fn from_bucket_pairs(pairs: &[(u32, u64)]) -> Self {
        let mut snap = HistogramSnapshot::empty();
        for &(bucket, count) in pairs {
            let Some(slot) = snap.buckets.get_mut(bucket as usize) else {
                continue;
            };
            *slot += count;
            snap.count += count;
        }
        for (i, &c) in snap.buckets.iter().enumerate() {
            if c > 0 {
                snap.min = snap.min.min(if i == 0 {
                    0
                } else {
                    bucket_upper_bound(i - 1) + 1
                });
                snap.max = bucket_upper_bound(i);
                snap.sum = snap
                    .sum
                    .saturating_add(c.saturating_mul(bucket_upper_bound(i)));
            }
        }
        snap
    }

    /// The sparse `(bucket, count)` pairs of non-empty buckets.
    #[must_use]
    pub fn to_bucket_pairs(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// True when no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (0 < q ≤ 1) as the upper bound of the bucket the
    /// target rank falls in, clamped to the observed `[min, max]`.
    /// Returns 0 when empty. Monotone in `q` by construction, so
    /// `p99() ≥ p50() ≥ min` always holds.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile estimate.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile estimate.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Bucket-wise merge of two snapshots (associative and commutative).
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (out, (a, b)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&other.buckets))
        {
            *out = a + b;
        }
        HistogramSnapshot {
            buckets,
            count: self.count + other.count,
            // The live histogram's atomic sum wraps on overflow, so the
            // merge must wrap identically to stay associative.
            sum: self.sum.wrapping_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

/// Per-librarian atomic slots.
#[derive(Debug, Default)]
struct LibSlot {
    sent: AtomicU64,
    replies: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    timeouts: AtomicU64,
    retries: AtomicU64,
    faults: AtomicU64,
    failures: AtomicU64,
    latency: Histogram,
}

/// Per-methodology atomic slots.
#[derive(Debug, Default)]
struct MethodSlot {
    queries: AtomicU64,
    latency: Histogram,
}

/// Per-cache-kind atomic slots.
#[derive(Debug, Default)]
struct CacheSlot {
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    evictions: AtomicU64,
}

/// Event-correlation state: which operation/phases/requests are open.
/// Guarded by one small mutex; every field is bounded by the number of
/// librarians, so holding it never allocates on the steady state.
#[derive(Debug, Default)]
struct OpenState {
    /// `(methodology slot, Begin timestamp)` of the operation in flight.
    op: Option<(Option<usize>, u64)>,
    /// Open phase brackets, innermost last.
    phases: Vec<(Phase, u64)>,
    /// `(librarian, Sent timestamp)` of requests awaiting their reply.
    pending: Vec<(u32, u64)>,
}

/// The rolling metrics registry.
///
/// Create one, share it as an `Arc`, and tee a [`TraceSink`] into it
/// ([`TraceSink::tee_metrics`] or [`TraceSink::metrics_only`]); every
/// event the sink records then updates the registry. All counters are
/// monotone; [`MetricsRegistry::snapshot`] is safe to call at any time
/// from any thread.
///
/// [`TraceSink`]: crate::TraceSink
/// [`TraceSink::tee_metrics`]: crate::TraceSink::tee_metrics
/// [`TraceSink::metrics_only`]: crate::TraceSink::metrics_only
#[derive(Debug)]
pub struct MetricsRegistry {
    messages_sent: AtomicU64,
    messages_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    timeouts: AtomicU64,
    retries: AtomicU64,
    faults: AtomicU64,
    lib_failures: AtomicU64,
    merges: AtomicU64,
    merged_entries: AtomicU64,
    scored_candidates: AtomicU64,
    postings_decoded: AtomicU64,
    queries: AtomicU64,
    degraded_queries: AtomicU64,
    failovers: AtomicU64,
    membership_changes: AtomicU64,
    methodologies: [MethodSlot; 4],
    caches: [CacheSlot; 3],
    phases: [Histogram; 7],
    /// Server-side phase latency, in [`SERVER_PHASES`] slot order.
    server_phases: [Histogram; 4],
    librarians: RwLock<Vec<LibSlot>>,
    open: Mutex<OpenState>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry {
            messages_sent: AtomicU64::new(0),
            messages_received: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            lib_failures: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            merged_entries: AtomicU64::new(0),
            scored_candidates: AtomicU64::new(0),
            postings_decoded: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            degraded_queries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            membership_changes: AtomicU64::new(0),
            methodologies: Default::default(),
            caches: Default::default(),
            phases: Default::default(),
            server_phases: Default::default(),
            librarians: RwLock::new(Vec::new()),
            open: Mutex::new(OpenState::default()),
        }
    }

    /// Runs `f` with librarian `lib`'s slot, growing the table on first
    /// contact. The read lock covers the common case; growth takes the
    /// write lock once per librarian per registry lifetime.
    fn with_lib<R>(&self, lib: u32, f: impl FnOnce(&LibSlot) -> R) -> R {
        let lib = lib as usize;
        {
            let slots = self.librarians.read().unwrap();
            if let Some(slot) = slots.get(lib) {
                return f(slot);
            }
        }
        let mut slots = self.librarians.write().unwrap();
        while slots.len() <= lib {
            slots.push(LibSlot::default());
        }
        f(&slots[lib])
    }

    /// Applies one trace event to the registry. Called by the sink for
    /// every event it records; `at_micros` is the event's timestamp
    /// (wall-clock or simulated — latencies are timestamp differences,
    /// so both drivers meter identically).
    pub fn observe(&self, at_micros: u64, kind: &EventKind) {
        match kind {
            EventKind::Begin { methodology, .. } => {
                let slot = methodology.and_then(methodology_index);
                let mut open = self.open.lock().unwrap();
                open.op = Some((slot, at_micros));
                open.phases.clear();
                open.pending.clear();
            }
            EventKind::End => {
                let op = {
                    let mut open = self.open.lock().unwrap();
                    open.phases.clear();
                    open.pending.clear();
                    open.op.take()
                };
                if let Some((Some(slot), began)) = op {
                    self.queries.fetch_add(1, Ordering::Relaxed);
                    let m = &self.methodologies[slot];
                    m.queries.fetch_add(1, Ordering::Relaxed);
                    m.latency.record(at_micros.saturating_sub(began));
                }
            }
            EventKind::PhaseStart { phase } => {
                self.open.lock().unwrap().phases.push((*phase, at_micros));
            }
            EventKind::PhaseEnd { phase } => {
                let started = {
                    let mut open = self.open.lock().unwrap();
                    open.phases
                        .iter()
                        .rposition(|(p, _)| p == phase)
                        .map(|pos| open.phases.remove(pos).1)
                };
                if let Some(started) = started {
                    self.phases[phase_index(*phase)].record(at_micros.saturating_sub(started));
                }
            }
            EventKind::Sent {
                librarian, bytes, ..
            } => {
                self.messages_sent.fetch_add(1, Ordering::Relaxed);
                self.bytes_sent.fetch_add(*bytes, Ordering::Relaxed);
                self.with_lib(*librarian, |s| {
                    s.sent.fetch_add(1, Ordering::Relaxed);
                    s.bytes_sent.fetch_add(*bytes, Ordering::Relaxed);
                });
                self.open
                    .lock()
                    .unwrap()
                    .pending
                    .push((*librarian, at_micros));
            }
            EventKind::Reply {
                librarian, bytes, ..
            } => {
                self.messages_received.fetch_add(1, Ordering::Relaxed);
                self.bytes_received.fetch_add(*bytes, Ordering::Relaxed);
                let sent_at = {
                    let mut open = self.open.lock().unwrap();
                    open.pending
                        .iter()
                        .position(|(lib, _)| lib == librarian)
                        .map(|pos| open.pending.remove(pos).1)
                };
                self.with_lib(*librarian, |s| {
                    s.replies.fetch_add(1, Ordering::Relaxed);
                    s.bytes_received.fetch_add(*bytes, Ordering::Relaxed);
                    if let Some(sent_at) = sent_at {
                        s.latency.record(at_micros.saturating_sub(sent_at));
                    }
                });
            }
            EventKind::Timeout { librarian } => {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                self.with_lib(*librarian, |s| {
                    s.timeouts.fetch_add(1, Ordering::Relaxed);
                });
            }
            EventKind::Retry { librarian, .. } => {
                self.retries.fetch_add(1, Ordering::Relaxed);
                self.with_lib(*librarian, |s| {
                    s.retries.fetch_add(1, Ordering::Relaxed);
                });
            }
            EventKind::Fault { librarian, .. } => {
                self.faults.fetch_add(1, Ordering::Relaxed);
                self.with_lib(*librarian, |s| {
                    s.faults.fetch_add(1, Ordering::Relaxed);
                });
            }
            EventKind::LibFailed { librarian, .. } => {
                self.lib_failures.fetch_add(1, Ordering::Relaxed);
                self.with_lib(*librarian, |s| {
                    s.failures.fetch_add(1, Ordering::Relaxed);
                });
                let mut open = self.open.lock().unwrap();
                open.pending.retain(|(lib, _)| lib != librarian);
            }
            EventKind::Scored {
                candidates,
                postings,
                ..
            } => {
                self.scored_candidates
                    .fetch_add(u64::from(*candidates), Ordering::Relaxed);
                self.postings_decoded
                    .fetch_add(*postings, Ordering::Relaxed);
            }
            EventKind::Merge { entries, .. } => {
                self.merges.fetch_add(1, Ordering::Relaxed);
                self.merged_entries.fetch_add(*entries, Ordering::Relaxed);
            }
            EventKind::Coverage { failed, .. } => {
                if !failed.is_empty() {
                    self.degraded_queries.fetch_add(1, Ordering::Relaxed);
                }
            }
            EventKind::CacheHit { cache } => {
                if let Some(i) = cache_index(cache) {
                    self.caches[i].hits.fetch_add(1, Ordering::Relaxed);
                }
            }
            EventKind::CacheMiss { cache, stale } => {
                if let Some(i) = cache_index(cache) {
                    self.caches[i].misses.fetch_add(1, Ordering::Relaxed);
                    if *stale {
                        self.caches[i].stale.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            EventKind::CacheEvict { cache, entries } => {
                if let Some(i) = cache_index(cache) {
                    self.caches[i]
                        .evictions
                        .fetch_add(u64::from(*entries), Ordering::Relaxed);
                }
            }
            EventKind::Failover { .. } => {
                self.failovers.fetch_add(1, Ordering::Relaxed);
            }
            EventKind::Join { .. } | EventKind::Leave { .. } | EventKind::Migrate { .. } => {
                self.membership_changes.fetch_add(1, Ordering::Relaxed);
            }
            EventKind::ServerPhase { phase, micros, .. } => {
                if let Some(i) = server_phase_index(phase) {
                    self.server_phases[i].record(*micros);
                }
            }
            EventKind::Expansion { .. } => {}
        }
    }

    /// A point-in-time copy of every counter and histogram.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let per_librarian = self
            .librarians
            .read()
            .unwrap()
            .iter()
            .enumerate()
            .map(|(i, s)| LibrarianMetrics {
                librarian: i as u32,
                sent: load(&s.sent),
                replies: load(&s.replies),
                bytes_sent: load(&s.bytes_sent),
                bytes_received: load(&s.bytes_received),
                timeouts: load(&s.timeouts),
                retries: load(&s.retries),
                faults: load(&s.faults),
                failures: load(&s.failures),
                latency: s.latency.snapshot(),
            })
            .collect();
        let per_methodology = METHODOLOGIES
            .iter()
            .zip(&self.methodologies)
            .map(|(&code, slot)| MethodologyMetrics {
                code,
                queries: load(&slot.queries),
                latency: slot.latency.snapshot(),
            })
            .collect();
        let per_cache = CACHE_KINDS
            .iter()
            .zip(&self.caches)
            .map(|(&cache, slot)| CacheMetrics {
                cache,
                hits: load(&slot.hits),
                misses: load(&slot.misses),
                stale: load(&slot.stale),
                evictions: load(&slot.evictions),
            })
            .collect();
        let per_phase = PHASES
            .iter()
            .zip(&self.phases)
            .map(|(&phase, h)| (phase, h.snapshot()))
            .collect();
        let per_server_phase = SERVER_PHASES
            .iter()
            .zip(&self.server_phases)
            .map(|(&phase, h)| (phase, h.snapshot()))
            .collect();
        MetricsSnapshot {
            messages_sent: load(&self.messages_sent),
            messages_received: load(&self.messages_received),
            bytes_sent: load(&self.bytes_sent),
            bytes_received: load(&self.bytes_received),
            timeouts: load(&self.timeouts),
            retries: load(&self.retries),
            faults: load(&self.faults),
            lib_failures: load(&self.lib_failures),
            merges: load(&self.merges),
            merged_entries: load(&self.merged_entries),
            scored_candidates: load(&self.scored_candidates),
            postings_decoded: load(&self.postings_decoded),
            queries: load(&self.queries),
            degraded_queries: load(&self.degraded_queries),
            failovers: load(&self.failovers),
            membership_changes: load(&self.membership_changes),
            per_methodology,
            per_cache,
            per_librarian,
            per_phase,
            per_server_phase,
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

/// One librarian's rolled-up counters in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibrarianMetrics {
    /// Librarian index.
    pub librarian: u32,
    /// Requests sent to this librarian.
    pub sent: u64,
    /// Replies received from it.
    pub replies: u64,
    /// Request payload bytes sent to it.
    pub bytes_sent: u64,
    /// Reply payload bytes received from it.
    pub bytes_received: u64,
    /// Transport timeouts against it.
    pub timeouts: u64,
    /// Retries issued against it.
    pub retries: u64,
    /// Injected faults that fired against it.
    pub faults: u64,
    /// Times it dropped out of a fan-out (after retries).
    pub failures: u64,
    /// Request→reply latency in microseconds.
    pub latency: HistogramSnapshot,
}

impl LibrarianMetrics {
    /// Permanent failures plus timeouts, over requests sent — the
    /// client-observed error rate health checks use.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        (self.failures + self.timeouts) as f64 / (self.sent.max(1)) as f64
    }
}

/// One receptionist cache's rolled-up counters in a
/// [`MetricsSnapshot`]. All four counters are monotone; `hits + misses`
/// is the number of lookups, and `stale` counts the subset of misses
/// that lazily dropped an entry from an invalidated generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Cache kind (`"results"`, `"stats"`, `"docs"`).
    pub cache: &'static str,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Misses that dropped a stale-generation entry.
    pub stale: u64,
    /// Entries evicted to make room for inserts.
    pub evictions: u64,
}

/// One methodology's rolled-up counters in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodologyMetrics {
    /// Methodology code (`"MS"`, `"CN"`, `"CV"`, `"CI"`).
    pub code: &'static str,
    /// Completed query operations.
    pub queries: u64,
    /// Begin→End query latency in microseconds.
    pub latency: HistogramSnapshot,
}

/// Wire-level totals a finished registry implies — the same quantities
/// `TrafficStats` counts on the transports and a `QueryTrace` sums from
/// its `sent`/`reply` events. `tests/sim_vs_real.rs` asserts all three
/// accounting paths agree, so they cannot silently drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficTotals {
    /// Logical request/reply exchanges (one per `Sent` event).
    pub round_trips: u64,
    /// Request payload bytes.
    pub bytes_sent: u64,
    /// Reply payload bytes.
    pub bytes_received: u64,
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests sent across all librarians.
    pub messages_sent: u64,
    /// Replies received across all librarians.
    pub messages_received: u64,
    /// Request payload bytes.
    pub bytes_sent: u64,
    /// Reply payload bytes.
    pub bytes_received: u64,
    /// Transport timeouts.
    pub timeouts: u64,
    /// Retries issued.
    pub retries: u64,
    /// Injected faults that fired.
    pub faults: u64,
    /// Librarian fan-out drop-outs.
    pub lib_failures: u64,
    /// Merge operations performed.
    pub merges: u64,
    /// Entries folded into merges.
    pub merged_entries: u64,
    /// CI candidates scored.
    pub scored_candidates: u64,
    /// Postings decoded while scoring.
    pub postings_decoded: u64,
    /// Completed query operations (any methodology).
    pub queries: u64,
    /// Queries whose coverage was degraded.
    pub degraded_queries: u64,
    /// Requests rerouted to another replica after a transient error.
    pub failovers: u64,
    /// Fleet membership changes observed (joins, leaves, migrations).
    pub membership_changes: u64,
    /// Per-methodology slots, in [`METHODOLOGIES`] order.
    pub per_methodology: Vec<MethodologyMetrics>,
    /// Per-cache slots, in [`CACHE_KINDS`] order.
    pub per_cache: Vec<CacheMetrics>,
    /// Per-librarian slots, in librarian index order.
    pub per_librarian: Vec<LibrarianMetrics>,
    /// Per-phase latency histograms, in [`PHASES`] order.
    pub per_phase: Vec<(Phase, HistogramSnapshot)>,
    /// Server-side phase latency histograms (queue wait, scan, rank,
    /// serialize), in [`SERVER_PHASES`] order. Fed from `server_phase`
    /// trace events — zero-duration in drivers without a server clock,
    /// so counts stay comparable across backends while sums attribute
    /// real server time.
    pub per_server_phase: Vec<(&'static str, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The wire totals this snapshot implies (see [`TrafficTotals`]).
    #[must_use]
    pub fn traffic_totals(&self) -> TrafficTotals {
        TrafficTotals {
            round_trips: self.messages_sent,
            bytes_sent: self.bytes_sent,
            bytes_received: self.bytes_received,
        }
    }

    /// Query latency merged across all methodologies.
    #[must_use]
    pub fn query_latency(&self) -> HistogramSnapshot {
        self.per_methodology
            .iter()
            .fold(HistogramSnapshot::empty(), |acc, m| acc.merge(&m.latency))
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4) — `# HELP`/`# TYPE` comments, counters, and
    /// cumulative-bucket histograms. Hand-rolled, no dependencies, like
    /// the crate's JSON encoding.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let counter = |out: &mut String, name: &str, help: &str, samples: &[(String, u64)]| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for (labels, value) in samples {
                out.push_str(&format!("{name}{labels} {value}\n"));
            }
        };
        counter(
            &mut out,
            "teraphim_messages_total",
            "Protocol messages exchanged, by direction.",
            &[
                ("{direction=\"sent\"}".into(), self.messages_sent),
                ("{direction=\"received\"}".into(), self.messages_received),
            ],
        );
        counter(
            &mut out,
            "teraphim_bytes_total",
            "Payload bytes on the wire, by direction.",
            &[
                ("{direction=\"sent\"}".into(), self.bytes_sent),
                ("{direction=\"received\"}".into(), self.bytes_received),
            ],
        );
        counter(
            &mut out,
            "teraphim_timeouts_total",
            "Transport timeouts.",
            &[(String::new(), self.timeouts)],
        );
        counter(
            &mut out,
            "teraphim_retries_total",
            "Transport retries issued.",
            &[(String::new(), self.retries)],
        );
        counter(
            &mut out,
            "teraphim_faults_total",
            "Injected faults that fired.",
            &[(String::new(), self.faults)],
        );
        counter(
            &mut out,
            "teraphim_librarian_failures_total",
            "Librarian fan-out drop-outs (after retries).",
            &[(String::new(), self.lib_failures)],
        );
        counter(
            &mut out,
            "teraphim_merged_entries_total",
            "Ranking entries folded into merges.",
            &[(String::new(), self.merged_entries)],
        );
        counter(
            &mut out,
            "teraphim_scored_candidates_total",
            "CI candidates scored at librarians.",
            &[(String::new(), self.scored_candidates)],
        );
        counter(
            &mut out,
            "teraphim_postings_decoded_total",
            "Postings decoded while scoring CI candidates.",
            &[(String::new(), self.postings_decoded)],
        );
        counter(
            &mut out,
            "teraphim_degraded_queries_total",
            "Queries answered with degraded coverage.",
            &[(String::new(), self.degraded_queries)],
        );
        counter(
            &mut out,
            "teraphim_failovers_total",
            "Requests rerouted to another replica after a transient error.",
            &[(String::new(), self.failovers)],
        );
        counter(
            &mut out,
            "teraphim_membership_changes_total",
            "Fleet membership changes (joins, leaves, migrations).",
            &[(String::new(), self.membership_changes)],
        );
        let cache_samples: Vec<(String, u64)> = self
            .per_cache
            .iter()
            .flat_map(|c| {
                [
                    (format!("{{cache=\"{}\",outcome=\"hit\"}}", c.cache), c.hits),
                    (
                        format!("{{cache=\"{}\",outcome=\"miss\"}}", c.cache),
                        c.misses,
                    ),
                    (
                        format!("{{cache=\"{}\",outcome=\"stale\"}}", c.cache),
                        c.stale,
                    ),
                    (
                        format!("{{cache=\"{}\",outcome=\"evict\"}}", c.cache),
                        c.evictions,
                    ),
                ]
            })
            .collect();
        counter(
            &mut out,
            "teraphim_cache_events_total",
            "Receptionist cache lookups and evictions, by cache and outcome.",
            &cache_samples,
        );
        let query_samples: Vec<(String, u64)> = self
            .per_methodology
            .iter()
            .map(|m| (format!("{{methodology=\"{}\"}}", m.code), m.queries))
            .collect();
        counter(
            &mut out,
            "teraphim_queries_total",
            "Completed query operations, by methodology.",
            &query_samples,
        );
        let lib_label = |lib: u32| format!("librarian=\"{lib}\"");
        let sent_samples: Vec<(String, u64)> = self
            .per_librarian
            .iter()
            .map(|l| (format!("{{{}}}", lib_label(l.librarian)), l.sent))
            .collect();
        counter(
            &mut out,
            "teraphim_librarian_requests_total",
            "Requests sent, by librarian.",
            &sent_samples,
        );
        let err_samples: Vec<(String, u64)> = self
            .per_librarian
            .iter()
            .flat_map(|l| {
                [
                    (
                        format!("{{{},kind=\"timeout\"}}", lib_label(l.librarian)),
                        l.timeouts,
                    ),
                    (
                        format!("{{{},kind=\"failure\"}}", lib_label(l.librarian)),
                        l.failures,
                    ),
                    (
                        format!("{{{},kind=\"retry\"}}", lib_label(l.librarian)),
                        l.retries,
                    ),
                ]
            })
            .collect();
        counter(
            &mut out,
            "teraphim_librarian_errors_total",
            "Timeouts, failures and retries, by librarian.",
            &err_samples,
        );
        render_histogram_family(
            &mut out,
            "teraphim_query_latency_micros",
            "Query latency in microseconds, by methodology.",
            &self
                .per_methodology
                .iter()
                .filter(|m| !m.latency.is_empty())
                .map(|m| (format!("methodology=\"{}\"", m.code), &m.latency))
                .collect::<Vec<_>>(),
        );
        render_histogram_family(
            &mut out,
            "teraphim_librarian_latency_micros",
            "Request-to-reply latency in microseconds, by librarian.",
            &self
                .per_librarian
                .iter()
                .filter(|l| !l.latency.is_empty())
                .map(|l| (lib_label(l.librarian), &l.latency))
                .collect::<Vec<_>>(),
        );
        render_histogram_family(
            &mut out,
            "teraphim_phase_latency_micros",
            "Phase latency in microseconds, by lifecycle phase.",
            &self
                .per_phase
                .iter()
                .filter(|(_, h)| !h.is_empty())
                .map(|(p, h)| (format!("phase=\"{}\"", p.as_str()), h))
                .collect::<Vec<_>>(),
        );
        render_histogram_family(
            &mut out,
            "teraphim_server_phase_latency_micros",
            "Server-side phase latency in microseconds (queue wait, scan, rank, serialize).",
            &self
                .per_server_phase
                .iter()
                .filter(|(_, h)| !h.is_empty())
                .map(|(p, h)| (format!("phase=\"{p}\""), h))
                .collect::<Vec<_>>(),
        );
        out
    }
}

/// Renders one histogram metric family with cumulative `le` buckets.
fn render_histogram_family(
    out: &mut String,
    name: &str,
    help: &str,
    series: &[(String, &HistogramSnapshot)],
) {
    if series.is_empty() {
        return;
    }
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    for (labels, snap) in series {
        let last = snap.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut cumulative = 0u64;
        for (i, &c) in snap.buckets.iter().enumerate().take(last + 1) {
            cumulative += c;
            out.push_str(&format!(
                "{name}_bucket{{{labels},le=\"{}\"}} {cumulative}\n",
                bucket_upper_bound(i)
            ));
        }
        out.push_str(&format!(
            "{name}_bucket{{{labels},le=\"+Inf\"}} {}\n",
            snap.count
        ));
        out.push_str(&format!("{name}_sum{{{labels}}} {}\n", snap.sum));
        out.push_str(&format!("{name}_count{{{labels}}} {}\n", snap.count));
    }
}

/// Checks `text` against the Prometheus text-format rules the CI smoke
/// run enforces: every sample line parses as `name[{labels}] value`,
/// every sampled family has a preceding `# TYPE`, and label blocks are
/// well-formed. Returns the first violation.
///
/// # Errors
///
/// Returns a message naming the offending line.
pub fn lint_prometheus(text: &str) -> Result<(), String> {
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
    }
    let mut typed: Vec<String> = Vec::new();
    let mut helped: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let err = |msg: &str| Err(format!("line {}: {msg}: {line:?}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(decl) = rest.strip_prefix("HELP ") {
                let Some(name) = decl.split_whitespace().next() else {
                    return err("malformed HELP line");
                };
                if !valid_name(name) {
                    return err("invalid metric name in HELP line");
                }
                if helped.contains(&name.to_owned()) {
                    return err("duplicate HELP declaration");
                }
                helped.push(name.to_owned());
                continue;
            }
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                    return err("malformed TYPE line");
                };
                if !valid_name(name) {
                    return err("invalid metric name in TYPE line");
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return err("unknown metric type");
                }
                if typed.contains(&name.to_owned()) {
                    return err("duplicate TYPE declaration");
                }
                typed.push(name.to_owned());
            }
            continue;
        }
        if line.starts_with('#') {
            return err("comment must be `# HELP` or `# TYPE`");
        }
        // Sample line: name[{labels}] value
        let (name_and_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: missing value: {line:?}", lineno + 1))?;
        if value.parse::<f64>().is_err() {
            return err("value is not a number");
        }
        let name = match name_and_labels.split_once('{') {
            Some((name, labels)) => {
                let Some(labels) = labels.strip_suffix('}') else {
                    return err("unterminated label block");
                };
                for pair in labels.split(',') {
                    let Some((k, v)) = pair.split_once('=') else {
                        return err("label without `=`");
                    };
                    if !valid_name(k) {
                        return err("invalid label name");
                    }
                    if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                        return err("label value must be quoted");
                    }
                }
                name
            }
            None => name_and_labels,
        };
        if !valid_name(name) {
            return err("invalid metric name");
        }
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| typed.contains(&(*f).to_owned()))
            .unwrap_or(name);
        if !typed.contains(&family.to_owned()) {
            return err("sample without a preceding TYPE declaration");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        // Satellite: 0, u64::MAX and exact power-of-two edges.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index((1 << 20) - 1), 20);
        assert_eq!(bucket_index(1 << 20), 21);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value's bucket upper bound is >= the value.
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            5,
            1023,
            1024,
            1025,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert!(bucket_upper_bound(bucket_index(v)) >= v, "{v}");
        }
    }

    #[test]
    fn extreme_values_record_and_read_back() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.quantile(0.25), 0);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn empty_snapshot_reads_zero() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantiles_bound_true_values_within_a_bucket() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        // True p50 is 500; the estimate is its bucket's upper bound.
        let p50 = s.p50();
        assert!((500..=1023).contains(&p50), "p50 {p50}");
        let p99 = s.p99();
        assert!((990..=1023).contains(&p99), "p99 {p99}");
        assert!(p99 >= p50);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |values: &[u64]| {
            let h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[0, 5, 17]);
        let b = mk(&[1, 1, 1024, u64::MAX]);
        let c = mk(&[999_999]);
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        let all = a.merge(&b).merge(&c);
        assert_eq!(all.count, 8);
        assert_eq!(all, mk(&[0, 5, 17, 1, 1, 1024, u64::MAX, 999_999]));
    }

    #[test]
    fn bucket_pairs_roundtrip_counts() {
        let h = Histogram::new();
        for v in [0u64, 3, 3, 900, 40_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let rebuilt = HistogramSnapshot::from_bucket_pairs(&s.to_bucket_pairs());
        assert_eq!(rebuilt.buckets, s.buckets);
        assert_eq!(rebuilt.count, s.count);
        // Exact min/max are lost over the wire but bucket bounds keep
        // the quantile error within one bucket.
        assert!(rebuilt.p50() >= s.p50() / 2);
        // Out-of-range bucket indexes are ignored, not a panic.
        let odd = HistogramSnapshot::from_bucket_pairs(&[(200, 5), (1, 2)]);
        assert_eq!(odd.count, 2);
    }

    #[test]
    fn registry_correlates_sent_reply_latency() {
        let r = MetricsRegistry::new();
        r.observe(
            0,
            &EventKind::Begin {
                op: "query",
                methodology: Some("CN"),
                query_id: 1,
                k: 10,
            },
        );
        r.observe(
            5,
            &EventKind::Sent {
                librarian: 2,
                bytes: 40,
                message: "RankRequest",
            },
        );
        r.observe(
            105,
            &EventKind::Reply {
                librarian: 2,
                bytes: 80,
                message: "RankResponse",
            },
        );
        r.observe(200, &EventKind::End);
        let s = r.snapshot();
        assert_eq!(s.messages_sent, 1);
        assert_eq!(s.bytes_received, 80);
        assert_eq!(s.queries, 1);
        let lib = &s.per_librarian[2];
        assert_eq!(lib.latency.count, 1);
        assert_eq!(lib.latency.min, 100);
        let cn = &s.per_methodology[1];
        assert_eq!(cn.code, "CN");
        assert_eq!(cn.queries, 1);
        assert_eq!(cn.latency.min, 200);
        assert_eq!(s.traffic_totals().round_trips, 1);
    }

    #[test]
    fn registry_counts_failures_and_degradation() {
        let r = MetricsRegistry::new();
        r.observe(
            0,
            &EventKind::Begin {
                op: "query_with_coverage",
                methodology: Some("CV"),
                query_id: 0,
                k: 5,
            },
        );
        r.observe(
            1,
            &EventKind::Sent {
                librarian: 0,
                bytes: 10,
                message: "RankWeightedRequest",
            },
        );
        r.observe(
            2,
            &EventKind::LibFailed {
                librarian: 0,
                error: "unavailable",
            },
        );
        r.observe(
            3,
            &EventKind::Coverage {
                answered: vec![1],
                failed: vec![0],
                docs_permille: Some(500),
            },
        );
        r.observe(4, &EventKind::End);
        let s = r.snapshot();
        assert_eq!(s.lib_failures, 1);
        assert_eq!(s.degraded_queries, 1);
        assert_eq!(s.per_librarian[0].failures, 1);
        assert!(s.per_librarian[0].error_rate() >= 1.0);
        // The failed request's pending entry was discarded: no latency.
        assert!(s.per_librarian[0].latency.is_empty());
    }

    #[test]
    fn prometheus_exposition_passes_the_lint() {
        let r = MetricsRegistry::new();
        r.observe(
            0,
            &EventKind::Begin {
                op: "query",
                methodology: Some("CI"),
                query_id: 0,
                k: 5,
            },
        );
        r.observe(
            1,
            &EventKind::PhaseStart {
                phase: Phase::RankFanout,
            },
        );
        r.observe(
            2,
            &EventKind::Sent {
                librarian: 0,
                bytes: 11,
                message: "ScoreCandidatesRequest",
            },
        );
        r.observe(
            9,
            &EventKind::Reply {
                librarian: 0,
                bytes: 22,
                message: "ScoreResponse",
            },
        );
        r.observe(
            10,
            &EventKind::PhaseEnd {
                phase: Phase::RankFanout,
            },
        );
        r.observe(11, &EventKind::End);
        let text = r.snapshot().render_prometheus();
        lint_prometheus(&text).unwrap();
        assert!(text.contains("teraphim_queries_total{methodology=\"CI\"} 1"));
        assert!(text.contains("teraphim_librarian_latency_micros_count{librarian=\"0\"} 1"));
        assert!(text.contains("teraphim_phase_latency_micros"));
    }

    #[test]
    fn lint_rejects_malformed_expositions() {
        assert!(lint_prometheus("teraphim_x_total 1\n").is_err(), "no TYPE");
        assert!(
            lint_prometheus("# TYPE m counter\nm{bad} 1\n").is_err(),
            "label without ="
        );
        assert!(
            lint_prometheus("# TYPE m counter\nm not_a_number\n").is_err(),
            "bad value"
        );
        assert!(
            lint_prometheus("# TYPE m wibble\n").is_err(),
            "unknown type"
        );
        assert!(
            lint_prometheus("# TYPE m counter\n# TYPE m counter\n").is_err(),
            "duplicate TYPE"
        );
        assert!(
            lint_prometheus("# HELP m a\n# HELP m b\n# TYPE m counter\nm 1\n").is_err(),
            "duplicate HELP"
        );
        assert!(lint_prometheus("# TYPE m counter\nm{a=\"b\"} 1\nm 2.5\n").is_ok());
    }

    #[test]
    fn server_phase_events_feed_their_own_family() {
        let r = MetricsRegistry::new();
        r.observe(
            0,
            &EventKind::ServerPhase {
                librarian: 1,
                phase: "queue_wait",
                micros: 500,
            },
        );
        r.observe(
            0,
            &EventKind::ServerPhase {
                librarian: 1,
                phase: "rank",
                micros: 20,
            },
        );
        let snap = r.snapshot();
        assert_eq!(snap.per_server_phase.len(), SERVER_PHASES.len());
        assert_eq!(snap.per_server_phase[0].0, "queue_wait");
        assert_eq!(snap.per_server_phase[0].1.sum, 500);
        assert_eq!(snap.per_server_phase[2].1.count, 1);
        assert_eq!(snap.per_server_phase[1].1.count, 0, "scan untouched");
        let text = snap.render_prometheus();
        lint_prometheus(&text).unwrap();
        assert!(text.contains("teraphim_server_phase_latency_micros_sum{phase=\"queue_wait\"} 500"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        // Satellite: for arbitrary sample sets, quantiles are ordered
        // and bracketed by the observed extremes.
        #[test]
        fn quantiles_are_monotone_and_bounded(
            samples in proptest::collection::vec(any::<u64>(), 1..200),
        ) {
            let h = Histogram::new();
            let mut min = u64::MAX;
            let mut max = 0u64;
            for &v in &samples {
                h.record(v);
                min = min.min(v);
                max = max.max(v);
            }
            let s = h.snapshot();
            prop_assert_eq!(s.count, samples.len() as u64);
            prop_assert_eq!(s.min, min);
            prop_assert_eq!(s.max, max);
            let p50 = s.p50();
            let p95 = s.p95();
            let p99 = s.p99();
            prop_assert!(p99 >= p95);
            prop_assert!(p95 >= p50);
            prop_assert!(p50 >= min, "p50 {} < min {}", p50, min);
            prop_assert!(p99 <= max, "p99 {} > max {}", p99, max);
        }

        #[test]
        fn merge_matches_recording_everything_once(
            a in proptest::collection::vec(any::<u64>(), 0..100),
            b in proptest::collection::vec(any::<u64>(), 0..100),
        ) {
            let ha = Histogram::new();
            let hb = Histogram::new();
            let hall = Histogram::new();
            for &v in &a { ha.record(v); hall.record(v); }
            for &v in &b { hb.record(v); hall.record(v); }
            prop_assert_eq!(ha.snapshot().merge(&hb.snapshot()), hall.snapshot());
        }
    }
}
