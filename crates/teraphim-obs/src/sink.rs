//! The [`TraceSink`] — a cheap, cloneable event collector.
//!
//! A sink is either *disabled* (the default: a `None` inner, no allocation,
//! every call a no-op) or *attached* (an `Arc` around a mutex-guarded event
//! buffer). Components hold clones of the same sink so events from transport
//! wrappers, fan-out workers and the receptionist interleave into one
//! stream, which [`TraceSink::take_traces`] later splits into per-operation
//! [`QueryTrace`] values.

use crate::event::{EventKind, TraceEvent};
use crate::flight::{FlightEntry, FlightRecorder};
use crate::metrics::MetricsRegistry;
use crate::span::SpanTree;
use crate::trace::QueryTrace;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// An operation in flight for the attached flight recorder: its own
/// event side-buffer, so exemplar capture works even on a
/// [`TraceSink::metrics_only`] sink that never buffers traces.
#[derive(Debug)]
struct PendingOp {
    trace_id: u64,
    began_at: u64,
    op: &'static str,
    methodology: Option<&'static str>,
    query_id: u32,
    k: u32,
    events: Vec<TraceEvent>,
}

#[derive(Debug)]
struct FlightState {
    recorder: FlightRecorder,
    current: Option<PendingOp>,
}

#[derive(Debug)]
struct SinkInner {
    driver: &'static str,
    enabled: AtomicBool,
    /// When false the sink still runs (and tees into `metrics`) but does
    /// not buffer events — the metrics-only mode long-running fleets use
    /// so the buffer cannot grow without bound.
    buffer_events: bool,
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    /// Registry every recorded event is also applied to, when teed.
    metrics: Mutex<Option<Arc<MetricsRegistry>>>,
    /// Trace id of the most recently begun operation; bumped on every
    /// [`EventKind::Begin`]. Ids are per-sink and start at 1.
    trace_id: AtomicU64,
    /// Fast-path guard for `flight`: checked with one atomic load so an
    /// unattached recorder costs nothing per event.
    flight_on: AtomicBool,
    /// Attached flight recorder plus the operation it is following.
    flight: Mutex<Option<FlightState>>,
}

/// A shared, thread-safe collector of [`TraceEvent`]s.
///
/// Cloning is cheap (an `Arc` clone) and all clones feed the same buffer.
/// The zero-cost default is [`TraceSink::disabled`], which never allocates;
/// instrumented code guards any expensive event construction behind
/// [`TraceSink::is_enabled`].
#[derive(Debug, Clone)]
pub struct TraceSink {
    inner: Option<Arc<SinkInner>>,
}

impl TraceSink {
    /// A new sink for a real (wall-clock) driver, initially enabled.
    #[must_use]
    pub fn new() -> Self {
        Self::for_driver("real")
    }

    /// A new enabled sink labelled with a driver name (`"real"`, `"sim"`).
    ///
    /// The label is stamped onto every trace the sink produces so test
    /// harnesses can tell which driver emitted a trace before normalizing.
    #[must_use]
    pub fn for_driver(driver: &'static str) -> Self {
        TraceSink {
            inner: Some(Arc::new(SinkInner {
                driver,
                enabled: AtomicBool::new(true),
                buffer_events: true,
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
                metrics: Mutex::new(None),
                trace_id: AtomicU64::new(0),
                flight_on: AtomicBool::new(false),
                flight: Mutex::new(None),
            })),
        }
    }

    /// A sink that feeds `registry` but never buffers events.
    ///
    /// Instrumented code sees an enabled sink (so it constructs event
    /// payloads as usual) and every event updates the registry, but the
    /// in-memory trace buffer stays empty — the right mode for a
    /// long-running fleet where buffering every event forever would leak.
    /// [`TraceSink::take_traces`] on such a sink always returns nothing.
    #[must_use]
    pub fn metrics_only(registry: Arc<MetricsRegistry>) -> Self {
        TraceSink {
            inner: Some(Arc::new(SinkInner {
                driver: "metrics",
                enabled: AtomicBool::new(true),
                buffer_events: false,
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
                metrics: Mutex::new(Some(registry)),
                trace_id: AtomicU64::new(0),
                flight_on: AtomicBool::new(false),
                flight: Mutex::new(None),
            })),
        }
    }

    /// Tees this sink into `registry`: from now on every recorded event
    /// also updates the registry, with no new instrumentation points.
    /// No-op on a disabled sink. All clones observe the tee.
    pub fn tee_metrics(&self, registry: Arc<MetricsRegistry>) {
        if let Some(inner) = &self.inner {
            *inner.metrics.lock().unwrap() = Some(registry);
        }
    }

    /// The registry this sink tees into, if any.
    #[must_use]
    pub fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.metrics.lock().unwrap().clone())
    }

    /// The no-op sink: records nothing, allocates nothing.
    #[must_use]
    pub const fn disabled() -> Self {
        TraceSink { inner: None }
    }

    /// Whether events are currently being recorded.
    ///
    /// Call sites use this to skip constructing expensive event payloads
    /// (e.g. re-encoding a message to learn its wire length).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        match &self.inner {
            Some(inner) => inner.enabled.load(Ordering::Relaxed),
            None => false,
        }
    }

    /// Pauses or resumes recording on an attached sink (no-op when
    /// disabled). All clones observe the change.
    pub fn set_enabled(&self, on: bool) {
        if let Some(inner) = &self.inner {
            inner.enabled.store(on, Ordering::Relaxed);
        }
    }

    /// The driver label traces from this sink carry.
    #[must_use]
    pub fn driver(&self) -> &'static str {
        self.inner.as_ref().map_or("disabled", |inner| inner.driver)
    }

    /// Records an event stamped with the wall-clock time since the sink was
    /// created. No-op when the sink is disabled.
    pub fn record(&self, kind: EventKind) {
        if let Some(inner) = &self.inner {
            if inner.enabled.load(Ordering::Relaxed) {
                let at_micros =
                    u64::try_from(inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
                Self::deliver(inner, at_micros, kind);
            }
        }
    }

    /// Records an event at an explicit timestamp (used by the simulator,
    /// which runs on virtual time). No-op when the sink is disabled.
    pub fn record_at(&self, at_micros: u64, kind: EventKind) {
        if let Some(inner) = &self.inner {
            if inner.enabled.load(Ordering::Relaxed) {
                Self::deliver(inner, at_micros, kind);
            }
        }
    }

    /// Tees an event into the attached registry (if any), feeds the
    /// flight recorder's side-buffer, and buffers it.
    fn deliver(inner: &SinkInner, at_micros: u64, kind: EventKind) {
        if let EventKind::Begin { .. } = kind {
            inner.trace_id.fetch_add(1, Ordering::Relaxed);
        }
        let registry = inner.metrics.lock().unwrap().clone();
        if let Some(registry) = registry {
            registry.observe(at_micros, &kind);
        }
        if inner.flight_on.load(Ordering::Relaxed) {
            Self::deliver_flight(inner, at_micros, &kind);
        }
        if inner.buffer_events {
            inner
                .events
                .lock()
                .unwrap()
                .push(TraceEvent { at_micros, kind });
        }
    }

    /// Routes one event into the attached flight recorder's pending
    /// operation; on `End`, stitches the side-buffer into a span tree
    /// and offers it for retention.
    fn deliver_flight(inner: &SinkInner, at_micros: u64, kind: &EventKind) {
        let mut guard = inner.flight.lock().unwrap();
        let Some(state) = guard.as_mut() else { return };
        match kind {
            EventKind::Begin {
                op,
                methodology,
                query_id,
                k,
            } => {
                state.current = Some(PendingOp {
                    trace_id: inner.trace_id.load(Ordering::Relaxed),
                    began_at: at_micros,
                    op,
                    methodology: *methodology,
                    query_id: *query_id,
                    k: *k,
                    events: Vec::new(),
                });
            }
            EventKind::End => {
                if let Some(pending) = state.current.take() {
                    let duration = at_micros.saturating_sub(pending.began_at);
                    let recorder = state.recorder.clone();
                    drop(guard);
                    recorder.record_entry(|| {
                        let mut trace = QueryTrace {
                            driver: inner.driver.to_owned(),
                            op: pending.op.to_owned(),
                            methodology: pending.methodology.map(str::to_owned),
                            query_id: pending.query_id,
                            k: pending.k,
                            complete: true,
                            events: pending.events,
                        };
                        trace.events.sort_by_key(|e| e.at_micros);
                        let mut tree = SpanTree::from_trace(&trace);
                        tree.trace_id = pending.trace_id;
                        FlightEntry {
                            trace_id: pending.trace_id,
                            op: trace.op.clone(),
                            methodology: trace.methodology.clone(),
                            query_id: trace.query_id,
                            duration_micros: duration,
                            faulted: tree.faulted,
                            degraded: tree.degraded,
                            json: tree.to_json(),
                        }
                    });
                }
            }
            _ => {
                if let Some(pending) = state.current.as_mut() {
                    pending.events.push(TraceEvent {
                        at_micros,
                        kind: kind.clone(),
                    });
                }
            }
        }
    }

    /// Attaches a flight recorder: from now on every completed traced
    /// operation is stitched into a span tree and offered to `recorder`
    /// for tail-based retention. Works on buffering and metrics-only
    /// sinks alike (the recorder keeps its own per-operation
    /// side-buffer). Attaching a disabled recorder detaches. No-op on a
    /// disabled sink; all clones observe the attachment.
    pub fn attach_flight(&self, recorder: FlightRecorder) {
        if let Some(inner) = &self.inner {
            let on = recorder.is_enabled();
            *inner.flight.lock().unwrap() = on.then_some(FlightState {
                recorder,
                current: None,
            });
            inner.flight_on.store(on, Ordering::Relaxed);
        }
    }

    /// The attached flight recorder, or a disabled one.
    #[must_use]
    pub fn flight(&self) -> FlightRecorder {
        self.inner
            .as_ref()
            .and_then(|inner| {
                inner
                    .flight
                    .lock()
                    .unwrap()
                    .as_ref()
                    .map(|s| s.recorder.clone())
            })
            .unwrap_or_default()
    }

    /// The trace id of the most recently begun operation (ids are
    /// per-sink, starting at 1), or 0 when nothing has begun or the
    /// sink is disabled. The fan-out layer stamps this into the
    /// [`SpanContext`](crate::SpanContext) it sends with each request.
    #[must_use]
    pub fn current_trace_id(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.trace_id.load(Ordering::Relaxed))
    }

    /// Discards all buffered events.
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.events.lock().unwrap().clear();
        }
    }

    /// Drains the buffered event stream and splits it into per-operation
    /// traces.
    ///
    /// The stream is cut at [`EventKind::Begin`] / [`EventKind::End`]
    /// markers; events recorded outside any operation are dropped, and an
    /// operation missing its `End` (an error path, or a drain mid-query) is
    /// kept as a partial trace with [`QueryTrace::complete`] false. Within
    /// each trace, events are stably sorted by timestamp — a no-op for real
    /// drivers, which record in time order, but required for the simulator,
    /// which records librarian by librarian.
    #[must_use]
    pub fn take_traces(&self) -> Vec<QueryTrace> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let drained: Vec<TraceEvent> = std::mem::take(&mut *inner.events.lock().unwrap());
        let mut traces = Vec::new();
        let mut current: Option<QueryTrace> = None;
        let finish = |mut trace: QueryTrace, complete: bool, traces: &mut Vec<QueryTrace>| {
            trace.complete = complete;
            trace.events.sort_by_key(|e| e.at_micros);
            traces.push(trace);
        };
        for event in drained {
            match event.kind {
                EventKind::Begin {
                    op,
                    methodology,
                    query_id,
                    k,
                } => {
                    if let Some(trace) = current.take() {
                        finish(trace, false, &mut traces);
                    }
                    current = Some(QueryTrace {
                        driver: inner.driver.to_owned(),
                        op: op.to_owned(),
                        methodology: methodology.map(str::to_owned),
                        query_id,
                        k,
                        complete: false,
                        events: Vec::new(),
                    });
                }
                EventKind::End => {
                    if let Some(trace) = current.take() {
                        finish(trace, true, &mut traces);
                    }
                }
                _ => {
                    if let Some(trace) = &mut current {
                        trace.events.push(event);
                    }
                }
            }
        }
        if let Some(trace) = current.take() {
            finish(trace, false, &mut traces);
        }
        traces
    }
}

impl Default for TraceSink {
    /// The default sink is [`TraceSink::disabled`].
    fn default() -> Self {
        TraceSink::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;
    use crate::metrics::MetricsRegistry;
    use std::sync::Arc;

    fn begin(op: &'static str) -> EventKind {
        EventKind::Begin {
            op,
            methodology: Some("CV"),
            query_id: 7,
            k: 10,
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        sink.record(begin("query"));
        sink.record(EventKind::End);
        assert!(sink.take_traces().is_empty());
    }

    #[test]
    fn events_split_into_traces_on_begin_end() {
        let sink = TraceSink::new();
        sink.record(EventKind::Merge { entries: 9, k: 1 }); // outside any op: dropped
        sink.record(begin("query"));
        sink.record(EventKind::PhaseStart {
            phase: Phase::RankFanout,
        });
        sink.record(EventKind::End);
        sink.record(begin("headers"));
        let traces = sink.take_traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].op, "query");
        assert_eq!(traces[0].query_id, 7);
        assert!(traces[0].complete);
        assert_eq!(traces[0].events.len(), 1);
        assert!(!traces[1].complete, "unterminated trace kept as partial");
        assert!(sink.take_traces().is_empty(), "drain empties the buffer");
    }

    #[test]
    fn take_traces_sorts_simulated_events_by_time() {
        let sink = TraceSink::for_driver("sim");
        sink.record_at(0, begin("query"));
        sink.record_at(
            50,
            EventKind::Reply {
                librarian: 1,
                bytes: 8,
                message: "RankResponse",
            },
        );
        sink.record_at(
            10,
            EventKind::Sent {
                librarian: 0,
                bytes: 4,
                message: "RankRequest",
            },
        );
        sink.record_at(60, EventKind::End);
        let traces = sink.take_traces();
        assert_eq!(traces[0].driver, "sim");
        assert_eq!(traces[0].events[0].at_micros, 10);
        assert_eq!(traces[0].events[1].at_micros, 50);
    }

    #[test]
    fn teed_sink_updates_registry_and_buffer() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = TraceSink::new();
        sink.tee_metrics(Arc::clone(&registry));
        sink.record(begin("query"));
        sink.record(EventKind::Sent {
            librarian: 3,
            bytes: 21,
            message: "RankRequest",
        });
        sink.record(EventKind::Reply {
            librarian: 3,
            bytes: 42,
            message: "RankResponse",
        });
        sink.record(EventKind::End);
        let snap = registry.snapshot();
        assert_eq!(snap.messages_sent, 1);
        assert_eq!(snap.bytes_received, 42);
        assert_eq!(snap.per_librarian[3].latency.count, 1);
        assert_eq!(sink.take_traces().len(), 1, "events still buffered");
    }

    #[test]
    fn metrics_only_sink_never_buffers() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = TraceSink::metrics_only(Arc::clone(&registry));
        assert!(sink.is_enabled());
        assert!(sink.metrics().is_some());
        sink.record(begin("query"));
        sink.record(EventKind::End);
        assert!(sink.take_traces().is_empty());
        assert_eq!(registry.snapshot().queries, 1);
    }

    #[test]
    fn trace_ids_increment_per_begin() {
        let sink = TraceSink::new();
        assert_eq!(sink.current_trace_id(), 0);
        sink.record(begin("query"));
        assert_eq!(sink.current_trace_id(), 1);
        sink.record(EventKind::End);
        sink.record(begin("headers"));
        assert_eq!(sink.current_trace_id(), 2);
        assert_eq!(TraceSink::disabled().current_trace_id(), 0);
    }

    #[test]
    fn attached_flight_recorder_captures_completed_operations() {
        let registry = Arc::new(MetricsRegistry::new());
        // Metrics-only sink: no trace buffering, flight still works.
        let sink = TraceSink::metrics_only(Arc::clone(&registry));
        let rec = crate::FlightRecorder::new(8);
        sink.attach_flight(rec.clone());
        sink.record(begin("query"));
        sink.record(EventKind::Sent {
            librarian: 0,
            bytes: 4,
            message: "RankRequest",
        });
        sink.record(EventKind::Reply {
            librarian: 0,
            bytes: 8,
            message: "RankResponse",
        });
        sink.record(EventKind::End);
        assert!(sink.take_traces().is_empty(), "still metrics-only");
        assert_eq!(rec.len(), 1);
        let entry = &rec.entries()[0];
        assert_eq!(entry.op, "query");
        assert_eq!(entry.trace_id, 1);
        assert!(!entry.faulted);
        assert!(entry.json.contains("\"span\":\"librarian\""));
        // Detach: later operations are no longer captured.
        sink.attach_flight(crate::FlightRecorder::disabled());
        sink.record(begin("query"));
        sink.record(EventKind::End);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn flight_marks_faulted_operations() {
        let sink = TraceSink::new();
        let rec = crate::FlightRecorder::new(4);
        sink.attach_flight(rec.clone());
        sink.record(begin("query"));
        sink.record(EventKind::LibFailed {
            librarian: 2,
            error: "unavailable",
        });
        sink.record(EventKind::End);
        assert!(rec.entries()[0].faulted);
    }

    #[test]
    fn set_enabled_pauses_all_clones() {
        let sink = TraceSink::new();
        let clone = sink.clone();
        clone.set_enabled(false);
        assert!(!sink.is_enabled());
        sink.record(begin("query"));
        sink.record(EventKind::End);
        assert!(sink.take_traces().is_empty());
    }
}
