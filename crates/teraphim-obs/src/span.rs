//! Distributed spans: the wire-propagated [`SpanContext`], server-side
//! [`ServerTimings`], and client-side stitching of a [`QueryTrace`]
//! into one [`SpanTree`] per query.
//!
//! Tracing (PR 3) records a flat event stream; this module folds that
//! stream into the tree the events imply — the receptionist operation
//! at the root, lifecycle phases under it, one span per librarian
//! exchange under the phase that issued it, and the librarian's own
//! server-side phases (queue wait, index scan, rank, serialize) as
//! leaves. The same stitching runs over simulator, in-process and TCP
//! traces, so a normalized span tree is byte-identical across backends
//! — the property the golden fixtures under `tests/fixtures/traces/`
//! pin down.

use crate::event::EventKind;
use crate::trace::QueryTrace;
use std::fmt::Write as _;

/// The server-side phases a librarian attributes request time to, in
/// canonical order. `queue_wait` is time spent in the server's worker
/// queue before any work began; `scan` is index/vocabulary lookup;
/// `rank` is scoring; `serialize` is reply encoding.
pub const SERVER_PHASES: [&str; 4] = ["queue_wait", "scan", "rank", "serialize"];

/// Slot index of a server phase label, if it is one of
/// [`SERVER_PHASES`].
#[must_use]
pub fn server_phase_index(phase: &str) -> Option<usize> {
    SERVER_PHASES.iter().position(|&p| p == phase)
}

/// `flags` bit: the query is sampled — servers should measure and
/// piggyback [`ServerTimings`] on the reply.
pub const SPAN_SAMPLED: u8 = 1;

/// The compact trace context a request carries across the wire (in the
/// v1 frame envelope, see `teraphim-net::wire`): enough for a server to
/// tag its own measurements with the query they belong to, and for the
/// client to stitch the reply's timings into the right span tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanContext {
    /// Client-assigned trace id (one per traced operation; see
    /// [`TraceSink::current_trace_id`](crate::TraceSink::current_trace_id)).
    pub trace_id: u64,
    /// The client-side span the exchange belongs to — the librarian
    /// (shard) index in this protocol, which is all the receptionist's
    /// fan-out needs to re-attach the reply.
    pub parent_span: u32,
    /// Bit flags; see [`SPAN_SAMPLED`].
    pub flags: u8,
}

impl SpanContext {
    /// A sampled context for one librarian exchange of a trace.
    #[must_use]
    pub fn sampled(trace_id: u64, parent_span: u32) -> Self {
        SpanContext {
            trace_id,
            parent_span,
            flags: SPAN_SAMPLED,
        }
    }

    /// Whether the sampled bit is set.
    #[must_use]
    pub fn is_sampled(&self) -> bool {
        self.flags & SPAN_SAMPLED != 0
    }
}

/// Per-phase server-side time for one handled request, measured by the
/// server and piggybacked on the reply (order matches
/// [`SERVER_PHASES`]). All zeros when the server has no measurement —
/// an untimed service, or the simulator's virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerTimings {
    /// Time queued in the server worker pool before handling began.
    pub queue_micros: u64,
    /// Index / vocabulary scan time.
    pub scan_micros: u64,
    /// Ranking / scoring time.
    pub rank_micros: u64,
    /// Reply serialization time.
    pub serialize_micros: u64,
}

impl ServerTimings {
    /// The timings as `(phase label, micros)` pairs in
    /// [`SERVER_PHASES`] order.
    #[must_use]
    pub fn as_pairs(&self) -> [(&'static str, u64); 4] {
        [
            (SERVER_PHASES[0], self.queue_micros),
            (SERVER_PHASES[1], self.scan_micros),
            (SERVER_PHASES[2], self.rank_micros),
            (SERVER_PHASES[3], self.serialize_micros),
        ]
    }

    /// Total attributed server time.
    #[must_use]
    pub fn total_micros(&self) -> u64 {
        self.queue_micros + self.scan_micros + self.rank_micros + self.serialize_micros
    }

    /// True when nothing was measured.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == ServerTimings::default()
    }
}

/// One node of a [`SpanTree`]: a named interval with optional librarian
/// attribution and child spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Span name: the operation for the root, a phase label,
    /// `"librarian"` for an exchange, a [`SERVER_PHASES`] label for a
    /// server-side leaf, or an event tag (`"retry"`, `"failover"`, ...)
    /// for zero-duration annotations.
    pub name: String,
    /// Librarian (shard) index for exchange and server-phase spans.
    pub librarian: Option<u32>,
    /// Start time in microseconds (trace clock; 0 after normalization).
    pub start_micros: u64,
    /// Duration in microseconds (0 after normalization).
    pub duration_micros: u64,
    /// Whether the span ended in failure (timeout, fault, drop-out).
    pub faulted: bool,
    /// Child spans, in completion order.
    pub children: Vec<Span>,
}

impl Span {
    fn new(name: &str, librarian: Option<u32>, start_micros: u64) -> Self {
        Span {
            name: name.to_owned(),
            librarian,
            start_micros,
            duration_micros: 0,
            faulted: false,
            children: Vec::new(),
        }
    }

    fn annotation(name: &str, librarian: Option<u32>, at: u64) -> Self {
        Span {
            name: name.to_owned(),
            librarian,
            start_micros: at,
            duration_micros: 0,
            faulted: false,
            children: Vec::new(),
        }
    }

    /// Total spans in this subtree (including this one).
    #[must_use]
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(Span::len).sum::<usize>()
    }

    /// Always false — a span counts itself.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    fn push_json(&self, depth: usize, out: &mut String) {
        let _ = write!(out, "{{\"depth\":{depth},\"span\":");
        push_escaped(out, &self.name);
        out.push_str(",\"librarian\":");
        match self.librarian {
            Some(lib) => {
                let _ = write!(out, "{lib}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"start\":{},\"dur\":{},\"faulted\":{}}}",
            self.start_micros, self.duration_micros, self.faulted
        );
        out.push('\n');
        for child in &self.children {
            child.push_json(depth + 1, out);
        }
    }
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The stitched span tree of one traced operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTree {
    /// Trace id (0 when stitched from a bare [`QueryTrace`], which does
    /// not carry one; the flight recorder stamps the sink's id).
    pub trace_id: u64,
    /// Operation name, from the trace header.
    pub op: String,
    /// Methodology code, from the trace header.
    pub methodology: Option<String>,
    /// Query id, from the trace header.
    pub query_id: u32,
    /// Requested answer size, from the trace header.
    pub k: u32,
    /// Whether any fault / timeout / librarian drop-out occurred.
    pub faulted: bool,
    /// Whether coverage was degraded (a `coverage` event with failures).
    pub degraded: bool,
    /// The root span (the operation itself).
    pub root: Span,
}

impl SpanTree {
    /// Stitches a trace's flat event stream into a span tree.
    ///
    /// * the root span covers the whole operation (first to last event);
    /// * `phase_start`/`phase_end` brackets become nested phase spans;
    /// * each `sent` opens a `"librarian"` span that the matching
    ///   `reply` (or `lib_failed`) closes, attached to the innermost
    ///   open phase;
    /// * `server_phase` events become that librarian span's children —
    ///   the server-side queue-wait/scan/rank/serialize leaves;
    /// * `retry`/`timeout`/`fault`/`failover` become zero-duration
    ///   annotation children of the librarian span they occurred under;
    /// * membership events (`join`/`leave`/`migrate`) annotate the root.
    ///
    /// Stitching a [`QueryTrace::normalized`] trace yields a normalized
    /// span tree (all times and durations zero), which is what the
    /// cross-backend golden fixtures compare byte-for-byte.
    #[must_use]
    pub fn from_trace(trace: &QueryTrace) -> SpanTree {
        let first_at = trace.events.first().map_or(0, |e| e.at_micros);
        let last_at = trace.events.last().map_or(0, |e| e.at_micros);
        let mut root = Span::new(&trace.op, None, first_at);
        root.duration_micros = last_at.saturating_sub(first_at);

        // The enclosing-span stack: root plus any open phase brackets.
        let mut stack: Vec<Span> = vec![root];
        // Librarian spans opened by `sent`, not yet closed.
        let mut open_libs: Vec<(u32, Span)> = Vec::new();
        // Librarian spans closed by `reply`, still collecting their
        // trailing `server_phase` children before being attached.
        let mut closed_libs: Vec<(u32, Span)> = Vec::new();
        let mut faulted = false;
        let mut degraded = false;

        fn flush_closed(stack: &mut [Span], closed: &mut Vec<(u32, Span)>) {
            let top = stack.last_mut().expect("root never pops");
            for (_, span) in closed.drain(..) {
                top.children.push(span);
            }
        }

        for event in &trace.events {
            let at = event.at_micros;
            match &event.kind {
                EventKind::Begin { .. } | EventKind::End => {}
                EventKind::PhaseStart { phase } => {
                    flush_closed(&mut stack, &mut closed_libs);
                    stack.push(Span::new(phase.as_str(), None, at));
                }
                EventKind::PhaseEnd { phase } => {
                    flush_closed(&mut stack, &mut closed_libs);
                    if stack.len() > 1
                        && stack
                            .last()
                            .is_some_and(|s| s.name == phase.as_str() && s.librarian.is_none())
                    {
                        let mut span = stack.pop().expect("checked non-root");
                        span.duration_micros = at.saturating_sub(span.start_micros);
                        stack.last_mut().expect("root remains").children.push(span);
                    }
                }
                EventKind::Sent { librarian, .. } => {
                    // A second exchange to the same librarian flushes
                    // the first's finished span.
                    if let Some(pos) = closed_libs.iter().position(|(l, _)| l == librarian) {
                        let (_, span) = closed_libs.remove(pos);
                        stack
                            .last_mut()
                            .expect("root never pops")
                            .children
                            .push(span);
                    }
                    open_libs.push((*librarian, Span::new("librarian", Some(*librarian), at)));
                }
                EventKind::Reply { librarian, .. } => {
                    if let Some(pos) = open_libs.iter().position(|(l, _)| l == librarian) {
                        let (lib, mut span) = open_libs.remove(pos);
                        span.duration_micros = at.saturating_sub(span.start_micros);
                        closed_libs.push((lib, span));
                    }
                }
                EventKind::ServerPhase {
                    librarian,
                    phase,
                    micros,
                } => {
                    let mut leaf = Span::annotation(phase, Some(*librarian), at);
                    leaf.duration_micros = *micros;
                    if let Some((_, span)) =
                        closed_libs.iter_mut().rev().find(|(l, _)| l == librarian)
                    {
                        span.children.push(leaf);
                    } else if let Some((_, span)) =
                        open_libs.iter_mut().rev().find(|(l, _)| l == librarian)
                    {
                        span.children.push(leaf);
                    } else {
                        stack
                            .last_mut()
                            .expect("root never pops")
                            .children
                            .push(leaf);
                    }
                }
                EventKind::LibFailed { librarian, error } => {
                    faulted = true;
                    let note = Span::annotation("lib_failed", Some(*librarian), at);
                    if let Some(pos) = open_libs.iter().position(|(l, _)| l == librarian) {
                        let (lib, mut span) = open_libs.remove(pos);
                        span.duration_micros = at.saturating_sub(span.start_micros);
                        span.faulted = true;
                        span.children.push(note);
                        closed_libs.push((lib, span));
                    } else if let Some((_, span)) =
                        closed_libs.iter_mut().rev().find(|(l, _)| l == librarian)
                    {
                        span.faulted = true;
                        span.children.push(note);
                    } else {
                        let _ = error;
                        stack
                            .last_mut()
                            .expect("root never pops")
                            .children
                            .push(note);
                    }
                }
                EventKind::Timeout { librarian }
                | EventKind::Retry { librarian, .. }
                | EventKind::Fault { librarian, .. }
                | EventKind::Failover { librarian, .. } => {
                    if matches!(
                        event.kind,
                        EventKind::Timeout { .. } | EventKind::Fault { .. }
                    ) {
                        faulted = true;
                    }
                    let note = Span::annotation(event.kind.tag(), Some(*librarian), at);
                    if let Some((_, span)) =
                        open_libs.iter_mut().rev().find(|(l, _)| l == librarian)
                    {
                        span.children.push(note);
                    } else if let Some((_, span)) =
                        closed_libs.iter_mut().rev().find(|(l, _)| l == librarian)
                    {
                        span.children.push(note);
                    } else {
                        stack
                            .last_mut()
                            .expect("root never pops")
                            .children
                            .push(note);
                    }
                }
                EventKind::Coverage { failed, .. } => {
                    flush_closed(&mut stack, &mut closed_libs);
                    if !failed.is_empty() {
                        degraded = true;
                    }
                }
                EventKind::Join { librarian, .. }
                | EventKind::Leave { librarian, .. }
                | EventKind::Migrate { librarian, .. } => {
                    flush_closed(&mut stack, &mut closed_libs);
                    let note = Span::annotation(event.kind.tag(), Some(*librarian), at);
                    stack.first_mut().expect("root").children.push(note);
                }
                EventKind::Merge { .. }
                | EventKind::Expansion { .. }
                | EventKind::Scored { .. }
                | EventKind::CacheHit { .. }
                | EventKind::CacheMiss { .. }
                | EventKind::CacheEvict { .. } => {
                    flush_closed(&mut stack, &mut closed_libs);
                }
            }
        }

        flush_closed(&mut stack, &mut closed_libs);
        // Unclosed librarian spans (a drain mid-query): keep as faulted.
        for (_, mut span) in open_libs.drain(..) {
            span.duration_micros = last_at.saturating_sub(span.start_micros);
            span.faulted = true;
            stack
                .last_mut()
                .expect("root never pops")
                .children
                .push(span);
        }
        // Unclosed phase brackets fold back into their parents.
        while stack.len() > 1 {
            let mut span = stack.pop().expect("checked non-root");
            span.duration_micros = last_at.saturating_sub(span.start_micros);
            stack.last_mut().expect("root remains").children.push(span);
        }
        let root = stack.pop().expect("root");
        SpanTree {
            trace_id: 0,
            op: trace.op.clone(),
            methodology: trace.methodology.clone(),
            query_id: trace.query_id,
            k: trace.k,
            faulted,
            degraded,
            root,
        }
    }

    /// Sums server-phase leaf durations across the tree, in
    /// [`SERVER_PHASES`] order — the span-side ledger the three-way
    /// accounting check compares against the registry's server-phase
    /// histograms.
    #[must_use]
    pub fn server_phase_sums(&self) -> [u64; 4] {
        fn walk(span: &Span, sums: &mut [u64; 4]) {
            if let Some(i) = server_phase_index(&span.name) {
                if span.librarian.is_some() {
                    sums[i] += span.duration_micros;
                }
            }
            for child in &span.children {
                walk(child, sums);
            }
        }
        let mut sums = [0u64; 4];
        walk(&self.root, &mut sums);
        sums
    }

    /// Total spans in the tree.
    #[must_use]
    pub fn len(&self) -> usize {
        self.root.len()
    }

    /// Always false — the root span exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Encodes the tree as line-oriented JSON: one header line, then one
    /// span per line in pre-order with its depth. Two trees are
    /// structurally equal iff their encodings are byte-equal, matching
    /// the trace fixtures' diffing model.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"trace_id\":{},\"op\":", self.trace_id);
        push_escaped(&mut out, &self.op);
        out.push_str(",\"methodology\":");
        match &self.methodology {
            Some(m) => push_escaped(&mut out, m),
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"query_id\":{},\"k\":{},\"faulted\":{},\"degraded\":{}}}",
            self.query_id, self.k, self.faulted, self.degraded
        );
        out.push('\n');
        self.root.push_json(0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Phase, TraceEvent};

    fn ev(at: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at_micros: at,
            kind,
        }
    }

    fn trace(events: Vec<TraceEvent>) -> QueryTrace {
        QueryTrace {
            driver: "real".to_owned(),
            op: "query".to_owned(),
            methodology: Some("CN".to_owned()),
            query_id: 3,
            k: 10,
            complete: true,
            events,
        }
    }

    fn exchange(lib: u32, sent_at: u64, reply_at: u64) -> Vec<TraceEvent> {
        let mut out = vec![
            ev(
                sent_at,
                EventKind::Sent {
                    librarian: lib,
                    bytes: 10,
                    message: "RankRequest",
                },
            ),
            ev(
                reply_at,
                EventKind::Reply {
                    librarian: lib,
                    bytes: 20,
                    message: "RankResponse",
                },
            ),
        ];
        for (i, phase) in SERVER_PHASES.iter().enumerate() {
            out.push(ev(
                reply_at,
                EventKind::ServerPhase {
                    librarian: lib,
                    phase,
                    micros: (i as u64 + 1) * 10,
                },
            ));
        }
        out
    }

    #[test]
    fn stitches_phases_librarians_and_server_phases() {
        let mut events = vec![ev(
            0,
            EventKind::PhaseStart {
                phase: Phase::RankFanout,
            },
        )];
        events.extend(exchange(0, 1, 50));
        events.extend(exchange(1, 2, 70));
        events.push(ev(80, EventKind::Merge { entries: 20, k: 10 }));
        events.push(ev(
            90,
            EventKind::PhaseEnd {
                phase: Phase::RankFanout,
            },
        ));
        let tree = SpanTree::from_trace(&trace(events));
        assert_eq!(tree.root.name, "query");
        assert_eq!(tree.root.duration_micros, 90);
        assert_eq!(tree.root.children.len(), 1);
        let fanout = &tree.root.children[0];
        assert_eq!(fanout.name, "rank_fanout");
        assert_eq!(fanout.duration_micros, 90);
        assert_eq!(fanout.children.len(), 2);
        let lib0 = &fanout.children[0];
        assert_eq!(lib0.name, "librarian");
        assert_eq!(lib0.librarian, Some(0));
        assert_eq!(lib0.duration_micros, 49);
        assert_eq!(lib0.children.len(), 4);
        assert_eq!(lib0.children[0].name, "queue_wait");
        assert_eq!(lib0.children[0].duration_micros, 10);
        assert_eq!(lib0.children[3].name, "serialize");
        assert_eq!(lib0.children[3].duration_micros, 40);
        assert!(!tree.faulted);
        assert!(!tree.degraded);
        // Two librarians × (10+20+30+40) each.
        assert_eq!(tree.server_phase_sums(), [20, 40, 60, 80]);
        assert_eq!(tree.len(), 1 + 1 + 2 * 5);
    }

    #[test]
    fn failures_mark_faulted_and_coverage_marks_degraded() {
        let events = vec![
            ev(
                0,
                EventKind::Sent {
                    librarian: 0,
                    bytes: 5,
                    message: "RankRequest",
                },
            ),
            ev(
                3,
                EventKind::Retry {
                    librarian: 0,
                    attempt: 1,
                    error: "timeout",
                },
            ),
            ev(
                9,
                EventKind::LibFailed {
                    librarian: 0,
                    error: "timeout",
                },
            ),
            ev(
                10,
                EventKind::Coverage {
                    answered: vec![1],
                    failed: vec![0],
                    docs_permille: Some(500),
                },
            ),
        ];
        let tree = SpanTree::from_trace(&trace(events));
        assert!(tree.faulted);
        assert!(tree.degraded);
        let lib = &tree.root.children[0];
        assert_eq!(lib.librarian, Some(0));
        assert!(lib.faulted);
        assert_eq!(lib.duration_micros, 9);
        assert_eq!(lib.children[0].name, "retry");
        assert_eq!(lib.children[1].name, "lib_failed");
    }

    #[test]
    fn normalized_trees_encode_identically_across_arrival_orders() {
        let mut a = vec![ev(
            0,
            EventKind::PhaseStart {
                phase: Phase::RankFanout,
            },
        )];
        a.extend(exchange(1, 2, 40));
        a.extend(exchange(0, 1, 60));
        a.push(ev(
            70,
            EventKind::PhaseEnd {
                phase: Phase::RankFanout,
            },
        ));
        let mut b = vec![ev(
            0,
            EventKind::PhaseStart {
                phase: Phase::RankFanout,
            },
        )];
        b.extend(exchange(0, 5, 11));
        b.extend(exchange(1, 6, 12));
        b.push(ev(
            13,
            EventKind::PhaseEnd {
                phase: Phase::RankFanout,
            },
        ));
        let ta = SpanTree::from_trace(&trace(a).normalized());
        let tb = SpanTree::from_trace(&trace(b).normalized());
        assert_eq!(ta.to_json(), tb.to_json());
        // Normalization zeroes durations, including server-phase leaves.
        assert_eq!(ta.server_phase_sums(), [0, 0, 0, 0]);
    }

    #[test]
    fn span_json_is_line_oriented_with_depths() {
        let mut events = Vec::new();
        events.extend(exchange(2, 0, 5));
        let tree = SpanTree::from_trace(&trace(events));
        let json = tree.to_json();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 1 + tree.len());
        assert!(lines[0].starts_with("{\"trace_id\":0,\"op\":\"query\""));
        assert!(lines[1].contains("\"depth\":0,\"span\":\"query\""));
        assert!(lines[2].contains("\"depth\":1,\"span\":\"librarian\",\"librarian\":2"));
        assert!(lines[3].contains("\"depth\":2,\"span\":\"queue_wait\""));
    }

    #[test]
    fn server_timings_pairs_follow_canonical_order() {
        let t = ServerTimings {
            queue_micros: 1,
            scan_micros: 2,
            rank_micros: 3,
            serialize_micros: 4,
        };
        let pairs = t.as_pairs();
        for (i, (name, v)) in pairs.iter().enumerate() {
            assert_eq!(*name, SERVER_PHASES[i]);
            assert_eq!(*v, i as u64 + 1);
        }
        assert_eq!(t.total_micros(), 10);
        assert!(!t.is_zero());
        assert!(ServerTimings::default().is_zero());
        let ctx = SpanContext::sampled(7, 2);
        assert!(ctx.is_sampled());
        assert_eq!(ctx.trace_id, 7);
        assert_eq!(ctx.parent_span, 2);
    }
}
