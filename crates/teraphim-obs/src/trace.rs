//! [`QueryTrace`] — the per-operation trace, plus normalization and
//! metric roll-ups.

use crate::event::{EventKind, Phase, TraceEvent};

/// Driver label stamped onto normalized traces in place of the real one.
pub const NORMALIZED_DRIVER: &str = "normalized";

/// The structured trace of one traced operation (a query, a preprocessing
/// exchange, a fetch, ...), as produced by
/// [`TraceSink::take_traces`](crate::TraceSink::take_traces).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Which driver produced the trace: `"real"`, `"sim"`, or
    /// [`NORMALIZED_DRIVER`] after [`QueryTrace::normalized`].
    pub driver: String,
    /// Operation name (`"query"`, `"query_with_coverage"`, `"enable_cv"`,
    /// `"headers"`, ...).
    pub op: String,
    /// Methodology code (`"MS"`, `"CN"`, `"CV"`, `"CI"`) for query
    /// operations, `None` otherwise.
    pub methodology: Option<String>,
    /// The receptionist query id (always 0 in the simulator).
    pub query_id: u32,
    /// Requested answer size (0 for non-ranking operations).
    pub k: u32,
    /// Whether the operation's `End` marker was seen.
    pub complete: bool,
    /// The events between `Begin` and `End`, in time order.
    pub events: Vec<TraceEvent>,
}

impl QueryTrace {
    /// A structurally comparable copy of the trace.
    ///
    /// Normalization makes traces deterministic so they can be committed as
    /// golden fixtures and compared across drivers and dispatch modes:
    ///
    /// 1. the driver label becomes [`NORMALIZED_DRIVER`];
    /// 2. every timestamp becomes 0 (wall-clock and simulated times differ
    ///    run to run, structure does not);
    /// 3. within each maximal contiguous run of librarian-tagged events
    ///    (`sent`, `reply`, `retry`, `timeout`, `fault`, `lib_failed`,
    ///    `scored`), events are stably sorted by librarian index. Concurrent
    ///    dispatch interleaves librarians in arrival order; the stable sort
    ///    restores the sequential order while preserving each librarian's
    ///    own event sequence. Phase boundaries and merge/coverage events
    ///    never move.
    #[must_use]
    pub fn normalized(&self) -> QueryTrace {
        let mut trace = self.clone();
        trace.driver = NORMALIZED_DRIVER.to_owned();
        for event in &mut trace.events {
            event.at_micros = 0;
            // Server-side phase durations are timings, not structure:
            // zero them like timestamps so sim (virtual clock), in-proc
            // and TCP backends normalize byte-identically.
            if let EventKind::ServerPhase { micros, .. } = &mut event.kind {
                *micros = 0;
            }
        }
        let events = &mut trace.events;
        let mut i = 0;
        while i < events.len() {
            if events[i].kind.librarian().is_none() {
                i += 1;
                continue;
            }
            let mut j = i;
            while j < events.len() && events[j].kind.librarian().is_some() {
                j += 1;
            }
            events[i..j].sort_by_key(|e| e.kind.librarian());
            i = j;
        }
        trace
    }

    /// Rolls the trace up into per-phase durations and traffic counters.
    #[must_use]
    pub fn metrics(&self) -> TraceMetrics {
        let mut metrics = TraceMetrics::default();
        let mut open: Vec<(Phase, u64)> = Vec::new();
        for event in &self.events {
            match &event.kind {
                EventKind::PhaseStart { phase } => open.push((*phase, event.at_micros)),
                EventKind::PhaseEnd { phase } => {
                    if let Some(pos) = open.iter().rposition(|(p, _)| p == phase) {
                        let (_, started) = open.remove(pos);
                        metrics.add_phase(*phase, event.at_micros.saturating_sub(started));
                    }
                }
                EventKind::Sent { bytes, .. } => {
                    metrics.messages_sent += 1;
                    metrics.bytes_sent += bytes;
                }
                EventKind::Reply { bytes, .. } => {
                    metrics.messages_received += 1;
                    metrics.bytes_received += bytes;
                }
                EventKind::Timeout { .. } => metrics.timeouts += 1,
                EventKind::Retry { .. } => metrics.retries += 1,
                EventKind::Fault { .. } => metrics.faults += 1,
                EventKind::LibFailed { .. } => metrics.failed_librarians += 1,
                EventKind::Scored {
                    candidates,
                    postings,
                    ..
                } => {
                    metrics.scored_candidates += u64::from(*candidates);
                    metrics.postings_decoded += postings;
                }
                EventKind::Merge { entries, .. } => metrics.merged_entries += entries,
                EventKind::CacheHit { .. } => metrics.cache_hits += 1,
                EventKind::CacheMiss { stale, .. } => {
                    metrics.cache_misses += 1;
                    if *stale {
                        metrics.cache_stale += 1;
                    }
                }
                EventKind::CacheEvict { entries, .. } => {
                    metrics.cache_evictions += u64::from(*entries);
                }
                _ => {}
            }
        }
        metrics
    }

    /// Per-librarian traffic summed from `sent`/`reply` events, sorted by
    /// librarian index.
    ///
    /// For transports whose counters charge each *logical* request once
    /// (the in-process and TCP transports with client-side fault
    /// injection), these totals line up with `TrafficStats`.
    #[must_use]
    pub fn per_librarian_traffic(&self) -> Vec<LibTraffic> {
        fn row(rows: &mut Vec<LibTraffic>, librarian: u32) -> &mut LibTraffic {
            if let Some(pos) = rows.iter().position(|r| r.librarian == librarian) {
                &mut rows[pos]
            } else {
                rows.push(LibTraffic {
                    librarian,
                    messages: 0,
                    bytes_sent: 0,
                    bytes_received: 0,
                });
                rows.last_mut().unwrap()
            }
        }
        let mut rows: Vec<LibTraffic> = Vec::new();
        for event in &self.events {
            match event.kind {
                EventKind::Sent {
                    librarian, bytes, ..
                } => {
                    let r = row(&mut rows, librarian);
                    r.messages += 1;
                    r.bytes_sent += bytes;
                }
                EventKind::Reply {
                    librarian, bytes, ..
                } => {
                    let r = row(&mut rows, librarian);
                    r.messages += 1;
                    r.bytes_received += bytes;
                }
                _ => {}
            }
        }
        rows.sort_by_key(|r| r.librarian);
        rows
    }

    /// Sums the server-side phase durations (`server_phase` events) in
    /// this trace, keyed by phase label. Labels appear in first-seen
    /// order — [`crate::span::SERVER_PHASES`] order for traces recorded
    /// by the fan-out path. The totals are what the span sum-check
    /// compares against the registry's server-phase histograms.
    #[must_use]
    pub fn server_phase_sums(&self) -> Vec<(&'static str, u64)> {
        let mut sums: Vec<(&'static str, u64)> = Vec::new();
        for event in &self.events {
            if let EventKind::ServerPhase { phase, micros, .. } = event.kind {
                if let Some(slot) = sums.iter_mut().find(|(p, _)| *p == phase) {
                    slot.1 += micros;
                } else {
                    sums.push((phase, micros));
                }
            }
        }
        sums
    }
}

/// Traffic attributed to one librarian by [`QueryTrace::per_librarian_traffic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LibTraffic {
    /// Librarian index.
    pub librarian: u32,
    /// Messages exchanged (requests sent plus replies received).
    pub messages: u64,
    /// Request bytes sent to the librarian.
    pub bytes_sent: u64,
    /// Reply bytes received from the librarian.
    pub bytes_received: u64,
}

/// Aggregated counters for one trace, from [`QueryTrace::metrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceMetrics {
    /// Completed phases and their durations in microseconds, in order of
    /// first completion. Repeated phases accumulate.
    pub phase_micros: Vec<(Phase, u64)>,
    /// Requests sent.
    pub messages_sent: u64,
    /// Replies received.
    pub messages_received: u64,
    /// Request bytes sent.
    pub bytes_sent: u64,
    /// Reply bytes received.
    pub bytes_received: u64,
    /// Transport timeouts observed.
    pub timeouts: u64,
    /// Retries attempted.
    pub retries: u64,
    /// Injected faults that fired.
    pub faults: u64,
    /// Librarians that dropped out.
    pub failed_librarians: u64,
    /// CI candidates scored across all librarians.
    pub scored_candidates: u64,
    /// Postings decoded while scoring CI candidates.
    pub postings_decoded: u64,
    /// Entries folded into merges.
    pub merged_entries: u64,
    /// Receptionist cache hits (all cache kinds).
    pub cache_hits: u64,
    /// Receptionist cache misses (all cache kinds, stale drops included).
    pub cache_misses: u64,
    /// Misses that dropped an entry from a stale generation.
    pub cache_stale: u64,
    /// Entries evicted by cache inserts.
    pub cache_evictions: u64,
}

impl TraceMetrics {
    fn add_phase(&mut self, phase: Phase, micros: u64) {
        if let Some(slot) = self.phase_micros.iter_mut().find(|(p, _)| *p == phase) {
            slot.1 += micros;
        } else {
            self.phase_micros.push((phase, micros));
        }
    }

    /// Duration of `phase` in microseconds, if it completed in this trace.
    #[must_use]
    pub fn phase(&self, phase: Phase) -> Option<u64> {
        self.phase_micros
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|&(_, micros)| micros)
    }
}

/// Wire traffic summed over a batch of traces, from
/// [`trace_traffic_sums`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceTrafficSums {
    /// Requests sent across all traces.
    pub messages_sent: u64,
    /// Replies received across all traces.
    pub messages_received: u64,
    /// Request bytes sent.
    pub bytes_sent: u64,
    /// Reply bytes received.
    pub bytes_received: u64,
}

/// Sums the wire traffic of a whole trace batch — the trace-side ledger
/// an accounting check compares against transport counters and the
/// metrics registry. One number per direction, independent of how the
/// traffic was split across operations.
#[must_use]
pub fn trace_traffic_sums(traces: &[QueryTrace]) -> TraceTrafficSums {
    let mut sums = TraceTrafficSums::default();
    for trace in traces {
        let m = trace.metrics();
        sums.messages_sent += m.messages_sent;
        sums.messages_received += m.messages_received;
        sums.bytes_sent += m.bytes_sent;
        sums.bytes_received += m.bytes_received;
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at_micros: at,
            kind,
        }
    }

    fn sent(lib: u32) -> EventKind {
        EventKind::Sent {
            librarian: lib,
            bytes: 10 + u64::from(lib),
            message: "RankRequest",
        }
    }

    fn reply(lib: u32) -> EventKind {
        EventKind::Reply {
            librarian: lib,
            bytes: 100 + u64::from(lib),
            message: "RankResponse",
        }
    }

    fn trace(events: Vec<TraceEvent>) -> QueryTrace {
        QueryTrace {
            driver: "real".to_owned(),
            op: "query".to_owned(),
            methodology: Some("CN".to_owned()),
            query_id: 0,
            k: 10,
            complete: true,
            events,
        }
    }

    #[test]
    fn normalization_reorders_concurrent_arrivals() {
        // Concurrent arrival order 2, 0, 1 with per-librarian Sent→Reply
        // pairs; normalization must yield 0, 1, 2 keeping Sent before Reply.
        let concurrent = trace(vec![
            ev(
                1,
                EventKind::PhaseStart {
                    phase: Phase::RankFanout,
                },
            ),
            ev(2, sent(2)),
            ev(3, sent(0)),
            ev(4, reply(2)),
            ev(5, sent(1)),
            ev(6, reply(0)),
            ev(7, reply(1)),
            ev(8, EventKind::Merge { entries: 30, k: 10 }),
            ev(
                9,
                EventKind::PhaseEnd {
                    phase: Phase::RankFanout,
                },
            ),
        ]);
        let sequential = trace(vec![
            ev(
                0,
                EventKind::PhaseStart {
                    phase: Phase::RankFanout,
                },
            ),
            ev(0, sent(0)),
            ev(0, reply(0)),
            ev(0, sent(1)),
            ev(0, reply(1)),
            ev(0, sent(2)),
            ev(0, reply(2)),
            ev(0, EventKind::Merge { entries: 30, k: 10 }),
            ev(
                0,
                EventKind::PhaseEnd {
                    phase: Phase::RankFanout,
                },
            ),
        ]);
        assert_eq!(concurrent.normalized(), sequential.normalized());
        assert_eq!(concurrent.normalized().driver, NORMALIZED_DRIVER);
    }

    #[test]
    fn metrics_attribute_phases_and_traffic() {
        let t = trace(vec![
            ev(
                10,
                EventKind::PhaseStart {
                    phase: Phase::RankFanout,
                },
            ),
            ev(12, sent(0)),
            ev(20, reply(0)),
            ev(
                25,
                EventKind::Retry {
                    librarian: 1,
                    attempt: 1,
                    error: "timeout",
                },
            ),
            ev(
                30,
                EventKind::LibFailed {
                    librarian: 1,
                    error: "timeout",
                },
            ),
            ev(40, EventKind::Merge { entries: 10, k: 10 }),
            ev(
                50,
                EventKind::PhaseEnd {
                    phase: Phase::RankFanout,
                },
            ),
        ]);
        let m = t.metrics();
        assert_eq!(m.phase(Phase::RankFanout), Some(40));
        assert_eq!(m.phase(Phase::HeaderFetch), None);
        assert_eq!(m.messages_sent, 1);
        assert_eq!(m.bytes_sent, 10);
        assert_eq!(m.bytes_received, 100);
        assert_eq!(m.retries, 1);
        assert_eq!(m.failed_librarians, 1);
        assert_eq!(m.merged_entries, 10);
    }

    #[test]
    fn per_librarian_traffic_sums_sent_and_reply() {
        let t = trace(vec![
            ev(0, sent(1)),
            ev(0, sent(0)),
            ev(0, reply(1)),
            ev(0, reply(0)),
            ev(0, sent(1)),
        ]);
        let rows = t.per_librarian_traffic();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].librarian, 0);
        assert_eq!(rows[0].messages, 2);
        assert_eq!(rows[1].librarian, 1);
        assert_eq!(rows[1].messages, 3);
        assert_eq!(rows[1].bytes_sent, 22);
        assert_eq!(rows[1].bytes_received, 101);
    }

    #[test]
    fn trace_traffic_sums_totals_a_batch() {
        let a = trace(vec![ev(0, sent(0)), ev(1, reply(0))]);
        let b = trace(vec![ev(0, sent(1)), ev(1, reply(1)), ev(2, sent(0))]);
        let sums = trace_traffic_sums(&[a, b]);
        assert_eq!(sums.messages_sent, 3);
        assert_eq!(sums.messages_received, 2);
        assert_eq!(sums.bytes_sent, 10 + 11 + 10);
        assert_eq!(sums.bytes_received, 100 + 101);
        assert_eq!(trace_traffic_sums(&[]), TraceTrafficSums::default());
    }
}
