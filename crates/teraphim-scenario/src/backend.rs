//! Execution backends and the uniform plan runner.
//!
//! A [`Backend`] turns plan steps into effects against one embodiment
//! of the system: the virtual-time [`SimBackend`] here, or the real
//! in-process and TCP backends in [`crate::real`]. The runner
//! ([`run_plan`]) owns every rule that keeps a plan's meaning identical
//! across backends and stable under shrinking — librarian clamping,
//! never downing the whole fleet, clearing fault windows around
//! reindexing — so backends stay thin translation layers.

use teraphim_core::sim::{derive_seed, SimDispatch, SimDriver, SimMode};
use teraphim_core::{CiParams, TeraphimError};
use teraphim_net::FaultPlan;
use teraphim_obs::{trace_traffic_sums, EventKind, TraceSink};
use teraphim_simnet::{CostModel, Topology};
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

use crate::fixture::{churn_docs, Fixture};
use crate::plan::{CacheSpec, DispatchChoice, FaultSpec, Plan, RunMode, Step, MAX_REPLICAS};

/// CI preprocessing parameters every backend shares (the values the
/// repo's sim-vs-real differential suite is proven under).
pub const CI: CiParams = CiParams {
    group_size: 10,
    k_prime: 100,
};

/// One result entry, comparable across backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// Owning librarian (0 for the mono baseline).
    pub lib: u64,
    /// Document id within that librarian.
    pub doc: u32,
    /// Exact score bits — `None` on the simulator, which ranks
    /// identically but does not expose merged scores.
    pub score_bits: Option<u64>,
}

/// The observable outcome of one `query` step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Index of the step in the plan.
    pub step: usize,
    /// Ranked hits, best first.
    pub hits: Vec<Hit>,
    /// Librarians that dropped out of the merge, ascending.
    pub failed: Vec<u64>,
    /// Normalized error kind when the query failed outright.
    pub error: Option<String>,
}

/// One side's traffic ledger: `(round trips, bytes sent, bytes
/// received)`.
pub type TrafficTriple = (u64, u64, u64);

/// End-of-run resource accounting, checked by
/// [`crate::check::verify_accounting`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Accounting {
    /// Transport-level counters (absent on the simulator).
    pub transport: Option<TrafficTriple>,
    /// Trace-event sums from the shared sink.
    pub trace: TrafficTriple,
    /// Metrics-registry totals (absent on the simulator).
    pub registry: Option<TrafficTriple>,
    /// Simulator-only: total payload bytes that crossed links,
    /// including the untraced fetch phase — an upper bound on the
    /// traced bytes.
    pub wire_cap: Option<u64>,
    /// True when any step blocked sends (a `Down` window or a kill):
    /// trace-side sends may then exceed wire-side sends, because the
    /// fan-out records a send before the transport refuses it.
    pub sends_blocked: bool,
    /// Health polls executed; polling is deliberately untraced, so
    /// wire-side counters may then exceed trace-side ones.
    pub health_polls: u64,
}

/// Everything one backend produced for one plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Outcomes of the query steps, in plan order.
    pub outcomes: Vec<QueryOutcome>,
    /// The closing resource ledger.
    pub accounting: Accounting,
}

/// Collapses a [`TeraphimError`] to a backend-independent kind, so
/// "this query must fail the same way everywhere" is checkable without
/// comparing transport-specific message strings.
pub fn normalize_error(error: &TeraphimError) -> String {
    match error {
        TeraphimError::Net(_) => "net",
        TeraphimError::Engine(_) => "engine",
        TeraphimError::Index(_) => "index",
        TeraphimError::Store(_) => "store",
        TeraphimError::MissingGlobalState(_) => "missing_global_state",
        TeraphimError::BadParameters(_) => "bad_parameters",
        TeraphimError::InsufficientCoverage { .. } => "insufficient_coverage",
    }
    .to_string()
}

/// One embodiment of the system under test.
///
/// Backends translate runner calls into effects; they do not interpret
/// plans. All methods take pre-clamped librarian indices.
pub trait Backend {
    /// Label for failure messages (`"sim"`, `"inproc"`, `"tcp"`).
    fn name(&self) -> &'static str;

    /// Fleet size.
    fn num_libs(&self) -> usize;

    /// Runs one ranked query for `client` and reports the outcome
    /// (`step` is filled in by the runner).
    fn query(&mut self, client: u64, mode: RunMode, query: &str, k: usize) -> QueryOutcome;

    /// Appends `docs` to librarian `lib`, bumps its epoch, and re-runs
    /// whatever derived state (mono index, CV vocabulary, CI index) the
    /// backend maintains. Called with all fault windows cleared.
    fn add_docs(&mut self, lib: usize, docs: &[TrecDoc]) -> Result<(), String>;

    /// Opens (`Some`) or closes (`None`) a fault window on `lib`.
    fn apply_fault(&mut self, lib: usize, fault: Option<FaultSpec>);

    /// Permanently removes `lib` from service.
    fn kill(&mut self, lib: usize);

    /// Joins a fresh replica to shard `lib`'s group, migrating the
    /// subcollection index (and its epoch) onto it. Heals a shard whose
    /// last replica left. The runner guarantees the group is below
    /// [`MAX_REPLICAS`] and the shard is not killed.
    fn add_lib(&mut self, lib: usize);

    /// Removes shard `lib`'s preferred replica from its group. When the
    /// last replica leaves, the shard answers nothing until a later
    /// `add_lib` heals it. The runner guarantees at least one replica is
    /// live and the shard is not killed.
    fn remove_lib(&mut self, lib: usize);

    /// Rotates shard `lib`'s preferred replica to the next live one —
    /// ranking-transparent, since replicas are content-identical. The
    /// runner guarantees at least two replicas are live.
    fn promote_replica(&mut self, lib: usize);

    /// Crashes shard `lib`: the shard loses all volatile state and
    /// refuses queries until [`Backend::reopen`] recovers it from
    /// durable storage. Backends without real persistence model a crash
    /// as a `Down` window — query-visibly identical, which is exactly
    /// what the differential check exploits: the sim backend "recovers"
    /// by never having lost anything, so a store-backed backend that
    /// diverges after reopen has lost durable data.
    fn crash(&mut self, lib: usize) {
        self.apply_fault(lib, Some(FaultSpec::Down));
    }

    /// Recovers a crashed shard from its durable store (WAL replay into
    /// the last committed manifest). The runner guarantees the shard is
    /// crashed and not killed.
    fn reopen(&mut self, lib: usize) {
        self.apply_fault(lib, None);
    }

    /// Enables (`Some`) or disables (`None`) result caching.
    fn set_cache(&mut self, spec: Option<CacheSpec>);

    /// Switches the fan-out dispatch mode.
    fn set_dispatch(&mut self, mode: DispatchChoice);

    /// Polls fleet health (feeds cache invalidation).
    fn health_poll(&mut self);

    /// The closing ledger. Called once, after the last step.
    fn accounting(&mut self) -> Accounting;
}

/// Runs `plan` against `backend` and collects the report.
///
/// Runner rules (identical for every backend, so they hold for any
/// shrunken subset of steps too):
///
/// - librarian indices are taken modulo the fleet size;
/// - a `Down`/`kill`/`remove_lib` that would leave no answerable
///   librarian is skipped — a fleet with zero answerable librarians
///   fails every query, which hides real divergences behind a wall of
///   identical errors; a shard whose replica group emptied counts as
///   unanswerable here;
/// - `add_docs` runs with fault windows closed (CV/CI resync fans out
///   to every librarian and must see a healthy fleet) and re-opens them
///   afterwards; it is skipped entirely once any librarian is killed or
///   any shard has zero live replicas, because neither can resync;
/// - membership steps keep shards within `1..=MAX_REPLICAS` live
///   replicas: `add_lib` at the cap, `remove_lib` on an empty shard and
///   `promote_replica` with fewer than two replicas are all skipped, as
///   is any membership step on a killed shard;
/// - `crash_lib` behaves like a `Down` window that also loses volatile
///   state: it clears the shard's fault window (the "process" holding
///   it died), is skipped on killed/already-crashed shards or when it
///   would down the whole fleet, and blocks every other mutation of the
///   shard (faults, kills, membership) until `reopen_lib`; `add_docs`
///   is skipped fleet-wide while any shard is crashed, since resync
///   cannot reach it — so recovery must reproduce exactly the documents
///   the fleet held at crash time;
/// - fault and membership transitions drop cached results on caching
///   backends (the runner's stand-in for coverage-aware invalidation),
///   keeping cached and cache-less backends answer-identical.
pub fn run_plan(plan: &Plan, backend: &mut dyn Backend) -> RunReport {
    let n = backend.num_libs();
    assert!(n > 0, "backend has no librarians");
    let mut active: Vec<Option<FaultSpec>> = vec![None; n];
    let mut killed = vec![false; n];
    let mut crashed = vec![false; n];
    let mut live: Vec<u64> = vec![plan.replicas.clamp(1, MAX_REPLICAS); n];
    let mut sends_blocked = false;
    let mut health_polls = 0u64;
    let mut outcomes = Vec::new();

    let down_count =
        |active: &[Option<FaultSpec>], killed: &[bool], crashed: &[bool], live: &[u64]| {
            (0..active.len())
                .filter(|&l| {
                    killed[l]
                        || crashed[l]
                        || live[l] == 0
                        || matches!(active[l], Some(FaultSpec::Down))
                })
                .count()
        };

    for (index, step) in plan.steps.iter().enumerate() {
        match step {
            Step::Query {
                client,
                mode,
                query,
                k,
            } => {
                let mut outcome =
                    backend.query(*client, *mode, query, (*k).clamp(1, 1000) as usize);
                outcome.step = index;
                outcomes.push(outcome);
            }
            Step::AddDocs { lib, count, batch } => {
                if killed.iter().any(|&k| k) || crashed.iter().any(|&c| c) || live.contains(&0) {
                    continue;
                }
                let lib = (*lib as usize) % n;
                let docs = churn_docs(
                    plan.seed,
                    lib as u64,
                    *batch,
                    (*count).clamp(1, 16),
                    n as u64,
                );
                for (l, fault) in active.iter().enumerate() {
                    if fault.is_some() {
                        backend.apply_fault(l, None);
                    }
                }
                backend
                    .add_docs(lib, &docs)
                    .unwrap_or_else(|e| panic!("add_docs on {}: {e}", backend.name()));
                for (l, fault) in active.iter().enumerate() {
                    if let Some(f) = fault {
                        backend.apply_fault(l, Some(*f));
                    }
                }
            }
            Step::SetFault { lib, fault } => {
                let lib = (*lib as usize) % n;
                if killed[lib] || crashed[lib] {
                    continue;
                }
                if matches!(fault, FaultSpec::Down) {
                    let mut would = active.clone();
                    would[lib] = Some(FaultSpec::Down);
                    if down_count(&would, &killed, &crashed, &live) >= n {
                        continue;
                    }
                    sends_blocked = true;
                }
                active[lib] = Some(*fault);
                backend.apply_fault(lib, Some(*fault));
            }
            Step::ClearFaults => {
                for l in 0..n {
                    if active[l].is_some() && !killed[l] {
                        backend.apply_fault(l, None);
                    }
                    active[l] = None;
                }
            }
            Step::KillLib { lib } => {
                let lib = (*lib as usize) % n;
                if killed[lib] || crashed[lib] {
                    continue;
                }
                let mut would_killed = killed.clone();
                would_killed[lib] = true;
                if down_count(&active, &would_killed, &crashed, &live) >= n {
                    continue;
                }
                killed[lib] = true;
                active[lib] = None;
                sends_blocked = true;
                backend.kill(lib);
            }
            Step::AddLib { lib } => {
                let lib = (*lib as usize) % n;
                if killed[lib] || crashed[lib] || live[lib] >= MAX_REPLICAS {
                    continue;
                }
                live[lib] += 1;
                backend.add_lib(lib);
            }
            Step::RemoveLib { lib } => {
                let lib = (*lib as usize) % n;
                if killed[lib] || crashed[lib] || live[lib] == 0 {
                    continue;
                }
                if live[lib] == 1 {
                    let mut would = live.clone();
                    would[lib] = 0;
                    if down_count(&active, &killed, &crashed, &would) >= n {
                        continue;
                    }
                    // An emptied shard refuses after the fan-out already
                    // recorded the send, exactly like a Down window.
                    sends_blocked = true;
                }
                live[lib] -= 1;
                backend.remove_lib(lib);
            }
            Step::PromoteReplica { lib } => {
                let lib = (*lib as usize) % n;
                if killed[lib] || crashed[lib] || live[lib] < 2 {
                    continue;
                }
                backend.promote_replica(lib);
            }
            Step::CrashLib { lib } => {
                let lib = (*lib as usize) % n;
                if killed[lib] || crashed[lib] {
                    continue;
                }
                let mut would = crashed.clone();
                would[lib] = true;
                if down_count(&active, &killed, &would, &live) >= n {
                    continue;
                }
                // The process holding the fault window died with it.
                active[lib] = None;
                crashed[lib] = true;
                sends_blocked = true;
                backend.crash(lib);
            }
            Step::ReopenLib { lib } => {
                let lib = (*lib as usize) % n;
                if !crashed[lib] {
                    continue;
                }
                crashed[lib] = false;
                backend.reopen(lib);
            }
            Step::CacheOn { spec } => backend.set_cache(Some(*spec)),
            Step::CacheOff => backend.set_cache(None),
            Step::Dispatch { mode } => backend.set_dispatch(*mode),
            Step::HealthPoll => {
                backend.health_poll();
                health_polls += 1;
            }
        }
    }

    let mut accounting = backend.accounting();
    accounting.sends_blocked = sends_blocked;
    accounting.health_polls = health_polls;
    RunReport {
        outcomes,
        accounting,
    }
}

/// The virtual-time backend: every step becomes a [`SimDriver`] call,
/// no threads, no sockets, microsecond-deterministic.
pub struct SimBackend {
    driver: SimDriver,
    topo: Topology,
    cost: CostModel,
    sink: TraceSink,
    wire_bytes: u64,
    /// Live replica count per shard. The simulator has no physical
    /// replicas — replicas are content-identical, so which one serves
    /// is unobservable in rankings — but an *empty* group is: a 0-live
    /// shard answers nothing, modeled as a permanent fault window that
    /// shadows whatever fault the plan has open.
    live: Vec<u64>,
    /// The plan-level fault window per shard, kept so membership
    /// transitions can recompute the effective fault plan.
    faults: Vec<Option<FaultSpec>>,
    /// Per-shard document counts and reindex epochs, mirroring the real
    /// backends' shard ledgers so `migrate` traces carry identical
    /// values.
    docs: Vec<u64>,
    epochs: Vec<u64>,
    /// Mirror of the real backends' replica-id counter (first replica
    /// of shard `s` is id `s`; joins take ids from here).
    next_id: u32,
    /// Mirror of the real backends' routing-table version: one bump per
    /// group published at startup, one per membership change.
    version: u64,
}

impl SimBackend {
    /// Builds the backend over the plan's corpus fixture.
    pub fn new(plan: &Plan) -> SimBackend {
        let fixture = Fixture::for_plan(plan);
        let parts: Vec<(&str, &[TrecDoc])> = fixture
            .parts()
            .iter()
            .map(|s| (s.name.as_str(), s.docs.as_slice()))
            .collect();
        let mut driver = SimDriver::new(&parts, Analyzer::default(), CI)
            .expect("fixture corpus must build a sim driver");
        driver.set_seed(derive_seed(plan.seed, 0x53494d)); // "SIM"
        let sink = driver.enable_tracing();
        let n = driver.num_parts();
        let docs = fixture
            .parts()
            .iter()
            .map(|s| s.docs.len() as u64)
            .collect();
        SimBackend {
            driver,
            topo: Topology::multi_disk(4),
            cost: CostModel::default(),
            sink,
            wire_bytes: 0,
            live: vec![plan.replicas.clamp(1, MAX_REPLICAS); n],
            faults: vec![None; n],
            docs,
            epochs: vec![0; n],
            // The real backends hand the first replica of shard `s` the
            // id `s` and draw every extra startup replica from a counter
            // starting at `n` — so after construction the counter sits
            // at one id per startup replica.
            next_id: (n as u64 * plan.replicas.clamp(1, MAX_REPLICAS)) as u32,
            version: n as u64,
        }
    }

    /// Drains the backend's buffered traces — for golden-trace tests.
    /// Calling this mid-run steals traffic from the accounting summary;
    /// use on dedicated instances.
    pub fn take_traces(&self) -> Vec<teraphim_obs::QueryTrace> {
        self.sink.take_traces()
    }

    /// The driver, for post-run inspection in tests.
    pub fn driver(&self) -> &SimDriver {
        &self.driver
    }

    /// Reinstalls shard `lib`'s effective fault plan: a 0-live shard is
    /// down no matter what the plan's fault window says, so membership
    /// and fault transitions compose instead of clobbering each other.
    fn reapply(&mut self, lib: usize) {
        let plan = if self.live[lib] == 0 {
            FaultPlan::new().fail_from(0)
        } else {
            match self.faults[lib] {
                None => FaultPlan::new(),
                Some(FaultSpec::Down) => FaultPlan::new().fail_from(0),
                Some(FaultSpec::Delay { ms }) => {
                    FaultPlan::new().delay_all(std::time::Duration::from_millis(ms))
                }
            }
        };
        self.driver.set_fault_plan(lib, plan);
    }
}

impl Backend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn num_libs(&self) -> usize {
        self.driver.num_parts()
    }

    fn query(&mut self, _client: u64, mode: RunMode, query: &str, k: usize) -> QueryOutcome {
        let sim_mode = match mode.methodology() {
            None => SimMode::MonoServer,
            Some(m) => SimMode::Distributed(m),
        };
        match self
            .driver
            .time_query(&self.topo, &self.cost, sim_mode, query, k)
        {
            Ok(cost) => {
                self.wire_bytes += cost.bytes_on_wire;
                QueryOutcome {
                    step: 0,
                    hits: cost
                        .hits
                        .iter()
                        .map(|&(lib, doc)| Hit {
                            lib: lib as u64,
                            doc,
                            score_bits: None,
                        })
                        .collect(),
                    failed: cost.failed.iter().map(|&l| l as u64).collect(),
                    error: None,
                }
            }
            Err(e) => QueryOutcome {
                step: 0,
                hits: Vec::new(),
                failed: Vec::new(),
                error: Some(normalize_error(&e)),
            },
        }
    }

    fn add_docs(&mut self, lib: usize, docs: &[TrecDoc]) -> Result<(), String> {
        self.docs[lib] += docs.len() as u64;
        self.epochs[lib] += 1;
        self.driver
            .append_documents(lib, docs)
            .map_err(|e| format!("{e}"))
    }

    fn apply_fault(&mut self, lib: usize, fault: Option<FaultSpec>) {
        self.faults[lib] = fault;
        self.reapply(lib);
    }

    fn kill(&mut self, lib: usize) {
        // Permanent: the runner never clears faults on a killed shard,
        // so this plan is final regardless of `faults`/`live`.
        self.driver
            .set_fault_plan(lib, FaultPlan::new().fail_from(0));
    }

    fn add_lib(&mut self, lib: usize) {
        self.live[lib] += 1;
        // Emit the same `migrate` trace the real backends record for an
        // index handoff, with mirrored replica id / routing version /
        // shard-ledger values — sim and real traces stay byte-identical
        // after normalization.
        let id = self.next_id;
        self.next_id += 1;
        self.version += 1;
        self.sink.record(EventKind::Begin {
            op: "migrate",
            methodology: None,
            query_id: 0,
            k: 0,
        });
        self.sink.record(EventKind::Migrate {
            librarian: lib as u32,
            docs: self.docs[lib],
            epoch: self.epochs[lib],
        });
        self.sink.record(EventKind::Join {
            librarian: lib as u32,
            replica: id,
            version: self.version,
        });
        self.sink.record(EventKind::End);
        self.reapply(lib);
    }

    fn remove_lib(&mut self, lib: usize) {
        self.live[lib] = self.live[lib].saturating_sub(1);
        // A leave publishes a new routing version on the real backends.
        self.version += 1;
        self.reapply(lib);
    }

    fn promote_replica(&mut self, lib: usize) {
        // Replicas are content-identical; which one is preferred is
        // unobservable in the simulator's ranking model — but the
        // preference change publishes a routing version, so the mirror
        // counter moves.
        let _ = lib;
        self.version += 1;
    }

    fn set_cache(&mut self, _spec: Option<CacheSpec>) {
        // The simulator has no receptionist cache; cache steps are
        // answer-neutral by construction, so a no-op keeps the
        // differential meaningful.
    }

    fn set_dispatch(&mut self, mode: DispatchChoice) {
        self.driver.dispatch = match mode {
            DispatchChoice::Sequential => SimDispatch::Sequential,
            DispatchChoice::Concurrent | DispatchChoice::Pipelined => SimDispatch::Parallel,
        };
    }

    fn health_poll(&mut self) {
        // No admin protocol in the simulator.
    }

    fn accounting(&mut self) -> Accounting {
        let sums = trace_traffic_sums(&self.sink.take_traces());
        Accounting {
            transport: None,
            trace: (sums.messages_sent, sums.bytes_sent, sums.bytes_received),
            registry: None,
            wire_cap: Some(self.wire_bytes),
            sends_blocked: false,
            health_polls: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query_step(mode: RunMode, query: &str) -> Step {
        Step::Query {
            client: 0,
            mode,
            query: query.to_string(),
            k: 10,
        }
    }

    #[test]
    fn sim_backend_runs_a_mixed_plan() {
        let mut plan = Plan::named("sim-mixed", 5);
        plan.steps = vec![
            query_step(RunMode::Ms, "cats"),
            query_step(RunMode::Cn, "cats"),
            Step::SetFault {
                lib: 1,
                fault: FaultSpec::Down,
            },
            query_step(RunMode::Cv, "cats"),
            Step::ClearFaults,
            Step::AddDocs {
                lib: 2,
                count: 2,
                batch: 0,
            },
            query_step(RunMode::Ci, "churn"),
        ];
        let mut backend = SimBackend::new(&plan);
        let report = run_plan(&plan, &mut backend);
        assert_eq!(report.outcomes.len(), 4);
        // The CV query under the fault window reports librarian 1 failed.
        assert_eq!(report.outcomes[2].failed, vec![1]);
        assert!(report.outcomes[2].error.is_none(), "degraded, not failed");
        // The churn probe finds the appended documents after the batch.
        assert!(
            report.outcomes[3].hits.iter().any(|h| h.lib == 2),
            "churn docs live at librarian 2: {:?}",
            report.outcomes[3]
        );
        assert!(report.accounting.wire_cap.unwrap() > 0);
        assert!(report.accounting.sends_blocked);
    }

    #[test]
    fn runner_never_downs_the_whole_fleet() {
        let mut plan = Plan::named("all-down", 5);
        plan.steps = (0..8)
            .map(|lib| Step::SetFault {
                lib,
                fault: FaultSpec::Down,
            })
            .chain([query_step(RunMode::Cn, "cats")])
            .collect();
        let mut backend = SimBackend::new(&plan);
        let report = run_plan(&plan, &mut backend);
        let outcome = &report.outcomes[0];
        assert!(outcome.error.is_none(), "some librarian must survive");
        assert!(
            outcome.failed.len() < backend.num_libs(),
            "at least one librarian answered"
        );
    }
}
