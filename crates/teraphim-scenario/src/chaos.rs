//! Clearable fault injection for real transports.
//!
//! The sim backend injects faults through `SimDriver::set_fault_plan`;
//! the in-process and TCP backends need an equivalent that (a) can be
//! flipped on and off *between* plan steps from outside the
//! receptionist, and (b) is counter-independent — a fault window fails
//! *every* exchange, so rankings stay byte-identical across backends
//! regardless of how many setup or retry exchanges each backend makes.
//! `teraphim_net::FaultyTransport` schedules by request index, which is
//! exactly what differential checking must avoid; [`ChaosTransport`]
//! schedules by wall-clock plan state instead.

use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use teraphim_net::{Message, NetError, Ticket, TrafficStats, Transport};

/// The currently injected condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosState {
    /// Forward everything untouched.
    Healthy,
    /// Refuse every exchange with [`NetError::Unavailable`] without
    /// touching the inner transport.
    Down,
    /// Sleep before forwarding; results are unaffected.
    Delay(Duration),
}

/// Shared switch for one librarian's chaos wrapper. The plan runner
/// holds one cell per librarian and flips it between steps; the
/// transport (possibly checked out by a session) observes the change on
/// its next exchange.
#[derive(Clone)]
pub struct ChaosCell {
    state: Arc<Mutex<ChaosState>>,
}

impl ChaosCell {
    /// A healthy cell.
    pub fn healthy() -> ChaosCell {
        ChaosCell {
            state: Arc::new(Mutex::new(ChaosState::Healthy)),
        }
    }

    /// Replaces the injected condition.
    pub fn set(&self, state: ChaosState) {
        *self.state.lock().unwrap() = state;
    }

    /// The current condition.
    pub fn get(&self) -> ChaosState {
        *self.state.lock().unwrap()
    }
}

impl Default for ChaosCell {
    fn default() -> Self {
        ChaosCell::healthy()
    }
}

/// A transport decorator driven by a [`ChaosCell`].
///
/// `Down` short-circuits at `begin` time with [`Ticket::failed`], so
/// pipelined dispatch over a downed librarian never blocks on the wire;
/// healthy exchanges forward `begin`/`finish` to the inner transport,
/// preserving true pipelining.
pub struct ChaosTransport<T: Transport> {
    inner: T,
    cell: ChaosCell,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner` under `cell`'s control.
    pub fn new(inner: T, cell: ChaosCell) -> ChaosTransport<T> {
        ChaosTransport { inner, cell }
    }

    fn refusal() -> NetError {
        NetError::Unavailable("chaos: librarian down".to_string())
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn request(&mut self, request: &Message) -> Result<Message, NetError> {
        match self.cell.get() {
            ChaosState::Healthy => self.inner.request(request),
            ChaosState::Down => Err(Self::refusal()),
            ChaosState::Delay(d) => {
                thread::sleep(d);
                self.inner.request(request)
            }
        }
    }

    fn stats(&self) -> TrafficStats {
        self.inner.stats()
    }

    fn last_exchange(&self) -> (u64, u64) {
        self.inner.last_exchange()
    }

    fn begin(&mut self, request: &Message) -> Ticket {
        match self.cell.get() {
            ChaosState::Healthy => self.inner.begin(request),
            ChaosState::Down => Ticket::failed(Self::refusal()),
            ChaosState::Delay(d) => {
                thread::sleep(d);
                self.inner.begin(request)
            }
        }
    }

    fn finish(&mut self, ticket: Ticket) -> Result<Message, NetError> {
        self.inner.finish(ticket)
    }

    fn set_trace(&mut self, trace: teraphim_obs::TraceSink, librarian: u32) {
        self.inner.set_trace(trace, librarian);
    }

    fn last_server_timings(&self) -> Option<teraphim_obs::ServerTimings> {
        self.inner.last_server_timings()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teraphim_net::{InProcTransport, Service};

    struct Echo;
    impl Service for Echo {
        fn handle(&mut self, request: Message) -> Message {
            request
        }
    }

    #[test]
    fn chaos_cell_gates_the_inner_transport() {
        let cell = ChaosCell::healthy();
        let mut t = ChaosTransport::new(InProcTransport::new(Echo), cell.clone());
        let req = Message::StatsRequest;
        assert!(t.request(&req).is_ok());

        cell.set(ChaosState::Down);
        let before = t.stats();
        assert!(matches!(t.request(&req), Err(NetError::Unavailable(_))));
        let ticket = t.begin(&req);
        assert!(matches!(t.finish(ticket), Err(NetError::Unavailable(_))));
        assert_eq!(
            t.stats(),
            before,
            "a downed wrapper must not touch the wire"
        );

        cell.set(ChaosState::Healthy);
        assert!(t.request(&req).is_ok());
        let ticket = t.begin(&req);
        assert!(t.finish(ticket).is_ok(), "healthy begin/finish forwards");
    }

    #[test]
    fn delay_preserves_results() {
        let cell = ChaosCell::healthy();
        cell.set(ChaosState::Delay(Duration::from_millis(1)));
        let mut t = ChaosTransport::new(InProcTransport::new(Echo), cell);
        let resp = t.request(&Message::StatsRequest).unwrap();
        assert!(matches!(resp, Message::StatsRequest));
    }
}
