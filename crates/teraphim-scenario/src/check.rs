//! The checking modes: doublecheck (determinism), differential
//! (backend equivalence) and accounting (resource-ledger consistency).
//!
//! Every violated property becomes a [`Failure`] carrying a stable
//! `property` key. The shrinker minimizes against that key — a shrunken
//! plan must fail the *same* property, not merely fail somehow — so
//! keys must not embed run-specific detail like step indices or byte
//! counts (those go in `message`).

use crate::backend::{Accounting, Backend, RunReport, SimBackend};
use crate::plan::Plan;
use crate::real::{InProcBackend, TcpBackend};

/// One violated property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Stable property key, e.g. `"diff:sim~inproc:ranking"` — the
    /// shrinker's equivalence class.
    pub property: String,
    /// Plan step the violation was observed at, when attributable.
    pub step: Option<usize>,
    /// Human-readable detail (free-form, run-specific).
    pub message: String,
}

impl Failure {
    fn new(
        property: impl Into<String>,
        step: Option<usize>,
        message: impl Into<String>,
    ) -> Failure {
        Failure {
            property: property.into(),
            step,
            message: message.into(),
        }
    }

    /// True when `other` violates the same property (ignoring where and
    /// how it manifested) — the shrinker's acceptance test.
    pub fn same_property(&self, other: &Failure) -> bool {
        self.property == other.property
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.step {
            Some(step) => write!(f, "{} at step {}: {}", self.property, step, self.message),
            None => write!(f, "{}: {}", self.property, self.message),
        }
    }
}

/// Compares two runs of (nominally) the same system.
///
/// `exact_scores` additionally requires bit-identical merged scores —
/// used between the two real backends and between repeat runs, where
/// the arithmetic is the same code on the same data; the simulator
/// exposes no merged scores, so cross-checks against it compare
/// `(librarian, doc)` rankings and coverage only.
pub fn compare_reports(
    a_name: &str,
    a: &RunReport,
    b_name: &str,
    b: &RunReport,
    exact_scores: bool,
) -> Result<(), Failure> {
    let key = |what: &str| format!("diff:{a_name}~{b_name}:{what}");
    if a.outcomes.len() != b.outcomes.len() {
        return Err(Failure::new(
            key("count"),
            None,
            format!(
                "{} query outcomes vs {}",
                a.outcomes.len(),
                b.outcomes.len()
            ),
        ));
    }
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        let step = Some(oa.step);
        let err_a = oa.error.as_deref();
        let err_b = ob.error.as_deref();
        if err_a != err_b {
            return Err(Failure::new(
                key("error"),
                step,
                format!("{a_name}={err_a:?} vs {b_name}={err_b:?}"),
            ));
        }
        if oa.failed != ob.failed {
            return Err(Failure::new(
                key("coverage"),
                step,
                format!("failed librarians {:?} vs {:?}", oa.failed, ob.failed),
            ));
        }
        let ranks_a: Vec<(u64, u32)> = oa.hits.iter().map(|h| (h.lib, h.doc)).collect();
        let ranks_b: Vec<(u64, u32)> = ob.hits.iter().map(|h| (h.lib, h.doc)).collect();
        if ranks_a != ranks_b {
            return Err(Failure::new(
                key("ranking"),
                step,
                format!("{ranks_a:?} vs {ranks_b:?}"),
            ));
        }
        if exact_scores {
            let bits_a: Vec<Option<u64>> = oa.hits.iter().map(|h| h.score_bits).collect();
            let bits_b: Vec<Option<u64>> = ob.hits.iter().map(|h| h.score_bits).collect();
            if bits_a != bits_b {
                return Err(Failure::new(
                    key("scores"),
                    step,
                    "merged scores diverged at the bit level".to_string(),
                ));
            }
        }
    }
    Ok(())
}

/// Checks one backend's three resource ledgers against each other:
/// trace-event sums, transport counters and the metrics registry must
/// tell one consistent story.
///
/// Two documented inequalities are tolerated (and asserted in the
/// stated direction):
///
/// - under blocked sends the fan-out records a send *before* the
///   transport refuses it, so trace-side sends may exceed wire-side
///   sends but never the reverse;
/// - health polls are deliberately untraced, so wire-side counters may
///   exceed trace-side ones but never the reverse.
pub fn verify_accounting(name: &str, acc: &Accounting) -> Result<(), Failure> {
    let key = |what: &str| format!("accounting:{name}:{what}");
    if let Some(registry) = acc.registry {
        if registry.1 != acc.trace.1 || registry.2 != acc.trace.2 {
            return Err(Failure::new(
                key("registry"),
                None,
                format!("registry {registry:?} vs trace {:?}", acc.trace),
            ));
        }
    }
    if let Some(transport) = acc.transport {
        let (_, wire_sent, wire_recv) = transport;
        let (_, trace_sent, trace_recv) = acc.trace;
        let polls = acc.health_polls > 0;
        let blocked = acc.sends_blocked;
        let sent_ok = match (blocked, polls) {
            (false, false) => wire_sent == trace_sent,
            (true, false) => trace_sent >= wire_sent,
            (false, true) => wire_sent >= trace_sent,
            (true, true) => true,
        };
        if !sent_ok {
            return Err(Failure::new(
                key("sent"),
                None,
                format!(
                    "wire sent {wire_sent} vs trace sent {trace_sent} \
                     (blocked={blocked}, polls={polls})"
                ),
            ));
        }
        let recv_ok = if polls {
            wire_recv >= trace_recv
        } else {
            wire_recv == trace_recv
        };
        if !recv_ok {
            return Err(Failure::new(
                key("received"),
                None,
                format!("wire received {wire_recv} vs trace received {trace_recv}"),
            ));
        }
    }
    if let (Some(cap), false) = (acc.wire_cap, acc.sends_blocked) {
        let traced = acc.trace.1 + acc.trace.2;
        if traced > cap {
            return Err(Failure::new(
                key("wirecap"),
                None,
                format!("traced {traced} bytes exceed the {cap}-byte wire total"),
            ));
        }
    }
    Ok(())
}

/// Doublecheck mode: run the plan twice on fresh instances of one
/// backend; rankings, coverage, errors, score bits and trace sums must
/// all repeat exactly. Returns the first run's report.
pub fn doublecheck<B, F>(plan: &Plan, mut make: F) -> Result<RunReport, Failure>
where
    B: Backend,
    F: FnMut(&Plan) -> B,
{
    let mut initial = make(plan);
    let name = initial.name();
    let first = crate::backend::run_plan(plan, &mut initial);
    drop(initial);
    let second = crate::backend::run_plan(plan, &mut make(plan));
    let key = |what: &str| format!("doublecheck:{name}:{what}");
    compare_reports(name, &first, name, &second, true).map_err(|f| Failure {
        property: key(f.property.rsplit(':').next().unwrap_or("diff")),
        ..f
    })?;
    if first.accounting.trace != second.accounting.trace {
        return Err(Failure::new(
            key("trace"),
            None,
            format!(
                "trace sums {:?} vs {:?}",
                first.accounting.trace, second.accounting.trace
            ),
        ));
    }
    Ok(first)
}

/// The three backends' reports for one plan.
#[derive(Debug)]
pub struct DifferentialReport {
    /// Virtual-time run.
    pub sim: RunReport,
    /// In-process run.
    pub inproc: RunReport,
    /// TCP serving-pool run.
    pub tcp: RunReport,
}

/// Differential mode: run the plan on all three backends; rankings and
/// coverage must agree everywhere, the two real backends must agree to
/// the score bit, and each backend's accounting must be internally
/// consistent.
pub fn differential(plan: &Plan) -> Result<DifferentialReport, Failure> {
    let sim = crate::backend::run_plan(plan, &mut SimBackend::new(plan));
    let inproc = crate::backend::run_plan(plan, &mut InProcBackend::new(plan));
    let tcp = crate::backend::run_plan(plan, &mut TcpBackend::new(plan));
    verify_accounting("sim", &sim.accounting)?;
    verify_accounting("inproc", &inproc.accounting)?;
    verify_accounting("tcp", &tcp.accounting)?;
    compare_reports("sim", &sim, "inproc", &inproc, false)?;
    compare_reports("inproc", &inproc, "tcp", &tcp, true)?;
    Ok(DifferentialReport { sim, inproc, tcp })
}
