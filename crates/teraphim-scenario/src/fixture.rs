//! The shared corpus fixture every backend builds from.
//!
//! All three execution backends (virtual-time sim, in-process
//! receptionist, TCP serving pool) must index the *same* documents in
//! the same order, or differential checking would be vacuous. This
//! module derives everything — the initial fleet and every churn batch —
//! from the plan's two seeds alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use teraphim_core::sim::derive_seed;
use teraphim_corpus::words::word_for;
use teraphim_corpus::{CorpusSpec, Subcollection, SyntheticCorpus};
use teraphim_text::sgml::TrecDoc;

use crate::plan::Plan;

/// The seed-determined starting state shared by every backend.
pub struct Fixture {
    corpus: SyntheticCorpus,
}

/// Churn batches hash `(plan seed, CHURN_STREAM + batch * libs + lib)`
/// so each `(lib, batch)` pair owns an independent document stream.
const CHURN_STREAM: u64 = 0x5343_4e52; // "SCNR"

impl Fixture {
    /// Builds the fixture for a plan (generates the synthetic corpus).
    pub fn for_plan(plan: &Plan) -> Fixture {
        Fixture {
            corpus: SyntheticCorpus::generate(&CorpusSpec::small(plan.corpus_seed)),
        }
    }

    /// The generated corpus (query pools, qrels, metadata).
    pub fn corpus(&self) -> &SyntheticCorpus {
        &self.corpus
    }

    /// The initial subcollections, one per librarian.
    pub fn parts(&self) -> &[Subcollection] {
        self.corpus.subcollections()
    }

    /// Number of librarians in the fixture fleet.
    pub fn num_libs(&self) -> usize {
        self.parts().len()
    }
}

/// The documents for churn batch `batch` aimed at librarian `lib`.
///
/// Purely a function of `(plan_seed, lib, batch, count)`: shrinking
/// other steps out of a plan never changes the documents a surviving
/// `add_docs` step appends, and every backend appends byte-identical
/// text. Documents reuse the synthetic-corpus vocabulary (so churn is
/// searchable by generated queries) plus a `churn` marker term.
pub fn churn_docs(plan_seed: u64, lib: u64, batch: u64, count: u64, num_libs: u64) -> Vec<TrecDoc> {
    let stream = CHURN_STREAM
        .wrapping_add(batch.wrapping_mul(num_libs.max(1)))
        .wrapping_add(lib);
    let mut rng = StdRng::seed_from_u64(derive_seed(plan_seed, stream));
    (0..count)
        .map(|i| {
            let len = rng.gen_range(8..24);
            let mut text = String::from("churn");
            for _ in 0..len {
                text.push(' ');
                text.push_str(&word_for(rng.gen_range(0..600)));
            }
            TrecDoc {
                docno: format!("CHURN-{lib}-{batch}-{i}"),
                text,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_docs_are_deterministic_and_decorrelated() {
        let a = churn_docs(42, 1, 0, 3, 4);
        let b = churn_docs(42, 1, 0, 3, 4);
        assert_eq!(a, b, "same inputs must yield identical documents");
        let other_lib = churn_docs(42, 2, 0, 3, 4);
        assert_ne!(
            a[0].text, other_lib[0].text,
            "different librarians get different streams"
        );
        let other_batch = churn_docs(42, 1, 1, 3, 4);
        assert_ne!(a[0].text, other_batch[0].text);
        assert_eq!(a[0].docno, "CHURN-1-0-0");
    }

    #[test]
    fn fixture_fleet_matches_corpus_split() {
        let plan = Plan::named("f", 1);
        let fixture = Fixture::for_plan(&plan);
        assert_eq!(fixture.num_libs(), fixture.corpus().subcollections().len());
        assert!(fixture.num_libs() >= 2, "plans need a fleet to fan out to");
    }
}
