//! The seeded plan generator.
//!
//! Produces workloads shaped like the paper's experiments: Zipf-skewed
//! query popularity (a small head of queries dominates, so caches have
//! something to hit), bursts from a single client, a mix of long and
//! short queries across all four methodologies, interleaved with index
//! churn, fault windows, cache and dispatch toggles. Everything derives
//! from the plan seed: the same seed always generates the same plan,
//! and the plan is self-contained once generated (query strings are
//! embedded literally).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use teraphim_core::sim::derive_seed;
use teraphim_corpus::zipf::Zipf;

use crate::fixture::Fixture;
use crate::plan::{CacheSpec, DispatchChoice, FaultSpec, Plan, RunMode, Step, MAX_REPLICAS};

/// Generator knobs.
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Steps to emit.
    pub steps: usize,
    /// Client sessions (TCP backend forks one per client).
    pub clients: u64,
    /// Allow permanent `kill_lib` steps (off by default: kills make
    /// every later query degraded, which hides more interesting bugs).
    pub allow_kills: bool,
    /// Replicas per shard the fleet starts with (clamped to
    /// `1..=MAX_REPLICAS`). Above 1 the generator also mixes membership
    /// churn — `add_lib`, `remove_lib`, `promote_replica` — into the
    /// workload.
    pub replicas: u64,
    /// Mix `crash_lib`/`reopen_lib` churn into the workload: shards
    /// lose their volatile state mid-plan and must recover from their
    /// persistent store. Off by default so pre-existing seeds keep
    /// generating byte-identical plans.
    pub crashes: bool,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            steps: 60,
            clients: 2,
            allow_kills: false,
            replicas: 1,
            crashes: false,
        }
    }
}

/// Generates a deterministic plan from `seed`.
pub fn generate_plan(name: &str, seed: u64, options: GenOptions) -> Plan {
    let mut plan = Plan::named(name, seed);
    plan.clients = options.clients.max(1);
    plan.replicas = options.replicas.clamp(1, MAX_REPLICAS);
    let fixture = Fixture::for_plan(&plan);
    let num_libs = fixture.num_libs() as u64;

    // The query pool: long and short queries from the synthetic corpus,
    // plus probes for churned documents. Zipf rank order makes a small
    // head of queries dominate, as in real logs.
    let mut pool: Vec<String> = Vec::new();
    for (short, long) in fixture
        .corpus()
        .short_queries()
        .iter()
        .zip(fixture.corpus().long_queries())
    {
        pool.push(short.text.clone());
        pool.push(long.text.clone());
    }
    pool.push("churn".to_string());
    let zipf = Zipf::new(pool.len(), 1.0);

    let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x47454e)); // "GEN"
    let mut batch = 0u64;
    let mut cache_on = false;

    let emit_query = |rng: &mut StdRng, steps: &mut Vec<Step>| {
        let mode = match rng.gen_range(0u32..100) {
            0..=14 => RunMode::Ms,
            15..=39 => RunMode::Cn,
            40..=74 => RunMode::Cv,
            _ => RunMode::Ci,
        };
        let k = *[5u64, 10, 20].get(rng.gen_range(0usize..3)).unwrap();
        steps.push(Step::Query {
            client: rng.gen_range(0..options.clients.max(1)),
            mode,
            query: pool[zipf.sample(rng)].clone(),
            k,
        });
    };

    let mut crashed: Vec<bool> = vec![false; num_libs as usize];
    let mut steps = Vec::with_capacity(options.steps);
    while steps.len() < options.steps {
        // Crash churn draws from its own pre-roll so the main step
        // distribution (and thus every existing seed's plan) is
        // untouched when crashes are off. A crashed shard is reopened
        // with higher probability than a live one is crashed, so plans
        // spend most steps with the fleet answerable but still cross
        // plenty of crash/recover boundaries.
        if options.crashes && rng.gen_range(0u32..100) < 8 {
            let crashed_libs: Vec<u64> = (0..num_libs).filter(|&l| crashed[l as usize]).collect();
            let live_libs: Vec<u64> = (0..num_libs).filter(|&l| !crashed[l as usize]).collect();
            if !crashed_libs.is_empty() && (live_libs.is_empty() || rng.gen_bool(0.6)) {
                let lib = crashed_libs[rng.gen_range(0..crashed_libs.len())];
                crashed[lib as usize] = false;
                steps.push(Step::ReopenLib { lib });
            } else if !live_libs.is_empty() {
                let lib = live_libs[rng.gen_range(0..live_libs.len())];
                crashed[lib as usize] = true;
                steps.push(Step::CrashLib { lib });
            }
            continue;
        }
        match rng.gen_range(0u32..100) {
            // A burst: one client fires a run of queries back-to-back.
            0..=14 => {
                let len = rng.gen_range(3usize..6);
                for _ in 0..len {
                    emit_query(&mut rng, &mut steps);
                }
            }
            15..=69 => emit_query(&mut rng, &mut steps),
            70..=77 => {
                steps.push(Step::AddDocs {
                    lib: rng.gen_range(0..num_libs),
                    count: rng.gen_range(1u64..4),
                    batch,
                });
                batch += 1;
            }
            78..=83 => {
                let fault = if rng.gen_bool(0.4) {
                    FaultSpec::Down
                } else {
                    FaultSpec::Delay {
                        ms: rng.gen_range(1u64..4),
                    }
                };
                steps.push(Step::SetFault {
                    lib: rng.gen_range(0..num_libs),
                    fault,
                });
            }
            84..=87 => steps.push(Step::ClearFaults),
            88..=91 => {
                steps.push(if cache_on {
                    Step::CacheOff
                } else {
                    Step::CacheOn {
                        spec: CacheSpec::small(),
                    }
                });
                cache_on = !cache_on;
            }
            92..=95 => {
                let mode = match rng.gen_range(0u32..3) {
                    0 => DispatchChoice::Sequential,
                    1 => DispatchChoice::Concurrent,
                    _ => DispatchChoice::Pipelined,
                };
                steps.push(Step::Dispatch { mode });
            }
            96..=97 if options.allow_kills => {
                steps.push(Step::KillLib {
                    lib: rng.gen_range(0..num_libs),
                });
            }
            // Membership churn: elastic plans move replicas in and out
            // while queries are in flight. Removes slightly outnumber
            // joins so shards actually dip to zero replicas sometimes,
            // exercising the degrade-then-heal path.
            96..=98 if plan.replicas > 1 => {
                let lib = rng.gen_range(0..num_libs);
                steps.push(match rng.gen_range(0u32..8) {
                    0..=2 => Step::AddLib { lib },
                    3..=6 => Step::RemoveLib { lib },
                    _ => Step::PromoteReplica { lib },
                });
            }
            _ => steps.push(Step::HealthPoll),
        }
    }
    steps.truncate(options.steps);
    plan.steps = steps;
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_plan("g", 42, GenOptions::default());
        let b = generate_plan("g", 42, GenOptions::default());
        assert_eq!(a, b);
        let c = generate_plan("g", 43, GenOptions::default());
        assert_ne!(a.steps, c.steps, "different seeds diverge");
    }

    #[test]
    fn generated_plans_have_the_advertised_shape() {
        let plan = generate_plan(
            "shape",
            7,
            GenOptions {
                steps: 120,
                clients: 3,
                allow_kills: false,
                replicas: 1,
                crashes: false,
            },
        );
        assert_eq!(plan.steps.len(), 120);
        assert!(plan.query_steps() >= 60, "queries should dominate");
        assert!(
            plan.steps.iter().any(|s| matches!(s, Step::AddDocs { .. })),
            "churn present"
        );
        assert!(
            plan.steps
                .iter()
                .any(|s| matches!(s, Step::SetFault { .. })),
            "faults present"
        );
        assert!(
            !plan.steps.iter().any(|s| matches!(s, Step::KillLib { .. })),
            "kills stay off unless asked for"
        );
        // All four methodologies appear in a plan this long.
        for mode in RunMode::ALL {
            assert!(
                plan.steps
                    .iter()
                    .any(|s| matches!(s, Step::Query { mode: m, .. } if *m == mode)),
                "{} missing",
                mode.code()
            );
        }
        // Round-trips like any other plan.
        let back = Plan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
        assert!(
            !plan.steps.iter().any(|s| matches!(
                s,
                Step::AddLib { .. } | Step::RemoveLib { .. } | Step::PromoteReplica { .. }
            )),
            "membership churn stays off for single-replica fleets"
        );
    }

    #[test]
    fn crash_churn_is_opt_in_and_balanced() {
        let base = GenOptions::default();
        let with_crashes = GenOptions {
            steps: 300,
            crashes: true,
            ..base
        };
        let plan = generate_plan("crashy", 11, with_crashes);
        let crashes = plan
            .steps
            .iter()
            .filter(|s| matches!(s, Step::CrashLib { .. }))
            .count();
        let reopens = plan
            .steps
            .iter()
            .filter(|s| matches!(s, Step::ReopenLib { .. }))
            .count();
        assert!(crashes > 0, "crashes present in a 300-step crashy plan");
        assert!(reopens > 0, "reopens present too");
        assert!(
            reopens <= crashes,
            "a reopen only ever follows a crash: {reopens} vs {crashes}"
        );
        let back = Plan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);

        // With crashes off, the flag must not perturb generation at all.
        let off_a = generate_plan("g", 42, GenOptions::default());
        let off_b = generate_plan(
            "g",
            42,
            GenOptions {
                crashes: false,
                ..GenOptions::default()
            },
        );
        assert_eq!(off_a, off_b);
        assert!(
            !off_a
                .steps
                .iter()
                .any(|s| matches!(s, Step::CrashLib { .. } | Step::ReopenLib { .. })),
            "crash churn stays off unless asked for"
        );
    }

    #[test]
    fn elastic_plans_mix_membership_churn() {
        let plan = generate_plan(
            "elastic-shape",
            7,
            GenOptions {
                steps: 300,
                clients: 2,
                allow_kills: false,
                replicas: 2,
                crashes: false,
            },
        );
        assert_eq!(plan.replicas, 2);
        assert!(
            plan.steps
                .iter()
                .any(|s| matches!(s, Step::RemoveLib { .. })),
            "leaves present"
        );
        assert!(
            plan.steps.iter().any(|s| matches!(s, Step::AddLib { .. })),
            "joins present"
        );
        let back = Plan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
    }
}
