//! A minimal JSON value, writer and parser for the plan format.
//!
//! The workspace takes no serde dependency (`teraphim-obs` hand-writes
//! its trace JSON for the same reason), so plans get a small
//! self-contained round-trippable value type instead. The subset is
//! exactly what plans need: objects with ordered keys, arrays, strings,
//! unsigned integers and booleans. Integers are kept as `u64` — never
//! routed through `f64` — so 64-bit seeds survive a round trip bit for
//! bit.

use std::fmt::Write as _;

/// A parsed JSON value (plan subset: no floats, no null).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (seeds, counts, indices, byte budgets).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved and emitted verbatim.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value. Objects keep their field order, so a
    /// parse→render round trip of our own output is byte-identical.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => push_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_escaped(out, key);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses `text` into a value, requiring it to be consumed entirely
    /// (trailing whitespace aside).
    ///
    /// # Errors
    ///
    /// Returns a byte-offset-tagged message on malformed input or on
    /// constructs outside the plan subset (floats, null).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(text, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// JSON string escaping, mirroring the teraphim-obs trace writer.
fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(text, bytes, pos),
        Some(b'[') => parse_arr(text, bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(text, bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(c) if c.is_ascii_digit() => parse_uint(bytes, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected {word:?} at byte {}", *pos))
    }
}

fn parse_uint(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    let mut n: u64 = 0;
    while let Some(c) = bytes.get(*pos) {
        if !c.is_ascii_digit() {
            break;
        }
        n = n
            .checked_mul(10)
            .and_then(|n| n.checked_add(u64::from(c - b'0')))
            .ok_or_else(|| format!("integer overflow at byte {start}"))?;
        *pos += 1;
    }
    // Floats and negative numbers are outside the plan subset; reject
    // them loudly rather than truncating.
    if matches!(bytes.get(*pos), Some(b'.') | Some(b'e') | Some(b'E')) {
        return Err(format!("non-integer number at byte {start}"));
    }
    Ok(Json::UInt(n))
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = text
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        *pos += 4;
                        // Surrogate pairs: plans never emit them (the
                        // writer escapes only controls), but accept
                        // them so hand-edited plans round-trip.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if !bytes[*pos..].starts_with(b"\\u") {
                                return Err("lone high surrogate".into());
                            }
                            let hex2 = text
                                .get(*pos + 2..*pos + 6)
                                .ok_or("truncated surrogate pair".to_string())?;
                            let low = u32::from_str_radix(hex2, 16)
                                .map_err(|_| format!("bad \\u escape {hex2:?}"))?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate".into());
                            }
                            *pos += 6;
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            code
                        };
                        out.push(char::from_u32(c).ok_or(format!("invalid code point {c:#x}"))?);
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
            }
            _ => {
                // Consume one UTF-8 scalar from the source text.
                let rest = &text[*pos..];
                let ch = rest.chars().next().ok_or("invalid UTF-8".to_string())?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_obj(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(text, bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(text, bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_arr(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(text, bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        let value = Json::Obj(vec![
            ("name".into(), Json::Str("plan \"x\"\n\\tab\t".into())),
            ("seed".into(), Json::UInt(u64::MAX)),
            ("ok".into(), Json::Bool(true)),
            (
                "steps".into(),
                Json::Arr(vec![Json::UInt(0), Json::Str("中文 λ".into())]),
            ),
            ("empty".into(), Json::Arr(vec![])),
            ("none".into(), Json::Obj(vec![])),
        ]);
        let text = value.render();
        assert_eq!(Json::parse(&text).unwrap(), value);
        // Render → parse → render is byte-stable.
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        for n in [0, 1, 42, u64::MAX, u64::MAX - 1, 1 << 53, (1 << 53) + 1] {
            let text = Json::UInt(n).render();
            assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n));
        }
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let text = " { \"a\" : [ 1 , true , \"x\\u0041\\n\" ] } ";
        let v = Json::parse(text).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_bool(), Some(true));
        assert_eq!(arr[2].as_str(), Some("xA\n"));
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "1.5",
            "-3",
            "nul",
            "\"abc",
            "{\"a\" 1}",
            "[1] x",
            "18446744073709551616",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
