//! TERAPHIM scenario engine: deterministic plan-based workload
//! simulation with differential checking and plan shrinking.
//!
//! A [`Plan`] is a seeded, self-contained script of multi-client
//! interactions against a distributed retrieval fleet — Zipf-skewed
//! query streams across all four of the paper's methodologies
//! (mono-server, Central Nothing, Central Vocabulary, Central Index),
//! index churn with epoch bumps, fault windows, cache and dispatch
//! toggles. The same plan replays against three embodiments of the
//! system:
//!
//! - [`SimBackend`] — the virtual-time simulator, no threads or
//!   sockets;
//! - [`InProcBackend`] — a real receptionist over in-process
//!   transports;
//! - [`TcpBackend`] — the multiplexed TCP serving pool, one session
//!   per plan client.
//!
//! Three checking modes turn replays into properties:
//! [`doublecheck`] (the same backend must repeat itself exactly),
//! [`differential`] (all backends must agree: same rankings, same
//! coverage, bit-identical scores between the real backends), and
//! [`verify_accounting`] (each backend's trace, transport and metrics
//! ledgers must tell one story). When a property fails,
//! [`shrink_plan`] ddmin-minimizes the plan to a small reproducer that
//! still violates the same property, and [`write_bugbase`] commits it
//! as JSON replayable with `teraphim sim --plan <file>`.

#![warn(missing_docs)]

pub mod backend;
pub mod chaos;
pub mod check;
pub mod fixture;
pub mod gen;
pub mod json;
pub mod plan;
pub mod real;
pub mod shrink;

pub use backend::{
    normalize_error, run_plan, Accounting, Backend, Hit, QueryOutcome, RunReport, SimBackend,
    TrafficTriple, CI,
};
pub use chaos::{ChaosCell, ChaosState, ChaosTransport};
pub use check::{
    compare_reports, differential, doublecheck, verify_accounting, DifferentialReport, Failure,
};
pub use fixture::{churn_docs, Fixture};
pub use gen::{generate_plan, GenOptions};
pub use json::Json;
pub use plan::{CacheSpec, DispatchChoice, FaultSpec, Plan, RunMode, Step};
pub use real::{InProcBackend, SharedLibrarian, TcpBackend};
pub use shrink::{shrink_plan, write_bugbase, ShrinkResult};
