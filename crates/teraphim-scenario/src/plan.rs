//! The plan model: a deterministic, self-contained scenario script.
//!
//! A [`Plan`] is a named, seeded sequence of [`Step`]s — queries across
//! all four methodologies, index churn, fault windows, cache and
//! dispatch toggles — that any execution backend can replay. Plans are
//! serialized as JSON (see [`Plan::to_json`] / [`Plan::from_json`]) so
//! a failing plan can be committed to the `tests/fixtures/plans/`
//! bugbase and replayed with `teraphim sim --plan FILE`.
//!
//! The format is deliberately self-contained: query strings are stored
//! literally, and churn documents are derived from `(seed, batch)` so a
//! shrunken subset of steps produces the *same* documents as the
//! original plan.

use crate::json::Json;
use teraphim_core::Methodology;

/// What system a query step runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// The mono-server baseline.
    Ms,
    /// Central Nothing.
    Cn,
    /// Central Vocabulary.
    Cv,
    /// Central Index.
    Ci,
}

impl RunMode {
    /// All modes, in paper order.
    pub const ALL: [RunMode; 4] = [RunMode::Ms, RunMode::Cn, RunMode::Cv, RunMode::Ci];

    /// The wire code (`"MS"`, `"CN"`, `"CV"`, `"CI"`).
    pub fn code(self) -> &'static str {
        match self {
            RunMode::Ms => "MS",
            RunMode::Cn => "CN",
            RunMode::Cv => "CV",
            RunMode::Ci => "CI",
        }
    }

    /// Parses a wire code.
    pub fn from_code(code: &str) -> Option<RunMode> {
        Some(match code {
            "MS" => RunMode::Ms,
            "CN" => RunMode::Cn,
            "CV" => RunMode::Cv,
            "CI" => RunMode::Ci,
            _ => return None,
        })
    }

    /// The distributed methodology, or `None` for the mono baseline.
    pub fn methodology(self) -> Option<Methodology> {
        match self {
            RunMode::Ms => None,
            RunMode::Cn => Some(Methodology::CentralNothing),
            RunMode::Cv => Some(Methodology::CentralVocabulary),
            RunMode::Ci => Some(Methodology::CentralIndex),
        }
    }
}

/// A clearable fault condition on one librarian.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Every exchange fails (`fail_from(0)` on the sim; a refused
    /// request on real transports) until cleared.
    Down,
    /// Every exchange is delayed by this many milliseconds; rankings
    /// are unaffected.
    Delay {
        /// Injected delay in milliseconds.
        ms: u64,
    },
}

/// How the receptionist issues its fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchChoice {
    /// One librarian at a time.
    Sequential,
    /// One worker thread per librarian.
    Concurrent,
    /// Zero-spawn pipelining (PR 6).
    Pipelined,
}

impl DispatchChoice {
    fn code(self) -> &'static str {
        match self {
            DispatchChoice::Sequential => "sequential",
            DispatchChoice::Concurrent => "concurrent",
            DispatchChoice::Pipelined => "pipelined",
        }
    }

    fn from_code(code: &str) -> Option<DispatchChoice> {
        Some(match code {
            "sequential" => DispatchChoice::Sequential,
            "concurrent" => DispatchChoice::Concurrent,
            "pipelined" => DispatchChoice::Pipelined,
            _ => return None,
        })
    }
}

/// Receptionist cache sizing for a `cache on` step (mirrors
/// `teraphim_core::CacheConfig`, in plan-serializable form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSpec {
    /// Result-cache entries.
    pub results: u64,
    /// Result-cache shards.
    pub shards: u64,
    /// Term-statistics entries.
    pub terms: u64,
    /// Answer-document byte budget.
    pub doc_bytes: u64,
}

impl CacheSpec {
    /// A small default that exercises hits *and* evictions.
    pub fn small() -> CacheSpec {
        CacheSpec {
            results: 32,
            shards: 2,
            terms: 128,
            doc_bytes: 65536,
        }
    }
}

/// One scripted action.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Run one ranked query and record its outcome.
    Query {
        /// Which client session issues it (TCP backend: one forked
        /// session per client; others fold clients into one stream).
        client: u64,
        /// The system under test.
        mode: RunMode,
        /// Literal query text.
        query: String,
        /// Result depth.
        k: u64,
    },
    /// Append deterministic churn documents to one librarian, bump its
    /// epoch, and re-run CV/CI preprocessing (the reindexing cycle).
    AddDocs {
        /// Target librarian.
        lib: u64,
        /// Documents in the batch.
        count: u64,
        /// Batch id: document contents derive from `(plan seed, batch)`,
        /// so shrinking steps away never changes surviving documents.
        batch: u64,
    },
    /// Open (or replace) a fault window on one librarian.
    SetFault {
        /// Target librarian.
        lib: u64,
        /// The condition.
        fault: FaultSpec,
    },
    /// Close every fault window (killed librarians stay dead).
    ClearFaults,
    /// Permanently kill one librarian — the unrecoverable variant of
    /// `Down`; on the TCP backend the server itself is shut down.
    KillLib {
        /// Target librarian.
        lib: u64,
    },
    /// Enable the receptionist caches with the given sizing.
    CacheOn {
        /// Cache sizing.
        spec: CacheSpec,
    },
    /// Disable the receptionist caches.
    CacheOff,
    /// Switch the fan-out dispatch mode.
    Dispatch {
        /// The new mode.
        mode: DispatchChoice,
    },
    /// Poll fleet health (feeds the cache-invalidation generation).
    HealthPoll,
    /// A replica joins one shard's replica group: the shard's current
    /// subcollection (initial fixture docs plus surviving churn
    /// batches) is migrated to a fresh librarian that adopts the
    /// shard's epoch, and the routing-table version bumps.
    AddLib {
        /// Target shard (librarian slot).
        lib: u64,
    },
    /// A replica leaves one shard's replica group (the current
    /// preferred one goes first). A shard at zero replicas answers
    /// nothing until an `add_lib` heals it; the runner never removes
    /// the last answerable librarian of the whole fleet.
    RemoveLib {
        /// Target shard (librarian slot).
        lib: u64,
    },
    /// Rotates the shard's preferred replica to the next live one —
    /// ranking-transparent by construction (replicas are
    /// content-identical), which the differential check enforces.
    PromoteReplica {
        /// Target shard (librarian slot).
        lib: u64,
    },
    /// Crash one librarian shard: the process "dies", losing all
    /// in-memory state; queries fail like a `down` fault until a
    /// `reopen_lib` recovers the shard from its persistent store.
    CrashLib {
        /// Target shard (librarian slot).
        lib: u64,
    },
    /// Recover a crashed shard by reopening its persistent store (WAL
    /// replay into the last durable manifest); rankings and epochs must
    /// come back exactly as they were, which the differential check
    /// (against the sim backend, which never loses state) enforces.
    ReopenLib {
        /// Target shard (librarian slot).
        lib: u64,
    },
}

impl Step {
    /// A short op name for summaries and failure messages.
    pub fn op(&self) -> &'static str {
        match self {
            Step::Query { .. } => "query",
            Step::AddDocs { .. } => "add_docs",
            Step::SetFault { .. } => "set_fault",
            Step::ClearFaults => "clear_faults",
            Step::KillLib { .. } => "kill_lib",
            Step::CacheOn { .. } => "cache_on",
            Step::CacheOff => "cache_off",
            Step::Dispatch { .. } => "dispatch",
            Step::HealthPoll => "health_poll",
            Step::AddLib { .. } => "add_lib",
            Step::RemoveLib { .. } => "remove_lib",
            Step::PromoteReplica { .. } => "promote_replica",
            Step::CrashLib { .. } => "crash_lib",
            Step::ReopenLib { .. } => "reopen_lib",
        }
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![("op".to_string(), Json::Str(self.op().to_string()))];
        match self {
            Step::Query {
                client,
                mode,
                query,
                k,
            } => {
                fields.push(("client".into(), Json::UInt(*client)));
                fields.push(("mode".into(), Json::Str(mode.code().into())));
                fields.push(("query".into(), Json::Str(query.clone())));
                fields.push(("k".into(), Json::UInt(*k)));
            }
            Step::AddDocs { lib, count, batch } => {
                fields.push(("lib".into(), Json::UInt(*lib)));
                fields.push(("count".into(), Json::UInt(*count)));
                fields.push(("batch".into(), Json::UInt(*batch)));
            }
            Step::SetFault { lib, fault } => {
                fields.push(("lib".into(), Json::UInt(*lib)));
                match fault {
                    FaultSpec::Down => fields.push(("fault".into(), Json::Str("down".into()))),
                    FaultSpec::Delay { ms } => {
                        fields.push(("fault".into(), Json::Str("delay".into())));
                        fields.push(("ms".into(), Json::UInt(*ms)));
                    }
                }
            }
            Step::ClearFaults | Step::HealthPoll | Step::CacheOff => {}
            Step::KillLib { lib }
            | Step::AddLib { lib }
            | Step::RemoveLib { lib }
            | Step::PromoteReplica { lib }
            | Step::CrashLib { lib }
            | Step::ReopenLib { lib } => fields.push(("lib".into(), Json::UInt(*lib))),
            Step::CacheOn { spec } => {
                fields.push(("results".into(), Json::UInt(spec.results)));
                fields.push(("shards".into(), Json::UInt(spec.shards)));
                fields.push(("terms".into(), Json::UInt(spec.terms)));
                fields.push(("doc_bytes".into(), Json::UInt(spec.doc_bytes)));
            }
            Step::Dispatch { mode } => {
                fields.push(("mode".into(), Json::Str(mode.code().into())));
            }
        }
        Json::Obj(fields)
    }

    fn from_json(value: &Json) -> Result<Step, String> {
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or("step missing \"op\"")?;
        let u64_field = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("step {op:?} missing integer {key:?}"))
        };
        let str_field = |key: &str| -> Result<&str, String> {
            value
                .get(key)
                .and_then(Json::as_str)
                .ok_or(format!("step {op:?} missing string {key:?}"))
        };
        Ok(match op {
            "query" => Step::Query {
                client: u64_field("client")?,
                mode: RunMode::from_code(str_field("mode")?)
                    .ok_or_else(|| format!("unknown mode {:?}", str_field("mode").unwrap()))?,
                query: str_field("query")?.to_string(),
                k: u64_field("k")?,
            },
            "add_docs" => Step::AddDocs {
                lib: u64_field("lib")?,
                count: u64_field("count")?,
                batch: u64_field("batch")?,
            },
            "set_fault" => Step::SetFault {
                lib: u64_field("lib")?,
                fault: match str_field("fault")? {
                    "down" => FaultSpec::Down,
                    "delay" => FaultSpec::Delay {
                        ms: u64_field("ms")?,
                    },
                    other => return Err(format!("unknown fault {other:?}")),
                },
            },
            "clear_faults" => Step::ClearFaults,
            "kill_lib" => Step::KillLib {
                lib: u64_field("lib")?,
            },
            "cache_on" => Step::CacheOn {
                spec: CacheSpec {
                    results: u64_field("results")?,
                    shards: u64_field("shards")?,
                    terms: u64_field("terms")?,
                    doc_bytes: u64_field("doc_bytes")?,
                },
            },
            "cache_off" => Step::CacheOff,
            "dispatch" => Step::Dispatch {
                mode: DispatchChoice::from_code(str_field("mode")?)
                    .ok_or_else(|| format!("unknown dispatch {:?}", str_field("mode").unwrap()))?,
            },
            "health_poll" => Step::HealthPoll,
            "add_lib" => Step::AddLib {
                lib: u64_field("lib")?,
            },
            "remove_lib" => Step::RemoveLib {
                lib: u64_field("lib")?,
            },
            "promote_replica" => Step::PromoteReplica {
                lib: u64_field("lib")?,
            },
            "crash_lib" => Step::CrashLib {
                lib: u64_field("lib")?,
            },
            "reopen_lib" => Step::ReopenLib {
                lib: u64_field("lib")?,
            },
            other => return Err(format!("unknown step op {other:?}")),
        })
    }
}

/// The largest replica group a shard may grow to: generated plans and
/// the runner keep live counts in `0..=MAX_REPLICAS` (0 only
/// transiently, between a last `remove_lib` and a healing `add_lib`).
pub const MAX_REPLICAS: u64 = 4;

/// A complete scenario: name, seeds and the step script.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Human-readable identifier (bugbase file stem).
    pub name: String,
    /// Master seed: churn documents and (for generated plans) the step
    /// stream derive from it via `teraphim_core::sim::derive_seed`.
    pub seed: u64,
    /// Seed for the synthetic corpus the fixture fleet is built from.
    pub corpus_seed: u64,
    /// Number of client sessions the TCP backend forks.
    pub clients: u64,
    /// Replicas per shard the fleet starts with (1..=4; 1 reproduces
    /// the pre-elastic fixed fleet). Membership steps move counts
    /// within that band at run time.
    pub replicas: u64,
    /// The script.
    pub steps: Vec<Step>,
}

impl Plan {
    /// An empty plan shell (used by the generator and tests).
    pub fn named(name: &str, seed: u64) -> Plan {
        Plan {
            name: name.to_string(),
            seed,
            corpus_seed: 33,
            clients: 2,
            replicas: 1,
            steps: Vec::new(),
        }
    }

    /// Serializes the plan as stable, committed-fixture-friendly JSON:
    /// one step per line, field order fixed.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"name\": {},\n",
            Json::Str(self.name.clone()).render()
        ));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"corpus_seed\": {},\n", self.corpus_seed));
        out.push_str(&format!("  \"clients\": {},\n", self.clients));
        out.push_str(&format!("  \"replicas\": {},\n", self.replicas));
        out.push_str("  \"steps\": [\n");
        for (i, step) in self.steps.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&step.to_json().render());
            if i + 1 < self.steps.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a plan from JSON.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn from_json(text: &str) -> Result<Plan, String> {
        let value = Json::parse(text)?;
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or("plan missing \"name\"")?
            .to_string();
        let u64_field = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("plan missing integer {key:?}"))
        };
        let steps = value
            .get("steps")
            .and_then(Json::as_arr)
            .ok_or("plan missing \"steps\" array")?
            .iter()
            .map(Step::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Plan {
            name,
            seed: u64_field("seed")?,
            corpus_seed: u64_field("corpus_seed")?,
            clients: u64_field("clients")?.max(1),
            // Optional for pre-elastic fixture compatibility.
            replicas: value
                .get("replicas")
                .and_then(Json::as_u64)
                .unwrap_or(1)
                .clamp(1, MAX_REPLICAS),
            steps,
        })
    }

    /// Number of query steps (the plan's observable surface).
    pub fn query_steps(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Query { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Plan {
        let mut plan = Plan::named("sample", 7);
        plan.steps = vec![
            Step::Query {
                client: 0,
                mode: RunMode::Cv,
                query: "cats \"and\" dogs\n".into(),
                k: 10,
            },
            Step::AddDocs {
                lib: 1,
                count: 2,
                batch: 0,
            },
            Step::SetFault {
                lib: 2,
                fault: FaultSpec::Delay { ms: 3 },
            },
            Step::SetFault {
                lib: 3,
                fault: FaultSpec::Down,
            },
            Step::ClearFaults,
            Step::KillLib { lib: 0 },
            Step::CacheOn {
                spec: CacheSpec::small(),
            },
            Step::CacheOff,
            Step::Dispatch {
                mode: DispatchChoice::Pipelined,
            },
            Step::HealthPoll,
            Step::AddLib { lib: 1 },
            Step::PromoteReplica { lib: 1 },
            Step::RemoveLib { lib: 1 },
            Step::CrashLib { lib: 2 },
            Step::ReopenLib { lib: 2 },
        ];
        plan
    }

    #[test]
    fn plans_round_trip_through_json() {
        let plan = sample();
        let text = plan.to_json();
        let back = Plan::from_json(&text).unwrap();
        assert_eq!(back, plan);
        // And the rendering is stable.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn every_step_kind_round_trips() {
        for step in sample().steps {
            let back = Step::from_json(&step.to_json()).unwrap();
            assert_eq!(back, step);
        }
    }

    #[test]
    fn plans_without_replicas_field_default_to_one() {
        let text = "{\"name\":\"old\",\"seed\":1,\"corpus_seed\":1,\"clients\":1,\"steps\":[]}";
        let plan = Plan::from_json(text).unwrap();
        assert_eq!(plan.replicas, 1, "pre-elastic fixtures stay parseable");
    }

    #[test]
    fn bad_plans_are_rejected() {
        for bad in [
            "{}",
            "{\"name\":\"x\",\"seed\":1,\"corpus_seed\":1,\"clients\":1,\"steps\":[{\"op\":\"nope\"}]}",
            "{\"name\":\"x\",\"seed\":1,\"corpus_seed\":1,\"clients\":1,\"steps\":[{\"op\":\"query\"}]}",
        ] {
            assert!(Plan::from_json(bad).is_err(), "{bad:?} should fail");
        }
    }
}
