//! Real execution backends: the in-process receptionist and the
//! multiplexed TCP serving pool.
//!
//! Both embody the elastic fleet the same way: every librarian slot
//! (shard) is a [`ReplicaGroup`] of 1..R content-identical replicas,
//! wrapped in a [`ChaosTransport`] so the plan's fault windows inject at
//! the same architectural point the simulator injects its fault plans —
//! between the receptionist's fan-out and the shard. Membership steps
//! mutate the groups at run time: joins rebuild the subcollection from
//! the backend's per-shard document ledger (the migration handoff,
//! adopting the shard's index epoch so epoch-keyed caches cannot tell
//! replicas apart), leaves retire the preferred replica first. Every
//! change is published to a shared [`RoutingTable`] whose version feeds
//! the receptionists' cache-generation path. Both backends also keep a
//! private mono-server collection so `MS` query steps have a baseline.

use std::sync::{Arc, Mutex};

use teraphim_core::{CacheConfig, Librarian, QuerySession, Receptionist, ServePool};
use teraphim_engine::Collection;
use teraphim_net::mux::{MuxPool, MuxTransport};
use teraphim_net::tcp::{TcpServer, TcpTransport};
use teraphim_net::{
    DispatchMode, InProcTransport, Message, ReplicaGroup, RoutingTable, ServerOptions, Service,
    Transport,
};
use teraphim_obs::{trace_traffic_sums, EventKind, MetricsRegistry, TraceSink};
use teraphim_store::{IndexStore, TempDir};
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

use crate::backend::{Accounting, Backend, Hit, QueryOutcome, TrafficTriple, CI};
use crate::chaos::{ChaosCell, ChaosState, ChaosTransport};
use crate::fixture::Fixture;
use crate::plan::{CacheSpec, DispatchChoice, FaultSpec, Plan, RunMode, MAX_REPLICAS};

fn to_chaos(fault: Option<FaultSpec>) -> ChaosState {
    match fault {
        None => ChaosState::Healthy,
        Some(FaultSpec::Down) => ChaosState::Down,
        Some(FaultSpec::Delay { ms }) => ChaosState::Delay(std::time::Duration::from_millis(ms)),
    }
}

fn to_dispatch(mode: DispatchChoice) -> DispatchMode {
    match mode {
        DispatchChoice::Sequential => DispatchMode::Sequential,
        DispatchChoice::Concurrent => DispatchMode::Concurrent,
        DispatchChoice::Pipelined => DispatchMode::Pipelined,
    }
}

fn to_cache_config(spec: CacheSpec) -> CacheConfig {
    CacheConfig {
        result_entries: spec.results as usize,
        result_shards: (spec.shards as usize).max(1),
        term_entries: spec.terms as usize,
        doc_bytes: spec.doc_bytes as usize,
    }
}

fn mono_collection(fixture: &Fixture) -> Collection {
    let all_docs: Vec<TrecDoc> = fixture
        .parts()
        .iter()
        .flat_map(|s| s.docs.iter().cloned())
        .collect();
    Collection::build("MS", Analyzer::default(), &all_docs)
}

fn mono_outcome(mono: &Collection, query: &str, k: usize) -> QueryOutcome {
    QueryOutcome {
        step: 0,
        hits: mono
            .ranked_query(query, k)
            .iter()
            .map(|s| Hit {
                lib: 0,
                doc: s.doc,
                score_bits: Some(s.score.to_bits()),
            })
            .collect(),
        failed: Vec::new(),
        error: None,
    }
}

fn coverage_outcome<T: Transport>(
    receptionist: &mut Receptionist<T>,
    mode: RunMode,
    query: &str,
    k: usize,
) -> QueryOutcome {
    let methodology = mode
        .methodology()
        .expect("MS is handled by the mono baseline");
    match receptionist.query_with_coverage(methodology, query, k) {
        Ok(answer) => QueryOutcome {
            step: 0,
            hits: answer
                .hits
                .iter()
                .map(|h| Hit {
                    lib: h.librarian as u64,
                    doc: h.doc,
                    score_bits: Some(h.score.to_bits()),
                })
                .collect(),
            failed: answer.coverage.failed.iter().map(|&l| l as u64).collect(),
            error: None,
        },
        Err(e) => QueryOutcome {
            step: 0,
            hits: Vec::new(),
            failed: Vec::new(),
            error: Some(crate::backend::normalize_error(&e)),
        },
    }
}

fn triple(stats: teraphim_net::TrafficStats) -> TrafficTriple {
    (stats.round_trips, stats.bytes_sent, stats.bytes_received)
}

/// A librarian service that can be shared between a server (or
/// transport) and the harness, so churn steps can append documents to
/// the live fleet.
#[derive(Clone)]
pub struct SharedLibrarian {
    lib: Arc<Mutex<Librarian>>,
}

impl SharedLibrarian {
    fn new(lib: Librarian) -> SharedLibrarian {
        SharedLibrarian {
            lib: Arc::new(Mutex::new(lib)),
        }
    }

    fn append(&self, docs: &[TrecDoc]) -> Result<(), String> {
        let mut guard = self.lib.lock().unwrap();
        guard
            .collection_mut()
            .append_documents(docs)
            .map_err(|e| format!("{e}"))?;
        guard.bump_epoch();
        Ok(())
    }

    /// Swaps the librarian behind every clone of this handle — the
    /// crash/reopen steps' "process replacement": servers and transports
    /// keep their connections, the service behind them is a new process
    /// image.
    fn replace(&self, lib: Librarian) {
        *self.lib.lock().unwrap() = lib;
    }
}

impl Service for SharedLibrarian {
    fn handle(&mut self, request: Message) -> Message {
        self.lib.lock().unwrap().handle(request)
    }
}

/// One shard's authoritative document ledger: the subcollection's full
/// document set and the index epoch that set corresponds to. Joining
/// replicas are rebuilt from it — the same bytes, the same build, the
/// same epoch, so a rebuilt replica is indistinguishable on the wire
/// from one that lived through every churn batch.
struct ShardState {
    name: String,
    docs: Vec<TrecDoc>,
    epoch: u64,
}

impl ShardState {
    fn from_fixture(fixture: &Fixture) -> Vec<ShardState> {
        fixture
            .parts()
            .iter()
            .map(|s| ShardState {
                name: s.name.clone(),
                docs: s.docs.clone(),
                epoch: 0,
            })
            .collect()
    }

    /// The migration handoff: build a fresh librarian over the ledger
    /// and stamp it with the shard's epoch and the fleet routing table.
    fn build_replica(&self, routing: &RoutingTable) -> SharedLibrarian {
        let mut lib = Librarian::build(&self.name, Analyzer::default(), &self.docs);
        lib.set_epoch(self.epoch);
        lib.set_routing_table(routing.clone());
        SharedLibrarian::new(lib)
    }
}

/// The durable side of one real backend: one [`IndexStore`] per shard
/// under a run-scoped temporary directory. Every churn batch is logged
/// to the shard's WAL *before* any replica sees it, so the store is
/// always at least as new as memory. A `crash_lib` step drops the store
/// handle (the "process" died holding it); `reopen_lib` recovers the
/// shard from disk alone — WAL replay into the last durable manifest —
/// and the differential check against the never-crashing sim backend
/// proves the recovered rankings and epoch are exactly what was lost.
struct FleetStores {
    root: TempDir,
    stores: Vec<Option<IndexStore>>,
}

impl FleetStores {
    fn create(label: &str, shards: &[ShardState]) -> FleetStores {
        let root = TempDir::new(label).expect("scenario store root");
        let stores = shards
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                let dir = root.path().join(format!("shard-{s:03}"));
                let (store, _) =
                    IndexStore::create(&dir, &shard.name, &Analyzer::default(), &shard.docs)
                        .expect("fresh shard store creates");
                Some(store)
            })
            .collect();
        FleetStores { root, stores }
    }

    /// Durably appends a churn batch to shard `lib`'s WAL. The runner
    /// never churns while any shard is crashed, so the handle is live.
    fn log_batch(&mut self, lib: usize, docs: &[TrecDoc]) -> Result<(), String> {
        self.stores[lib]
            .as_mut()
            .expect("store alive during add_docs")
            .log_batch(docs)
            .map(|_| ())
            .map_err(|e| format!("{e}"))
    }

    fn crash(&mut self, lib: usize) {
        self.stores[lib] = None;
    }

    /// Reopens shard `lib` from disk, returning the recovered
    /// collection's bytes and durable epoch. Serializing once and
    /// deserializing per replica keeps every rebuilt replica
    /// bit-identical to the recovery image.
    fn reopen(&mut self, lib: usize) -> (Vec<u8>, u64) {
        let dir = self.root.path().join(format!("shard-{lib:03}"));
        let (store, collection) = IndexStore::open(&dir).expect("crashed shard store reopens");
        let epoch = store.epoch();
        let bytes = collection.to_bytes();
        self.stores[lib] = Some(store);
        (bytes, epoch)
    }
}

/// The librarian a crashed shard answers with if recovery were ever
/// skipped: a one-document placeholder whose rankings cannot match any
/// real shard, so a missed reopen fails the differential loudly instead
/// of silently serving stale memory.
fn crashed_librarian(name: &str, routing: &RoutingTable) -> Librarian {
    let docs = vec![TrecDoc {
        docno: "CRASHED-0".to_string(),
        text: "volatile state lost in crash".to_string(),
    }];
    let mut lib = Librarian::build(name, Analyzer::default(), &docs);
    lib.set_routing_table(routing.clone());
    lib
}

/// Rebuilds one replica's librarian from a recovered collection image.
fn recovered_librarian(bytes: &[u8], epoch: u64, routing: &RoutingTable) -> Librarian {
    let collection = Collection::from_bytes(bytes).expect("recovered collection deserializes");
    let mut lib = Librarian::from_collection(collection);
    lib.set_epoch(epoch);
    lib.set_routing_table(routing.clone());
    lib
}

/// Rotates `group`'s preference to the next live replica after the
/// current preferred one, in membership order. Returns the promoted id.
fn next_preferred<T: Transport>(group: &ReplicaGroup<T>) -> Option<u32> {
    let ids = group.replica_ids();
    let current = group.preferred_id()?;
    let pos = ids.iter().position(|&id| id == current)?;
    Some(ids[(pos + 1) % ids.len()])
}

/// The in-process backend: one receptionist over chaos-wrapped replica
/// groups of in-process transports, same process, same thread.
pub struct InProcBackend {
    receptionist: Receptionist<ChaosTransport<ReplicaGroup<InProcTransport<SharedLibrarian>>>>,
    shards: Vec<ShardState>,
    stores: FleetStores,
    members: Vec<Vec<(u32, SharedLibrarian)>>,
    groups: Vec<ReplicaGroup<InProcTransport<SharedLibrarian>>>,
    cells: Vec<ChaosCell>,
    routing: RoutingTable,
    next_id: u32,
    mono: Collection,
    sink: TraceSink,
    registry: Arc<MetricsRegistry>,
    cache_spec: Option<CacheSpec>,
}

impl InProcBackend {
    /// Builds the fleet (with `plan.replicas` replicas per shard) and
    /// preprocesses CV and CI state.
    pub fn new(plan: &Plan) -> InProcBackend {
        let fixture = Fixture::for_plan(plan);
        let shards = ShardState::from_fixture(&fixture);
        let stores = FleetStores::create("scen-inproc", &shards);
        let routing = RoutingTable::new();
        let n = shards.len();
        let per_shard = plan.replicas.clamp(1, MAX_REPLICAS) as usize;
        let mut next_id = n as u32;
        let members: Vec<Vec<(u32, SharedLibrarian)>> = shards
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                (0..per_shard)
                    .map(|r| {
                        // The first replica keeps the shard's own index
                        // as its id, so a one-replica fleet reads like
                        // the pre-elastic fixed fleet.
                        let id = if r == 0 {
                            s as u32
                        } else {
                            next_id += 1;
                            next_id - 1
                        };
                        (id, shard.build_replica(&routing))
                    })
                    .collect()
            })
            .collect();
        let cells: Vec<ChaosCell> = (0..n).map(|_| ChaosCell::healthy()).collect();
        let groups: Vec<ReplicaGroup<InProcTransport<SharedLibrarian>>> = members
            .iter()
            .enumerate()
            .map(|(s, replicas)| {
                ReplicaGroup::new(
                    s as u32,
                    replicas
                        .iter()
                        .map(|(id, lib)| (*id, InProcTransport::new(lib.clone())))
                        .collect(),
                )
                .with_table(routing.clone())
            })
            .collect();
        let transports = groups
            .iter()
            .zip(&cells)
            .map(|(group, cell)| ChaosTransport::new(group.clone(), cell.clone()))
            .collect();
        let mut receptionist = Receptionist::new(transports, Analyzer::default());
        let sink = receptionist.enable_tracing();
        let registry = receptionist.enable_metrics();
        for group in &groups {
            let _ = group.clone().with_trace(sink.clone());
        }
        receptionist.set_routing_table(routing.clone());
        receptionist
            .enable_cv()
            .expect("healthy fleet preprocesses");
        receptionist
            .enable_ci(CI)
            .expect("healthy fleet preprocesses");
        InProcBackend {
            receptionist,
            mono: mono_collection(&fixture),
            shards,
            stores,
            members,
            groups,
            cells,
            routing,
            next_id,
            sink,
            registry,
            cache_spec: None,
        }
    }

    /// The fleet's routing table (for post-run inspection in tests).
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// Drains the backend's buffered traces (queries, preprocessing,
    /// migrations) — for golden-trace tests. Calling this mid-run steals
    /// traffic from the accounting summary; use on dedicated instances.
    pub fn take_traces(&self) -> Vec<teraphim_obs::QueryTrace> {
        self.sink.take_traces()
    }

    /// Drops cached results (coverage changed) without changing whether
    /// caching is on.
    fn flush_cache(&mut self) {
        if let Some(spec) = self.cache_spec {
            self.receptionist.disable_cache();
            self.receptionist.enable_cache(to_cache_config(spec));
        }
    }
}

impl Backend for InProcBackend {
    fn name(&self) -> &'static str {
        "inproc"
    }

    fn num_libs(&self) -> usize {
        self.groups.len()
    }

    fn query(&mut self, _client: u64, mode: RunMode, query: &str, k: usize) -> QueryOutcome {
        match mode {
            RunMode::Ms => mono_outcome(&self.mono, query, k),
            _ => coverage_outcome(&mut self.receptionist, mode, query, k),
        }
    }

    fn add_docs(&mut self, lib: usize, docs: &[TrecDoc]) -> Result<(), String> {
        // Write-ahead: the WAL records the batch before any replica
        // applies it, so a later crash can only lose what the fleet
        // never acknowledged.
        self.stores.log_batch(lib, docs)?;
        self.shards[lib].docs.extend_from_slice(docs);
        self.shards[lib].epoch += 1;
        for (_, replica) in &self.members[lib] {
            replica.append(docs)?;
        }
        self.mono
            .append_documents(docs)
            .map_err(|e| format!("{e}"))?;
        self.receptionist.enable_cv().map_err(|e| format!("{e}"))?;
        self.receptionist
            .enable_ci(CI)
            .map_err(|e| format!("{e}"))?;
        Ok(())
    }

    fn apply_fault(&mut self, lib: usize, fault: Option<FaultSpec>) {
        self.cells[lib].set(to_chaos(fault));
        self.flush_cache();
    }

    fn kill(&mut self, lib: usize) {
        self.cells[lib].set(ChaosState::Down);
        self.flush_cache();
    }

    fn add_lib(&mut self, lib: usize) {
        let id = self.next_id;
        self.next_id += 1;
        let replica = self.shards[lib].build_replica(&self.routing);
        // The handoff is a traced operation of its own: a `migrate`
        // trace carrying the index transfer (`Migrate`) and the
        // membership change (`Join`, recorded by the group).
        self.sink.record(EventKind::Begin {
            op: "migrate",
            methodology: None,
            query_id: 0,
            k: 0,
        });
        self.sink.record(EventKind::Migrate {
            librarian: lib as u32,
            docs: self.shards[lib].docs.len() as u64,
            epoch: self.shards[lib].epoch,
        });
        self.groups[lib].add_replica(id, InProcTransport::new(replica.clone()));
        self.sink.record(EventKind::End);
        self.members[lib].push((id, replica));
        self.flush_cache();
    }

    fn remove_lib(&mut self, lib: usize) {
        if let Some(id) = self.groups[lib].preferred_id() {
            self.groups[lib].remove_replica(id);
            self.members[lib].retain(|(rid, _)| *rid != id);
        }
        self.flush_cache();
    }

    fn promote_replica(&mut self, lib: usize) {
        if let Some(next) = next_preferred(&self.groups[lib]) {
            self.groups[lib].promote(next);
        }
        self.flush_cache();
    }

    fn crash(&mut self, lib: usize) {
        // The "process" dies: the store handle goes with it and every
        // replica's memory is genuinely lost, so a reopen that did not
        // actually recover from disk cannot pass the differential.
        self.stores.crash(lib);
        for (_, replica) in &self.members[lib] {
            replica.replace(crashed_librarian(&self.shards[lib].name, &self.routing));
        }
        self.apply_fault(lib, Some(FaultSpec::Down));
    }

    fn reopen(&mut self, lib: usize) {
        let (bytes, epoch) = self.stores.reopen(lib);
        assert_eq!(
            epoch, self.shards[lib].epoch,
            "recovered epoch must match the shard ledger"
        );
        for (_, replica) in &self.members[lib] {
            replica.replace(recovered_librarian(&bytes, epoch, &self.routing));
        }
        self.apply_fault(lib, None);
    }

    fn set_cache(&mut self, spec: Option<CacheSpec>) {
        self.cache_spec = spec;
        match spec {
            Some(s) => self.receptionist.enable_cache(to_cache_config(s)),
            None => self.receptionist.disable_cache(),
        }
    }

    fn set_dispatch(&mut self, mode: DispatchChoice) {
        self.receptionist.set_dispatch_mode(to_dispatch(mode));
    }

    fn health_poll(&mut self) {
        let _ = self.receptionist.fleet_health();
    }

    fn accounting(&mut self) -> Accounting {
        let sums = trace_traffic_sums(&self.sink.take_traces());
        let totals = self.registry.snapshot().traffic_totals();
        Accounting {
            transport: Some(triple(self.receptionist.traffic())),
            trace: (sums.messages_sent, sums.bytes_sent, sums.bytes_received),
            registry: Some((totals.round_trips, totals.bytes_sent, totals.bytes_received)),
            wire_cap: None,
            sends_blocked: false,
            health_polls: 0,
        }
    }
}

/// One live TCP replica: its shared service, its server, and the
/// multiplexed connection pool every session's transport rides on.
struct TcpReplica {
    id: u32,
    lib: SharedLibrarian,
    server: TcpServer,
    pool: Arc<MuxPool>,
}

fn spawn_replica(id: u32, shard: &ShardState, routing: &RoutingTable) -> TcpReplica {
    let lib = shard.build_replica(routing);
    let server = TcpServer::spawn_with(
        vec![lib.clone(), lib.clone()],
        "127.0.0.1:0",
        ServerOptions {
            workers: 2,
            queue_depth: 64,
        },
    )
    .expect("loopback server spawns");
    let pool = MuxPool::connect(server.addr(), 2, teraphim_net::TcpOptions::default())
        .expect("loopback connects");
    TcpReplica {
        id,
        lib,
        server,
        pool,
    }
}

/// The full-stack backend: one TCP server per replica, multiplexed
/// connections bundled into per-shard replica groups, and a
/// [`ServePool`] of forked sessions — one checked out per plan client
/// for the duration of the run (PR 6's serving architecture under
/// scripted load).
pub struct TcpBackend {
    replicas: Vec<Vec<TcpReplica>>,
    sessions: Vec<QuerySession<ChaosTransport<ReplicaGroup<MuxTransport>>>>,
    /// Each session owns its transports, so membership changes are
    /// applied to every session's group for the same shard in lockstep.
    session_groups: Vec<Vec<ReplicaGroup<MuxTransport>>>,
    shards: Vec<ShardState>,
    stores: FleetStores,
    cells: Vec<ChaosCell>,
    routing: RoutingTable,
    next_id: u32,
    mono: Collection,
    sink: TraceSink,
    registry: Arc<MetricsRegistry>,
    cache_spec: Option<CacheSpec>,
}

impl TcpBackend {
    /// Spawns the fleet (with `plan.replicas` servers per shard),
    /// preprocesses once on a prototype, and checks one pipelined
    /// session out of the pool per plan client.
    pub fn new(plan: &Plan) -> TcpBackend {
        let fixture = Fixture::for_plan(plan);
        let shards = ShardState::from_fixture(&fixture);
        let stores = FleetStores::create("scen-tcp", &shards);
        let routing = RoutingTable::new();
        let n = shards.len();
        let per_shard = plan.replicas.clamp(1, MAX_REPLICAS) as usize;
        let mut next_id = n as u32;
        let replicas: Vec<Vec<TcpReplica>> = shards
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                (0..per_shard)
                    .map(|r| {
                        let id = if r == 0 {
                            s as u32
                        } else {
                            next_id += 1;
                            next_id - 1
                        };
                        spawn_replica(id, shard, &routing)
                    })
                    .collect()
            })
            .collect();
        let cells: Vec<ChaosCell> = (0..n).map(|_| ChaosCell::healthy()).collect();

        let mut prototype = Receptionist::new(
            replicas
                .iter()
                .map(|group| {
                    TcpTransport::connect(group[0].server.addr()).expect("loopback connects")
                })
                .collect::<Vec<_>>(),
            Analyzer::default(),
        );
        prototype.enable_cv().expect("healthy fleet preprocesses");
        prototype.enable_ci(CI).expect("healthy fleet preprocesses");

        let sink = TraceSink::new();
        let registry = Arc::new(MetricsRegistry::new());
        sink.tee_metrics(Arc::clone(&registry));

        let clients = plan.clients.max(1) as usize;
        let mut session_groups: Vec<Vec<ReplicaGroup<MuxTransport>>> = Vec::new();
        let pool = ServePool::new(
            (0..clients)
                .map(|client| {
                    let groups: Vec<ReplicaGroup<MuxTransport>> = replicas
                        .iter()
                        .enumerate()
                        .map(|(s, shard_replicas)| {
                            let group = ReplicaGroup::new(
                                s as u32,
                                shard_replicas
                                    .iter()
                                    .map(|r| (r.id, MuxTransport::new(Arc::clone(&r.pool))))
                                    .collect(),
                            )
                            .with_trace(sink.clone());
                            if client == 0 {
                                // One session publishes membership; the
                                // others mirror it, so the table version
                                // moves once per fleet-wide change.
                                group.with_table(routing.clone())
                            } else {
                                group
                            }
                        })
                        .collect();
                    let mut session = prototype.fork(
                        groups
                            .iter()
                            .zip(&cells)
                            .map(|(group, cell)| ChaosTransport::new(group.clone(), cell.clone()))
                            .collect::<Vec<_>>(),
                    );
                    session.set_dispatch_mode(DispatchMode::Pipelined);
                    session.set_trace_sink(sink.clone());
                    session.set_routing_table(routing.clone());
                    session_groups.push(groups);
                    session
                })
                .collect(),
        );
        let sessions: Vec<QuerySession<ChaosTransport<ReplicaGroup<MuxTransport>>>> =
            (0..clients).map(|_| pool.session()).collect();

        TcpBackend {
            replicas,
            sessions,
            session_groups,
            mono: mono_collection(&fixture),
            shards,
            stores,
            cells,
            routing,
            next_id,
            sink,
            registry,
            cache_spec: None,
        }
    }

    fn flush_cache(&mut self) {
        if let Some(spec) = self.cache_spec {
            for session in &mut self.sessions {
                session.disable_cache();
                session.enable_cache(to_cache_config(spec));
            }
        }
    }

    /// The fleet's routing table (for post-run inspection in tests).
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// Drains the backend's buffered traces (queries, preprocessing,
    /// migrations) — for golden-trace tests. Calling this mid-run steals
    /// traffic from the accounting summary; use on dedicated instances.
    pub fn take_traces(&self) -> Vec<teraphim_obs::QueryTrace> {
        self.sink.take_traces()
    }

    /// Server-side traffic counters, summed over the fleet (includes
    /// prototype preprocessing; useful for inspecting runs in tests).
    pub fn server_traffic(&self) -> teraphim_net::TrafficStats {
        let mut total = teraphim_net::TrafficStats::default();
        for shard in &self.replicas {
            for replica in shard {
                total.absorb(&replica.server.traffic());
            }
        }
        total
    }
}

impl Backend for TcpBackend {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn num_libs(&self) -> usize {
        self.replicas.len()
    }

    fn query(&mut self, client: u64, mode: RunMode, query: &str, k: usize) -> QueryOutcome {
        match mode {
            RunMode::Ms => mono_outcome(&self.mono, query, k),
            _ => {
                let session = (client as usize) % self.sessions.len();
                coverage_outcome(&mut self.sessions[session], mode, query, k)
            }
        }
    }

    fn add_docs(&mut self, lib: usize, docs: &[TrecDoc]) -> Result<(), String> {
        // Write-ahead, as in the in-process backend: durable first.
        self.stores.log_batch(lib, docs)?;
        self.shards[lib].docs.extend_from_slice(docs);
        self.shards[lib].epoch += 1;
        for replica in &self.replicas[lib] {
            replica.lib.append(docs)?;
        }
        self.mono
            .append_documents(docs)
            .map_err(|e| format!("{e}"))?;
        // Forked sessions keep their own Arc'd CV/CI state: each one
        // must re-run preprocessing to observe the new epoch.
        for session in &mut self.sessions {
            session.enable_cv().map_err(|e| format!("{e}"))?;
            session.enable_ci(CI).map_err(|e| format!("{e}"))?;
        }
        Ok(())
    }

    fn apply_fault(&mut self, lib: usize, fault: Option<FaultSpec>) {
        self.cells[lib].set(to_chaos(fault));
        self.flush_cache();
    }

    fn kill(&mut self, lib: usize) {
        // The chaos cell is the kill switch: every session's transport
        // to this librarian refuses from now on and the runner never
        // clears it. The server objects stay alive so in-flight reader
        // threads shut down cleanly with the backend.
        self.cells[lib].set(ChaosState::Down);
        self.flush_cache();
    }

    fn add_lib(&mut self, lib: usize) {
        let id = self.next_id;
        self.next_id += 1;
        let replica = spawn_replica(id, &self.shards[lib], &self.routing);
        // Same `migrate` trace schema as the in-process backend; one
        // `Join` per session group (each session's membership moves).
        self.sink.record(EventKind::Begin {
            op: "migrate",
            methodology: None,
            query_id: 0,
            k: 0,
        });
        self.sink.record(EventKind::Migrate {
            librarian: lib as u32,
            docs: self.shards[lib].docs.len() as u64,
            epoch: self.shards[lib].epoch,
        });
        for groups in &self.session_groups {
            groups[lib].add_replica(id, MuxTransport::new(Arc::clone(&replica.pool)));
        }
        self.sink.record(EventKind::End);
        self.replicas[lib].push(replica);
        self.flush_cache();
    }

    fn remove_lib(&mut self, lib: usize) {
        if let Some(id) = self.session_groups[0][lib].preferred_id() {
            for groups in &self.session_groups {
                groups[lib].remove_replica(id);
            }
            // Dropping the TcpReplica closes its mux pool (the groups
            // just dropped the last transports riding it) and shuts the
            // server down.
            self.replicas[lib].retain(|r| r.id != id);
        }
        self.flush_cache();
    }

    fn promote_replica(&mut self, lib: usize) {
        if let Some(next) = next_preferred(&self.session_groups[0][lib]) {
            for groups in &self.session_groups {
                groups[lib].promote(next);
            }
        }
        self.flush_cache();
    }

    fn crash(&mut self, lib: usize) {
        // Servers and mux pools stay up (the harness is one OS
        // process), but the service behind every connection is swapped
        // for a placeholder: the shard's memory is gone and only the
        // on-disk store can bring it back.
        self.stores.crash(lib);
        for replica in &self.replicas[lib] {
            replica
                .lib
                .replace(crashed_librarian(&self.shards[lib].name, &self.routing));
        }
        self.apply_fault(lib, Some(FaultSpec::Down));
    }

    fn reopen(&mut self, lib: usize) {
        let (bytes, epoch) = self.stores.reopen(lib);
        assert_eq!(
            epoch, self.shards[lib].epoch,
            "recovered epoch must match the shard ledger"
        );
        for replica in &self.replicas[lib] {
            replica
                .lib
                .replace(recovered_librarian(&bytes, epoch, &self.routing));
        }
        self.apply_fault(lib, None);
    }

    fn set_cache(&mut self, spec: Option<CacheSpec>) {
        self.cache_spec = spec;
        for session in &mut self.sessions {
            match spec {
                Some(s) => session.enable_cache(to_cache_config(s)),
                None => session.disable_cache(),
            }
        }
    }

    fn set_dispatch(&mut self, mode: DispatchChoice) {
        for session in &mut self.sessions {
            session.set_dispatch_mode(to_dispatch(mode));
        }
    }

    fn health_poll(&mut self) {
        let _ = self.sessions[0].fleet_health();
    }

    fn accounting(&mut self) -> Accounting {
        let sums = trace_traffic_sums(&self.sink.take_traces());
        let totals = self.registry.snapshot().traffic_totals();
        let mut transport = teraphim_net::TrafficStats::default();
        for session in &self.sessions {
            transport.absorb(&session.traffic());
        }
        Accounting {
            transport: Some(triple(transport)),
            trace: (sums.messages_sent, sums.bytes_sent, sums.bytes_received),
            registry: Some((totals.round_trips, totals.bytes_sent, totals.bytes_received)),
            wire_cap: None,
            sends_blocked: false,
            health_polls: 0,
        }
    }
}
