//! Real execution backends: the in-process receptionist and the
//! multiplexed TCP serving pool.
//!
//! Both wrap every librarian transport in a [`ChaosTransport`] so the
//! plan's fault windows inject at the same architectural point the
//! simulator injects its fault plans — between the receptionist's
//! fan-out and the librarian — and both keep a private mono-server
//! collection so `MS` query steps have a baseline to run against.

use std::sync::{Arc, Mutex};

use teraphim_core::{CacheConfig, Librarian, QuerySession, Receptionist, ServePool};
use teraphim_engine::Collection;
use teraphim_net::mux::{MuxPool, MuxTransport};
use teraphim_net::tcp::{TcpServer, TcpTransport};
use teraphim_net::{DispatchMode, InProcTransport, Message, ServerOptions, Service, Transport};
use teraphim_obs::{trace_traffic_sums, MetricsRegistry, TraceSink};
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

use crate::backend::{Accounting, Backend, Hit, QueryOutcome, TrafficTriple, CI};
use crate::chaos::{ChaosCell, ChaosState, ChaosTransport};
use crate::fixture::Fixture;
use crate::plan::{CacheSpec, DispatchChoice, FaultSpec, Plan, RunMode};

fn to_chaos(fault: Option<FaultSpec>) -> ChaosState {
    match fault {
        None => ChaosState::Healthy,
        Some(FaultSpec::Down) => ChaosState::Down,
        Some(FaultSpec::Delay { ms }) => ChaosState::Delay(std::time::Duration::from_millis(ms)),
    }
}

fn to_dispatch(mode: DispatchChoice) -> DispatchMode {
    match mode {
        DispatchChoice::Sequential => DispatchMode::Sequential,
        DispatchChoice::Concurrent => DispatchMode::Concurrent,
        DispatchChoice::Pipelined => DispatchMode::Pipelined,
    }
}

fn to_cache_config(spec: CacheSpec) -> CacheConfig {
    CacheConfig {
        result_entries: spec.results as usize,
        result_shards: (spec.shards as usize).max(1),
        term_entries: spec.terms as usize,
        doc_bytes: spec.doc_bytes as usize,
    }
}

fn mono_collection(fixture: &Fixture) -> Collection {
    let all_docs: Vec<TrecDoc> = fixture
        .parts()
        .iter()
        .flat_map(|s| s.docs.iter().cloned())
        .collect();
    Collection::build("MS", Analyzer::default(), &all_docs)
}

fn mono_outcome(mono: &Collection, query: &str, k: usize) -> QueryOutcome {
    QueryOutcome {
        step: 0,
        hits: mono
            .ranked_query(query, k)
            .iter()
            .map(|s| Hit {
                lib: 0,
                doc: s.doc,
                score_bits: Some(s.score.to_bits()),
            })
            .collect(),
        failed: Vec::new(),
        error: None,
    }
}

fn coverage_outcome<T: Transport>(
    receptionist: &mut Receptionist<T>,
    mode: RunMode,
    query: &str,
    k: usize,
) -> QueryOutcome {
    let methodology = mode
        .methodology()
        .expect("MS is handled by the mono baseline");
    match receptionist.query_with_coverage(methodology, query, k) {
        Ok(answer) => QueryOutcome {
            step: 0,
            hits: answer
                .hits
                .iter()
                .map(|h| Hit {
                    lib: h.librarian as u64,
                    doc: h.doc,
                    score_bits: Some(h.score.to_bits()),
                })
                .collect(),
            failed: answer.coverage.failed.iter().map(|&l| l as u64).collect(),
            error: None,
        },
        Err(e) => QueryOutcome {
            step: 0,
            hits: Vec::new(),
            failed: Vec::new(),
            error: Some(crate::backend::normalize_error(&e)),
        },
    }
}

fn triple(stats: teraphim_net::TrafficStats) -> TrafficTriple {
    (stats.round_trips, stats.bytes_sent, stats.bytes_received)
}

/// A librarian service that can be shared between a server (or
/// transport) and the harness, so churn steps can append documents to
/// the live fleet.
#[derive(Clone)]
pub struct SharedLibrarian {
    lib: Arc<Mutex<Librarian>>,
}

impl SharedLibrarian {
    fn new(lib: Librarian) -> SharedLibrarian {
        SharedLibrarian {
            lib: Arc::new(Mutex::new(lib)),
        }
    }

    fn append(&self, docs: &[TrecDoc]) -> Result<(), String> {
        let mut guard = self.lib.lock().unwrap();
        guard
            .collection_mut()
            .append_documents(docs)
            .map_err(|e| format!("{e}"))?;
        guard.bump_epoch();
        Ok(())
    }
}

impl Service for SharedLibrarian {
    fn handle(&mut self, request: Message) -> Message {
        self.lib.lock().unwrap().handle(request)
    }
}

/// The in-process backend: one receptionist over chaos-wrapped
/// in-process transports, same process, same thread.
pub struct InProcBackend {
    receptionist: Receptionist<ChaosTransport<InProcTransport<SharedLibrarian>>>,
    libs: Vec<SharedLibrarian>,
    cells: Vec<ChaosCell>,
    mono: Collection,
    sink: TraceSink,
    registry: Arc<MetricsRegistry>,
    cache_spec: Option<CacheSpec>,
}

impl InProcBackend {
    /// Builds the fleet and preprocesses CV and CI state.
    pub fn new(plan: &Plan) -> InProcBackend {
        let fixture = Fixture::for_plan(plan);
        let libs: Vec<SharedLibrarian> = fixture
            .parts()
            .iter()
            .map(|s| SharedLibrarian::new(Librarian::build(&s.name, Analyzer::default(), &s.docs)))
            .collect();
        let cells: Vec<ChaosCell> = libs.iter().map(|_| ChaosCell::healthy()).collect();
        let transports = libs
            .iter()
            .zip(&cells)
            .map(|(lib, cell)| ChaosTransport::new(InProcTransport::new(lib.clone()), cell.clone()))
            .collect();
        let mut receptionist = Receptionist::new(transports, Analyzer::default());
        let sink = receptionist.enable_tracing();
        let registry = receptionist.enable_metrics();
        receptionist
            .enable_cv()
            .expect("healthy fleet preprocesses");
        receptionist
            .enable_ci(CI)
            .expect("healthy fleet preprocesses");
        InProcBackend {
            receptionist,
            mono: mono_collection(&fixture),
            libs,
            cells,
            sink,
            registry,
            cache_spec: None,
        }
    }

    /// Drops cached results (coverage changed) without changing whether
    /// caching is on.
    fn flush_cache(&mut self) {
        if let Some(spec) = self.cache_spec {
            self.receptionist.disable_cache();
            self.receptionist.enable_cache(to_cache_config(spec));
        }
    }
}

impl Backend for InProcBackend {
    fn name(&self) -> &'static str {
        "inproc"
    }

    fn num_libs(&self) -> usize {
        self.libs.len()
    }

    fn query(&mut self, _client: u64, mode: RunMode, query: &str, k: usize) -> QueryOutcome {
        match mode {
            RunMode::Ms => mono_outcome(&self.mono, query, k),
            _ => coverage_outcome(&mut self.receptionist, mode, query, k),
        }
    }

    fn add_docs(&mut self, lib: usize, docs: &[TrecDoc]) -> Result<(), String> {
        self.libs[lib].append(docs)?;
        self.mono
            .append_documents(docs)
            .map_err(|e| format!("{e}"))?;
        self.receptionist.enable_cv().map_err(|e| format!("{e}"))?;
        self.receptionist
            .enable_ci(CI)
            .map_err(|e| format!("{e}"))?;
        Ok(())
    }

    fn apply_fault(&mut self, lib: usize, fault: Option<FaultSpec>) {
        self.cells[lib].set(to_chaos(fault));
        self.flush_cache();
    }

    fn kill(&mut self, lib: usize) {
        self.cells[lib].set(ChaosState::Down);
        self.flush_cache();
    }

    fn set_cache(&mut self, spec: Option<CacheSpec>) {
        self.cache_spec = spec;
        match spec {
            Some(s) => self.receptionist.enable_cache(to_cache_config(s)),
            None => self.receptionist.disable_cache(),
        }
    }

    fn set_dispatch(&mut self, mode: DispatchChoice) {
        self.receptionist.set_dispatch_mode(to_dispatch(mode));
    }

    fn health_poll(&mut self) {
        let _ = self.receptionist.fleet_health();
    }

    fn accounting(&mut self) -> Accounting {
        let sums = trace_traffic_sums(&self.sink.take_traces());
        let totals = self.registry.snapshot().traffic_totals();
        Accounting {
            transport: Some(triple(self.receptionist.traffic())),
            trace: (sums.messages_sent, sums.bytes_sent, sums.bytes_received),
            registry: Some((totals.round_trips, totals.bytes_sent, totals.bytes_received)),
            wire_cap: None,
            sends_blocked: false,
            health_polls: 0,
        }
    }
}

/// The full-stack backend: one TCP server per librarian, multiplexed
/// connections, and a [`ServePool`] of forked sessions — one checked
/// out per plan client for the duration of the run (PR 6's serving
/// architecture under scripted load).
pub struct TcpBackend {
    servers: Vec<TcpServer>,
    sessions: Vec<QuerySession<ChaosTransport<MuxTransport>>>,
    libs: Vec<SharedLibrarian>,
    cells: Vec<ChaosCell>,
    mono: Collection,
    sink: TraceSink,
    registry: Arc<MetricsRegistry>,
    cache_spec: Option<CacheSpec>,
}

impl TcpBackend {
    /// Spawns the fleet, preprocesses once on a prototype, and checks
    /// one pipelined session out of the pool per plan client.
    pub fn new(plan: &Plan) -> TcpBackend {
        let fixture = Fixture::for_plan(plan);
        let libs: Vec<SharedLibrarian> = fixture
            .parts()
            .iter()
            .map(|s| SharedLibrarian::new(Librarian::build(&s.name, Analyzer::default(), &s.docs)))
            .collect();
        let servers: Vec<TcpServer> = libs
            .iter()
            .map(|lib| {
                TcpServer::spawn_with(
                    vec![lib.clone(), lib.clone()],
                    "127.0.0.1:0",
                    ServerOptions {
                        workers: 2,
                        queue_depth: 64,
                    },
                )
                .expect("loopback server spawns")
            })
            .collect();
        let cells: Vec<ChaosCell> = libs.iter().map(|_| ChaosCell::healthy()).collect();

        let mut prototype = Receptionist::new(
            servers
                .iter()
                .map(|s| TcpTransport::connect(s.addr()).expect("loopback connects"))
                .collect::<Vec<_>>(),
            Analyzer::default(),
        );
        prototype.enable_cv().expect("healthy fleet preprocesses");
        prototype.enable_ci(CI).expect("healthy fleet preprocesses");

        let pools: Vec<Arc<MuxPool>> = servers
            .iter()
            .map(|s| {
                MuxPool::connect(s.addr(), 2, teraphim_net::TcpOptions::default())
                    .expect("loopback connects")
            })
            .collect();

        let sink = TraceSink::new();
        let registry = Arc::new(MetricsRegistry::new());
        sink.tee_metrics(Arc::clone(&registry));

        let clients = plan.clients.max(1) as usize;
        let pool = ServePool::new(
            (0..clients)
                .map(|_| {
                    let mut session = prototype.fork(
                        pools
                            .iter()
                            .zip(&cells)
                            .map(|(p, cell)| {
                                ChaosTransport::new(MuxTransport::new(Arc::clone(p)), cell.clone())
                            })
                            .collect::<Vec<_>>(),
                    );
                    session.set_dispatch_mode(DispatchMode::Pipelined);
                    session.set_trace_sink(sink.clone());
                    session
                })
                .collect(),
        );
        let sessions: Vec<QuerySession<ChaosTransport<MuxTransport>>> =
            (0..clients).map(|_| pool.session()).collect();

        TcpBackend {
            servers,
            sessions,
            mono: mono_collection(&fixture),
            libs,
            cells,
            sink,
            registry,
            cache_spec: None,
        }
    }

    fn flush_cache(&mut self) {
        if let Some(spec) = self.cache_spec {
            for session in &mut self.sessions {
                session.disable_cache();
                session.enable_cache(to_cache_config(spec));
            }
        }
    }

    /// Server-side traffic counters, summed over the fleet (includes
    /// prototype preprocessing; useful for inspecting runs in tests).
    pub fn server_traffic(&self) -> teraphim_net::TrafficStats {
        let mut total = teraphim_net::TrafficStats::default();
        for server in &self.servers {
            total.absorb(&server.traffic());
        }
        total
    }
}

impl Backend for TcpBackend {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn num_libs(&self) -> usize {
        self.libs.len()
    }

    fn query(&mut self, client: u64, mode: RunMode, query: &str, k: usize) -> QueryOutcome {
        match mode {
            RunMode::Ms => mono_outcome(&self.mono, query, k),
            _ => {
                let session = (client as usize) % self.sessions.len();
                coverage_outcome(&mut self.sessions[session], mode, query, k)
            }
        }
    }

    fn add_docs(&mut self, lib: usize, docs: &[TrecDoc]) -> Result<(), String> {
        self.libs[lib].append(docs)?;
        self.mono
            .append_documents(docs)
            .map_err(|e| format!("{e}"))?;
        // Forked sessions keep their own Arc'd CV/CI state: each one
        // must re-run preprocessing to observe the new epoch.
        for session in &mut self.sessions {
            session.enable_cv().map_err(|e| format!("{e}"))?;
            session.enable_ci(CI).map_err(|e| format!("{e}"))?;
        }
        Ok(())
    }

    fn apply_fault(&mut self, lib: usize, fault: Option<FaultSpec>) {
        self.cells[lib].set(to_chaos(fault));
        self.flush_cache();
    }

    fn kill(&mut self, lib: usize) {
        // The chaos cell is the kill switch: every session's transport
        // to this librarian refuses from now on and the runner never
        // clears it. The server object stays alive so in-flight reader
        // threads shut down cleanly with the backend.
        self.cells[lib].set(ChaosState::Down);
        self.flush_cache();
    }

    fn set_cache(&mut self, spec: Option<CacheSpec>) {
        self.cache_spec = spec;
        for session in &mut self.sessions {
            match spec {
                Some(s) => session.enable_cache(to_cache_config(s)),
                None => session.disable_cache(),
            }
        }
    }

    fn set_dispatch(&mut self, mode: DispatchChoice) {
        for session in &mut self.sessions {
            session.set_dispatch_mode(to_dispatch(mode));
        }
    }

    fn health_poll(&mut self) {
        let _ = self.sessions[0].fleet_health();
    }

    fn accounting(&mut self) -> Accounting {
        let sums = trace_traffic_sums(&self.sink.take_traces());
        let totals = self.registry.snapshot().traffic_totals();
        let mut transport = teraphim_net::TrafficStats::default();
        for session in &self.sessions {
            transport.absorb(&session.traffic());
        }
        Accounting {
            transport: Some(triple(transport)),
            trace: (sums.messages_sent, sums.bytes_sent, sums.bytes_received),
            registry: Some((totals.round_trips, totals.bytes_sent, totals.bytes_received)),
            wire_cap: None,
            sends_blocked: false,
            health_polls: 0,
        }
    }
}
