//! Automatic plan shrinking: ddmin over plan steps.
//!
//! Given a failing plan and the [`Failure`] it produced, the shrinker
//! searches for a minimal step subset that still violates the *same
//! property* (matching [`Failure::same_property`], so a plan that
//! merely fails differently is not accepted). Shrinking only ever
//! removes steps — it never reorders or edits them — so every candidate
//! is a subsequence of the original plan, and plan semantics that
//! depend on step *content* (seeded churn batches, literal query text)
//! are untouched.

use std::io;
use std::path::{Path, PathBuf};

use crate::check::Failure;
use crate::plan::Plan;

/// The outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized plan (possibly the input, if nothing was
    /// removable).
    pub plan: Plan,
    /// The failure the minimized plan produces.
    pub failure: Failure,
    /// Candidate plans checked.
    pub checks: usize,
}

/// Minimizes `plan` against `check`, keeping only candidates whose
/// failure matches `target` by property.
///
/// `check` returns `None` when a candidate passes. `max_checks` bounds
/// the total number of candidate executions, so shrinking always
/// terminates even when every subset fails (each accepted candidate is
/// strictly smaller, and each rejected candidate costs one bounded
/// check).
pub fn shrink_plan<F>(
    plan: &Plan,
    target: &Failure,
    mut check: F,
    max_checks: usize,
) -> ShrinkResult
where
    F: FnMut(&Plan) -> Option<Failure>,
{
    let mut current = plan.clone();
    let mut failure = target.clone();
    let mut checks = 0usize;
    let mut granularity = 2usize;

    while current.steps.len() >= 2 && checks < max_checks {
        let len = current.steps.len();
        let chunk = len.div_ceil(granularity.min(len));
        let mut shrunk = false;
        let mut start = 0;
        while start < current.steps.len() && checks < max_checks {
            let end = (start + chunk).min(current.steps.len());
            let mut steps = current.steps[..start].to_vec();
            steps.extend_from_slice(&current.steps[end..]);
            if steps.is_empty() {
                start = end;
                continue;
            }
            let mut candidate = current.clone();
            candidate.steps = steps;
            checks += 1;
            match check(&candidate) {
                Some(f) if f.same_property(target) => {
                    current = candidate;
                    failure = f;
                    shrunk = true;
                    // Keep scanning from the same offset: the steps
                    // that moved into this window are untried.
                }
                _ => start = end,
            }
        }
        if !shrunk {
            if chunk == 1 {
                break; // single-step granularity and nothing removable
            }
            granularity = (granularity * 2).min(current.steps.len());
        } else {
            granularity = granularity.max(2).min(current.steps.len().max(2));
        }
    }

    ShrinkResult {
        plan: current,
        failure,
        checks,
    }
}

/// Writes `plan` into the bugbase directory as `<name>.json`, creating
/// the directory if needed. Returns the written path. The file is a
/// complete, self-contained plan replayable with
/// `teraphim sim --plan <file>`.
pub fn write_bugbase(dir: &Path, plan: &Plan) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", sanitize(&plan.name)));
    std::fs::write(&path, plan.to_json())?;
    Ok(path)
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "plan".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{RunMode, Step};

    fn plan_with(marks: &[bool]) -> Plan {
        // `true` steps are "relevant": a query for "bug"; `false` steps
        // are noise the shrinker should strip.
        let mut plan = Plan::named("shrinky", 3);
        plan.steps = marks
            .iter()
            .map(|&relevant| Step::Query {
                client: 0,
                mode: RunMode::Cn,
                query: if relevant { "bug" } else { "noise" }.to_string(),
                k: 10,
            })
            .collect();
        plan
    }

    fn bug_count(plan: &Plan) -> usize {
        plan.steps
            .iter()
            .filter(|s| matches!(s, Step::Query { query, .. } if query == "bug"))
            .count()
    }

    /// Fails whenever at least `need` "bug" queries are present.
    fn checker(need: usize) -> impl FnMut(&Plan) -> Option<Failure> {
        move |plan: &Plan| {
            if bug_count(plan) >= need {
                Some(Failure {
                    property: "test:bug".to_string(),
                    step: None,
                    message: format!("{} bug steps", bug_count(plan)),
                })
            } else {
                None
            }
        }
    }

    #[test]
    fn shrinks_to_the_single_relevant_step() {
        let plan = plan_with(&[
            false, false, true, false, false, false, false, false, false, false,
        ]);
        let target = checker(1)(&plan).unwrap();
        let result = shrink_plan(&plan, &target, checker(1), 10_000);
        assert_eq!(result.plan.steps.len(), 1);
        assert_eq!(bug_count(&result.plan), 1);
        assert!(result.failure.same_property(&target));
    }

    #[test]
    fn keeps_interacting_steps_together() {
        // Two bug steps are both required: the minimum is exactly 2.
        let plan = plan_with(&[
            true, false, false, false, true, false, false, false, false, false, false, false,
        ]);
        let target = checker(2)(&plan).unwrap();
        let result = shrink_plan(&plan, &target, checker(2), 10_000);
        assert_eq!(result.plan.steps.len(), 2);
        assert_eq!(bug_count(&result.plan), 2);
    }

    #[test]
    fn rejects_different_property_failures() {
        // The checker switches property once the plan gets small: the
        // shrinker must not accept those candidates.
        let plan = plan_with(&[true, false, true, false, true, false]);
        let target = Failure {
            property: "test:big".to_string(),
            step: None,
            message: String::new(),
        };
        let check = |p: &Plan| {
            Some(Failure {
                property: if p.steps.len() >= 4 {
                    "test:big".to_string()
                } else {
                    "test:small".to_string()
                },
                step: None,
                message: String::new(),
            })
        };
        let result = shrink_plan(&plan, &target, check, 10_000);
        assert!(result.plan.steps.len() >= 4, "small plans fail differently");
        assert_eq!(result.failure.property, "test:big");
    }

    #[test]
    fn bugbase_round_trips() {
        let dir = std::env::temp_dir().join(format!("scenario-bugbase-{}", std::process::id()));
        let plan = plan_with(&[true]);
        let path = write_bugbase(&dir, &plan).unwrap();
        let back = Plan::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, plan);
        std::fs::remove_dir_all(&dir).ok();
    }
}
