//! The calibrated cost model.
//!
//! Constants approximate the paper's 1997-era testbed (SPARC 10/20
//! workstations, 10 Mbit ethernet, commodity SCSI disks, trans-Pacific
//! Internet). Absolute values only set the scale of Tables 3/4; the
//! *orderings and ratios* the reproduction targets come from the resource
//! structure in [`crate::topology`]. Every constant lives here so that
//! ablation sweeps can vary them.

/// Cost constants for the simulated environment.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Average disk seek + rotational delay, seconds.
    pub disk_seek: f64,
    /// Sustained disk transfer rate, bytes/second.
    pub disk_bandwidth: f64,
    /// CPU time to decode and score one compressed posting, seconds.
    pub cpu_per_posting: f64,
    /// CPU time per candidate in sort/merge operations, seconds.
    pub cpu_per_merge_item: f64,
    /// Fixed per-query CPU overhead (parsing, vocabulary lookup), seconds.
    pub cpu_query_overhead: f64,
    /// CPU time to decompress one byte of document text, seconds.
    pub cpu_per_doc_byte: f64,
    /// Protocol overhead added to every message, bytes (headers,
    /// framing, TCP/IP).
    pub msg_overhead_bytes: usize,
    /// Latency of a same-machine (IPC) message, seconds.
    pub ipc_latency: f64,
    /// Bandwidth of a same-machine transfer, bytes/second.
    pub ipc_bandwidth: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            disk_seek: 0.010,        // 10 ms average seek, 1997 SCSI
            disk_bandwidth: 2.0e6,   // 2 MB/s sustained
            cpu_per_posting: 2.0e-6, // ~0.5 M postings/s on a SPARC 10
            cpu_per_merge_item: 1.0e-6,
            cpu_query_overhead: 0.050, // vocabulary lookups, setup
            cpu_per_doc_byte: 0.2e-6,  // ~5 MB/s decompression
            msg_overhead_bytes: 64,
            ipc_latency: 50.0e-6,
            ipc_bandwidth: 50.0e6,
        }
    }
}

impl CostModel {
    /// The cost model used by the table reproductions.
    ///
    /// The synthetic corpus is ~50× smaller than TREC disk 2, so a
    /// hardware-faithful CPU constant would make every configuration
    /// complete in milliseconds and the disk/network structure would
    /// drown in fixed overheads. Scaling `cpu_per_posting` by the corpus
    /// ratio (2 µs → 100 µs) restores the paper's balance between CPU,
    /// disk and network — equivalently, it simulates the original corpus
    /// on the original SPARC at 1/50 scale. Orderings and ratios, which
    /// are what the reproduction targets, are preserved; absolute
    /// seconds land near the paper's Tables 3/4.
    pub fn paper_scale() -> CostModel {
        CostModel {
            cpu_per_posting: 100.0e-6,
            cpu_per_merge_item: 50.0e-6,
            cpu_per_doc_byte: 10.0e-6,
            ..CostModel::default()
        }
    }

    /// CPU seconds to decode and score `postings` postings.
    pub fn postings_cpu(&self, postings: u64) -> f64 {
        self.cpu_query_overhead + postings as f64 * self.cpu_per_posting
    }

    /// CPU seconds to sort/merge `items` scored entries.
    pub fn merge_cpu(&self, items: u64) -> f64 {
        items as f64 * self.cpu_per_merge_item
    }

    /// CPU seconds to decompress `bytes` of document text.
    pub fn decompress_cpu(&self, bytes: usize) -> f64 {
        bytes as f64 * self.cpu_per_doc_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive_and_sane() {
        let c = CostModel::default();
        assert!(c.disk_seek > 0.0 && c.disk_seek < 0.1);
        assert!(c.disk_bandwidth > 1e5);
        assert!(c.cpu_per_posting > 0.0 && c.cpu_per_posting < 1e-3);
        assert!(c.ipc_latency < 1e-3);
    }

    #[test]
    fn postings_cpu_is_affine() {
        let c = CostModel::default();
        let base = c.postings_cpu(0);
        let thousand = c.postings_cpu(1000);
        assert!((thousand - base - 1000.0 * c.cpu_per_posting).abs() < 1e-12);
    }

    #[test]
    fn helper_costs_scale_linearly() {
        let c = CostModel::default();
        assert_eq!(c.merge_cpu(0), 0.0);
        assert!((c.merge_cpu(2000) - 2.0 * c.merge_cpu(1000)).abs() < 1e-15);
        assert!((c.decompress_cpu(4096) - 2.0 * c.decompress_cpu(2048)).abs() < 1e-15);
    }

    #[test]
    fn a_seek_dominates_small_transfers() {
        // Reading a short inverted list is seek-bound: that is why the
        // paper notes "one of the major costs ... is accessing the
        // vocabulary and fetching the inverted lists ... repeated at each
        // librarian".
        let c = CostModel::default();
        let small_transfer = 4096.0 / c.disk_bandwidth;
        assert!(c.disk_seek > small_transfer);
    }
}
