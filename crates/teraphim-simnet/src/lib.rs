//! Discrete-event (virtual-time) simulation of the paper's hardware
//! configurations.
//!
//! Tables 3 and 4 of the paper report per-query elapsed times in four
//! configurations — mono-disk, multi-disk, LAN and WAN — whose relative
//! behaviour is governed by three resource classes:
//!
//! * **disks** — seek + transfer; on the mono-disk machine the
//!   librarians "interfere with each other by repositioning the disk head
//!   unpredictably", modelled as FCFS contention on one disk resource;
//! * **CPUs** — posting decode/score cost, merge cost; mono/multi-disk
//!   configurations share one four-processor machine;
//! * **links** — per-message latency plus bandwidth-limited
//!   serialization; the LAN shares one 10 Mbit ethernet; the WAN uses the
//!   measured round-trip times of Table 2.
//!
//! The simulator is a deterministic *virtual-time resource calendar*:
//! each resource hands out FCFS reservations, so the completion time of a
//! query plan emerges from `reserve` calls without wall-clock execution.
//! The TERAPHIM drivers in `teraphim-core` replay the exact protocol
//! steps (using real byte counts from `teraphim-net`) against these
//! resources.
//!
//! # Examples
//!
//! ```
//! use teraphim_simnet::{CostModel, SimNetwork, Topology};
//!
//! let topo = Topology::wan();
//! let mut net = SimNetwork::new(&topo, CostModel::default());
//! // Round-trip a 100-byte message to the Israel site (librarian 3).
//! let arrive = net.send_to_librarian(3, 0.0, 100);
//! let back = net.send_to_receptionist(3, arrive, 100);
//! assert!(back >= net.ping(3));
//! ```

pub mod cost;
pub mod resources;
pub mod topology;

pub use cost::CostModel;
pub use resources::{CpuPool, Fcfs};
pub use topology::{Machine, Placement, Topology};

/// Simulated time in seconds from the start of the experiment.
pub type SimTime = f64;

/// The live resource state for one simulated configuration.
///
/// All methods take a *ready time* (when the work could start) and
/// return the *completion time*, reserving capacity in between. Replaying
/// a query plan in causal order therefore yields the same elapsed time a
/// discrete-event engine would compute.
#[derive(Debug)]
pub struct SimNetwork {
    cost: CostModel,
    /// One CPU pool per machine.
    cpus: Vec<CpuPool>,
    /// One FCFS queue per (machine, disk).
    disks: Vec<Vec<Fcfs>>,
    /// Per-machine link serialization (towards receptionist).
    links: Vec<Fcfs>,
    /// The shared-medium resource (classic ethernet), if any.
    shared_medium: Option<Fcfs>,
    topo_receptionist: usize,
    placements: Vec<Placement>,
}

impl SimNetwork {
    /// Instantiates fresh resource state for a topology.
    pub fn new(topo: &Topology, cost: CostModel) -> Self {
        let cpus = topo
            .machines
            .iter()
            .map(|m| CpuPool::new(m.cpus.max(1)))
            .collect();
        let disks = topo
            .machines
            .iter()
            .map(|m| (0..m.disks.max(1)).map(|_| Fcfs::new()).collect())
            .collect();
        let links = topo.machines.iter().map(|_| Fcfs::new()).collect();
        SimNetwork {
            cost,
            cpus,
            disks,
            links,
            shared_medium: topo.shared_medium_bandwidth.map(Fcfs::with_tag),
            topo_receptionist: topo.receptionist,
            placements: topo.librarians.clone(),
        }
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Number of librarians in the configuration.
    pub fn num_librarians(&self) -> usize {
        self.placements.len()
    }

    /// One-way message from receptionist to librarian `lib`: completion =
    /// ready + serialization (possibly contended) + propagation (rtt/2).
    pub fn send_to_librarian(&mut self, lib: usize, ready: SimTime, bytes: usize) -> SimTime {
        self.transfer(lib, ready, bytes)
    }

    /// One-way message from librarian `lib` back to the receptionist.
    pub fn send_to_receptionist(&mut self, lib: usize, ready: SimTime, bytes: usize) -> SimTime {
        self.transfer(lib, ready, bytes)
    }

    fn transfer(&mut self, lib: usize, ready: SimTime, bytes: usize) -> SimTime {
        let total_bytes = bytes + self.cost.msg_overhead_bytes;
        let p = self.placements[lib];
        if p.machine == self.topo_receptionist {
            // IPC: negligible latency, memory-speed copy.
            return ready + self.cost.ipc_latency + total_bytes as f64 / self.cost.ipc_bandwidth;
        }
        let after_serialize = match &mut self.shared_medium {
            // Classic ethernet: one transmission at a time on the cable,
            // at the cable's bandwidth.
            Some(medium) => {
                let serialize = total_bytes as f64 / medium.tag();
                medium.reserve(ready, serialize)
            }
            None => {
                let serialize = total_bytes as f64 / p.bandwidth;
                self.links[p.machine].reserve(ready, serialize)
            }
        };
        after_serialize + p.rtt / 2.0
    }

    /// A disk read at librarian `lib`: `seeks` head repositions plus a
    /// transfer of `bytes`, contending with whatever else uses that disk.
    pub fn disk_read(&mut self, lib: usize, ready: SimTime, bytes: usize, seeks: u32) -> SimTime {
        let p = self.placements[lib];
        self.disk_read_at(p.machine, p.disk, ready, bytes, seeks)
    }

    /// A disk read on the receptionist's machine (the central index of
    /// the CI method lives there, on its first disk).
    pub fn receptionist_disk_read(&mut self, ready: SimTime, bytes: usize, seeks: u32) -> SimTime {
        self.disk_read_at(self.topo_receptionist, 0, ready, bytes, seeks)
    }

    fn disk_read_at(
        &mut self,
        machine: usize,
        disk: usize,
        ready: SimTime,
        bytes: usize,
        seeks: u32,
    ) -> SimTime {
        let service =
            f64::from(seeks) * self.cost.disk_seek + bytes as f64 / self.cost.disk_bandwidth;
        self.disks[machine][disk].reserve(ready, service)
    }

    /// CPU work at librarian `lib` for `seconds` of service time.
    pub fn cpu(&mut self, lib: usize, ready: SimTime, seconds: f64) -> SimTime {
        let machine = self.placements[lib].machine;
        self.cpus[machine].reserve(ready, seconds)
    }

    /// CPU work on the receptionist's machine.
    pub fn receptionist_cpu(&mut self, ready: SimTime, seconds: f64) -> SimTime {
        self.cpus[self.topo_receptionist].reserve(ready, seconds)
    }

    /// Total CPU service time charged across all machines — the paper's
    /// "use of resources" axis ("an indication ... of the overall query
    /// throughput possible with the system when it is operating at
    /// capacity").
    pub fn total_cpu_busy(&self) -> f64 {
        self.cpus.iter().map(CpuPool::busy_time).sum()
    }

    /// Total disk service time charged across all disks.
    pub fn total_disk_busy(&self) -> f64 {
        self.disks
            .iter()
            .flat_map(|d| d.iter().map(Fcfs::busy_time))
            .sum()
    }

    /// Total link serialization time charged (shared medium included).
    pub fn total_link_busy(&self) -> f64 {
        self.links.iter().map(Fcfs::busy_time).sum::<f64>()
            + self.shared_medium.as_ref().map_or(0.0, Fcfs::busy_time)
    }

    /// The round-trip time a `ping` to librarian `lib`'s site would
    /// measure (Table 2 reproduction).
    pub fn ping(&self, lib: usize) -> f64 {
        let p = self.placements[lib];
        if p.machine == self.topo_receptionist {
            2.0 * self.cost.ipc_latency
        } else {
            p.rtt
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_machine_transfer_is_cheap() {
        let topo = Topology::mono_disk(4);
        let mut net = SimNetwork::new(&topo, CostModel::default());
        let t = net.send_to_librarian(0, 0.0, 1000);
        assert!(t < 0.001, "IPC took {t}");
    }

    #[test]
    fn wan_transfer_pays_propagation() {
        let topo = Topology::wan();
        let mut net = SimNetwork::new(&topo, CostModel::default());
        let t = net.send_to_librarian(3, 0.0, 10);
        assert!(t >= net.ping(3) / 2.0, "t={t}");
    }

    #[test]
    fn shared_ethernet_serializes_concurrent_sends() {
        let topo = Topology::lan();
        let mut net = SimNetwork::new(&topo, CostModel::default());
        let bytes = 125_000; // 0.1 s at 10 Mbit/s
        let overhead = net.cost().msg_overhead_bytes;
        // Librarians 0 (AP) and 3 (ZIFF) are on remote machines in the
        // LAN preset (1/FR is co-located with the receptionist).
        let t1 = net.send_to_librarian(0, 0.0, bytes);
        let t2 = net.send_to_librarian(3, 0.0, bytes);
        let serialize = (bytes + overhead) as f64 / topo.shared_medium_bandwidth.unwrap();
        assert!(t1 >= serialize);
        assert!(t2 >= 2.0 * serialize, "t2={t2} serialize={serialize}");
    }

    #[test]
    fn wan_links_do_not_interfere_across_sites() {
        let topo = Topology::wan();
        let mut net = SimNetwork::new(&topo, CostModel::default());
        let a = net.send_to_librarian(0, 0.0, 1_000);
        let mut fresh = SimNetwork::new(&topo, CostModel::default());
        let b_alone = fresh.send_to_librarian(1, 0.0, 1_000);
        let b = net.send_to_librarian(1, 0.0, 1_000);
        assert_eq!(b, b_alone);
        assert!(a > 0.0);
    }

    #[test]
    fn mono_disk_contends_multi_disk_does_not() {
        let cost = CostModel::default();
        let mono = Topology::mono_disk(4);
        let multi = Topology::multi_disk(4);
        let mut mono_net = SimNetwork::new(&mono, cost.clone());
        let mut multi_net = SimNetwork::new(&multi, cost);
        let mono_done: Vec<SimTime> = (0..4)
            .map(|lib| mono_net.disk_read(lib, 0.0, 1 << 20, 1))
            .collect();
        let multi_done: Vec<SimTime> = (0..4)
            .map(|lib| multi_net.disk_read(lib, 0.0, 1 << 20, 1))
            .collect();
        let mono_max = mono_done.iter().cloned().fold(0.0, f64::max);
        let multi_max = multi_done.iter().cloned().fold(0.0, f64::max);
        assert!(
            mono_max > 3.0 * multi_max,
            "mono {mono_max} vs multi {multi_max}"
        );
    }

    #[test]
    fn cpu_pool_allows_limited_parallelism() {
        let topo = Topology::mono_disk(4); // one machine, 4 CPUs
        let mut net = SimNetwork::new(&topo, CostModel::default());
        let times: Vec<SimTime> = (0..4).map(|lib| net.cpu(lib, 0.0, 1.0)).collect();
        assert!(times.iter().all(|&t| (t - 1.0).abs() < 1e-9));
        let fifth = net.cpu(0, 0.0, 1.0);
        assert!((fifth - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ping_matches_table_2() {
        let topo = Topology::wan_table2_order();
        let net = SimNetwork::new(&topo, CostModel::default());
        // Table 2 order: Waikato, Canberra, Brisbane, Israel.
        assert!((net.ping(0) - 0.76).abs() < 1e-9);
        assert!((net.ping(1) - 0.18).abs() < 1e-9);
        assert!((net.ping(2) - 0.14).abs() < 1e-9);
        assert!((net.ping(3) - 1.04).abs() < 1e-9);
    }

    #[test]
    fn receptionist_shares_disk_in_mono_disk_config() {
        let topo = Topology::mono_disk(2);
        let mut net = SimNetwork::new(&topo, CostModel::default());
        let t1 = net.disk_read(0, 0.0, 1 << 20, 1);
        let t2 = net.receptionist_disk_read(0.0, 1 << 20, 1);
        assert!(t2 > t1);
    }

    #[test]
    fn multi_disk_receptionist_has_its_own_disk() {
        // In the multi-disk preset the receptionist uses disk 0 and
        // librarians use disks 1..; no contention.
        let topo = Topology::multi_disk(2);
        let mut net = SimNetwork::new(&topo, CostModel::default());
        let t1 = net.disk_read(0, 0.0, 1 << 20, 1);
        let t2 = net.receptionist_disk_read(0.0, 1 << 20, 1);
        assert!((t1 - t2).abs() < 1e-9);
    }
}
