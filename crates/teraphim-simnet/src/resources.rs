//! FCFS resource calendars.
//!
//! A [`Fcfs`] resource serves one request at a time; a [`CpuPool`] serves
//! up to `k` concurrently. Both hand out reservations in *virtual time*:
//! `reserve(ready, service)` returns the completion time of a request
//! that becomes ready at `ready` and needs `service` seconds of the
//! resource.
//!
//! Reservations must be issued in causal order (a request's `ready` time
//! must already be known), which the TERAPHIM drivers guarantee by
//! replaying protocol steps phase by phase.

use crate::SimTime;
use std::collections::BinaryHeap;

/// A single-server first-come-first-served resource (a disk, a network
/// link, the shared ethernet cable).
#[derive(Debug, Clone, Default)]
pub struct Fcfs {
    next_free: SimTime,
    busy: f64,
    served: u64,
    /// Opaque caller-owned value (e.g. a bandwidth attached to the
    /// resource); zero when created with [`Fcfs::new`].
    tag: f64,
}

impl Fcfs {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an idle resource carrying a tag value (e.g. a shared
    /// medium's bandwidth).
    pub fn with_tag(tag: f64) -> Self {
        Fcfs {
            tag,
            ..Self::default()
        }
    }

    /// The tag supplied at construction (0.0 if none).
    pub fn tag(&self) -> f64 {
        self.tag
    }

    /// Reserves `service` seconds starting no earlier than `ready`;
    /// returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `service` is negative or not finite.
    pub fn reserve(&mut self, ready: SimTime, service: f64) -> SimTime {
        debug_assert!(service >= 0.0 && service.is_finite(), "bad service time");
        let start = ready.max(self.next_free);
        self.next_free = start + service;
        self.busy += service;
        self.served += 1;
        self.next_free
    }

    /// Earliest time a new request could start service.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total busy time accumulated (utilization accounting).
    pub fn busy_time(&self) -> f64 {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

/// A `k`-server FCFS resource (a multiprocessor CPU).
#[derive(Debug, Clone)]
pub struct CpuPool {
    /// Min-heap of server free times (stored negated in a max-heap).
    free_at: BinaryHeap<std::cmp::Reverse<OrderedTime>>,
    busy: f64,
    served: u64,
}

/// Total-ordered f64 wrapper; times in this simulator are always finite.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedTime(f64);

impl Eq for OrderedTime {}
impl PartialOrd for OrderedTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite times")
    }
}

impl CpuPool {
    /// Creates a pool of `servers` idle processors.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: u32) -> Self {
        assert!(servers > 0, "a CPU pool needs at least one processor");
        CpuPool {
            free_at: (0..servers)
                .map(|_| std::cmp::Reverse(OrderedTime(0.0)))
                .collect(),
            busy: 0.0,
            served: 0,
        }
    }

    /// Number of processors.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Reserves `service` seconds on the earliest-free processor,
    /// starting no earlier than `ready`; returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `service` is negative or not finite.
    pub fn reserve(&mut self, ready: SimTime, service: f64) -> SimTime {
        debug_assert!(service >= 0.0 && service.is_finite(), "bad service time");
        let std::cmp::Reverse(OrderedTime(free)) = self.free_at.pop().expect("pool is non-empty");
        let start = ready.max(free);
        let done = start + service;
        self.free_at.push(std::cmp::Reverse(OrderedTime(done)));
        self.busy += service;
        self.served += 1;
        done
    }

    /// Total busy time across all processors.
    pub fn busy_time(&self) -> f64 {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_idle_resource_starts_immediately() {
        let mut r = Fcfs::new();
        assert_eq!(r.reserve(5.0, 2.0), 7.0);
        assert_eq!(r.next_free(), 7.0);
    }

    #[test]
    fn fcfs_queues_back_to_back() {
        let mut r = Fcfs::new();
        assert_eq!(r.reserve(0.0, 1.0), 1.0);
        assert_eq!(r.reserve(0.0, 1.0), 2.0);
        assert_eq!(r.reserve(0.5, 1.0), 3.0);
        assert_eq!(r.served(), 3);
        assert!((r.busy_time() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fcfs_respects_gaps() {
        let mut r = Fcfs::new();
        r.reserve(0.0, 1.0);
        // Ready long after the resource frees: no queueing.
        assert_eq!(r.reserve(10.0, 1.0), 11.0);
    }

    #[test]
    fn fcfs_zero_service_is_allowed() {
        let mut r = Fcfs::new();
        assert_eq!(r.reserve(3.0, 0.0), 3.0);
    }

    #[test]
    fn pool_parallelism_up_to_k() {
        let mut p = CpuPool::new(2);
        assert_eq!(p.reserve(0.0, 1.0), 1.0);
        assert_eq!(p.reserve(0.0, 1.0), 1.0);
        assert_eq!(p.reserve(0.0, 1.0), 2.0); // third job queues
        assert_eq!(p.servers(), 2);
    }

    #[test]
    fn pool_picks_earliest_free_server() {
        let mut p = CpuPool::new(2);
        p.reserve(0.0, 5.0); // server A busy until 5
        p.reserve(0.0, 1.0); // server B busy until 1
                             // New job at t=2 should land on B immediately.
        assert_eq!(p.reserve(2.0, 1.0), 3.0);
    }

    #[test]
    fn pool_of_one_behaves_like_fcfs() {
        let mut p = CpuPool::new(1);
        let mut r = Fcfs::new();
        for (ready, service) in [(0.0, 1.0), (0.2, 0.5), (5.0, 2.0)] {
            assert_eq!(p.reserve(ready, service), r.reserve(ready, service));
        }
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn empty_pool_panics() {
        CpuPool::new(0);
    }

    #[test]
    fn utilization_accounting() {
        let mut p = CpuPool::new(4);
        for _ in 0..8 {
            p.reserve(0.0, 0.5);
        }
        assert!((p.busy_time() - 4.0).abs() < 1e-12);
        assert_eq!(p.served(), 8);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn fcfs_completions_are_monotone_when_issued_in_ready_order(
            jobs in proptest::collection::vec((0.0f64..100.0, 0.0f64..10.0), 1..50),
        ) {
            let mut sorted = jobs;
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut r = Fcfs::new();
            let mut prev = f64::NEG_INFINITY;
            for (ready, service) in sorted {
                let done = r.reserve(ready, service);
                prop_assert!(done >= ready + service - 1e-12);
                prop_assert!(done >= prev - 1e-12);
                prev = done;
            }
        }

        #[test]
        fn pool_never_beats_infinite_parallelism_nor_loses_to_serial(
            jobs in proptest::collection::vec(0.01f64..1.0, 1..40),
            servers in 1u32..8,
        ) {
            let mut p = CpuPool::new(servers);
            let mut makespan: f64 = 0.0;
            for &service in &jobs {
                makespan = makespan.max(p.reserve(0.0, service));
            }
            let total: f64 = jobs.iter().sum();
            let longest = jobs.iter().cloned().fold(0.0, f64::max);
            prop_assert!(makespan >= longest - 1e-12);
            prop_assert!(makespan <= total + 1e-9);
            // Lower bound: total work / servers.
            prop_assert!(makespan >= total / f64::from(servers) - 1e-9);
        }
    }
}
