//! The paper's four experimental configurations (§4, "Efficiency").
//!
//! * **Mono-disk** — one four-processor SPARC 10; all subcollections and
//!   the receptionist share a single disk.
//! * **Multi-disk** — the same machine, but each librarian's data on its
//!   own drive ("three locally mounted disk drives and two NFS mounted
//!   drives").
//! * **LAN** — three machines on a common 10 Mbit ethernet: a
//!   four-processor SPARC 10 running the receptionist and the FR
//!   database; a dual-processor SPARC 10 running AP and WSJ; a
//!   two-processor SPARC 20 running ZIFF.
//! * **WAN** — receptionist in Melbourne; ZIFF in Canberra, AP in
//!   Brisbane, FR in Hamilton (Waikato), WSJ in Tel Aviv (Israel), with
//!   the measured ping times of Table 2.
//!
//! Librarian order everywhere matches the canonical subcollection order
//! `[AP, FR, WSJ, ZIFF]` used by `teraphim-corpus`; see each preset's doc
//! comment for the machine/site mapping.

/// A physical machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    /// Human-readable name ("melbourne", "sparc10-a", ...).
    pub name: String,
    /// Number of processors.
    pub cpus: u32,
    /// Number of independent disks attached.
    pub disks: u32,
}

/// Where one librarian runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Index into [`Topology::machines`].
    pub machine: usize,
    /// Disk index on that machine holding this librarian's data.
    pub disk: usize,
    /// Round-trip time to the receptionist's machine, seconds (ignored
    /// when co-located).
    pub rtt: f64,
    /// Effective point-to-point bandwidth to the receptionist,
    /// bytes/second (ignored when co-located or on a shared medium).
    pub bandwidth: f64,
}

/// A complete hardware configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Configuration name ("mono-disk", "LAN", ...).
    pub name: String,
    /// The machines involved.
    pub machines: Vec<Machine>,
    /// Which machine hosts the receptionist.
    pub receptionist: usize,
    /// One placement per librarian, in subcollection order
    /// `[AP, FR, WSJ, ZIFF]` for the four-collection presets.
    pub librarians: Vec<Placement>,
    /// If set, all remote traffic shares one medium of this bandwidth
    /// (bytes/second) — classic ethernet.
    pub shared_medium_bandwidth: Option<f64>,
}

/// 10 Mbit/s ethernet in bytes per second.
const ETHERNET_10MBIT: f64 = 10.0e6 / 8.0;
/// Effective per-flow Internet bandwidth circa 1997, bytes per second.
const WAN_BANDWIDTH: f64 = 128.0e3;

impl Topology {
    /// Mono-disk: one 4-CPU machine, one disk shared by everything.
    /// Librarians are `s` subcollections, all on disk 0.
    pub fn mono_disk(s: usize) -> Topology {
        Topology {
            name: "mono-disk".into(),
            machines: vec![Machine {
                name: "sparc10".into(),
                cpus: 4,
                disks: 1,
            }],
            receptionist: 0,
            librarians: (0..s)
                .map(|_| Placement {
                    machine: 0,
                    disk: 0,
                    rtt: 0.0,
                    bandwidth: f64::INFINITY,
                })
                .collect(),
            shared_medium_bandwidth: None,
        }
    }

    /// Multi-disk: one 4-CPU machine; the receptionist on disk 0, each
    /// librarian on its own disk `1 + i`.
    pub fn multi_disk(s: usize) -> Topology {
        Topology {
            name: "multi-disk".into(),
            machines: vec![Machine {
                name: "sparc10".into(),
                cpus: 4,
                disks: 1 + s as u32,
            }],
            receptionist: 0,
            librarians: (0..s)
                .map(|i| Placement {
                    machine: 0,
                    disk: 1 + i,
                    rtt: 0.0,
                    bandwidth: f64::INFINITY,
                })
                .collect(),
            shared_medium_bandwidth: None,
        }
    }

    /// LAN: three machines on 10 Mbit ethernet. Librarians in corpus
    /// order `[AP, FR, WSJ, ZIFF]`: AP and WSJ on the dual-CPU SPARC 10,
    /// FR co-located with the receptionist on the 4-CPU SPARC 10, ZIFF on
    /// the SPARC 20.
    pub fn lan() -> Topology {
        let lan_rtt = 0.001; // ~1 ms on an idle ethernet segment
        Topology {
            name: "LAN".into(),
            machines: vec![
                Machine {
                    name: "sparc10-4cpu (receptionist, FR)".into(),
                    cpus: 4,
                    disks: 2,
                },
                Machine {
                    name: "sparc10-2cpu (AP, WSJ)".into(),
                    cpus: 2,
                    disks: 2,
                },
                Machine {
                    name: "sparc20-2cpu (ZIFF)".into(),
                    cpus: 2,
                    disks: 1,
                },
            ],
            receptionist: 0,
            librarians: vec![
                // AP on machine 1, disk 0
                Placement {
                    machine: 1,
                    disk: 0,
                    rtt: lan_rtt,
                    bandwidth: ETHERNET_10MBIT,
                },
                // FR co-located with the receptionist, disk 1
                Placement {
                    machine: 0,
                    disk: 1,
                    rtt: 0.0,
                    bandwidth: f64::INFINITY,
                },
                // WSJ on machine 1, disk 1
                Placement {
                    machine: 1,
                    disk: 1,
                    rtt: lan_rtt,
                    bandwidth: ETHERNET_10MBIT,
                },
                // ZIFF on machine 2, disk 0
                Placement {
                    machine: 2,
                    disk: 0,
                    rtt: lan_rtt,
                    bandwidth: ETHERNET_10MBIT,
                },
            ],
            shared_medium_bandwidth: Some(ETHERNET_10MBIT),
        }
    }

    /// WAN: the paper's five geographically separated sites with the
    /// Table 2 round-trip times. Librarians in corpus order
    /// `[AP, FR, WSJ, ZIFF]`, mapped as in the paper: AP→Brisbane,
    /// FR→Hamilton (Waikato), WSJ→Tel Aviv (Israel), ZIFF→Canberra.
    pub fn wan() -> Topology {
        let mk = |name: &str| Machine {
            name: name.into(),
            cpus: 2,
            disks: 1,
        };
        Topology {
            name: "WAN".into(),
            machines: vec![
                mk("melbourne (receptionist)"),
                mk("canberra (ZIFF)"),
                mk("brisbane (AP)"),
                mk("waikato (FR)"),
                mk("israel (WSJ)"),
            ],
            receptionist: 0,
            librarians: vec![
                // AP → Brisbane: 16 hops, 0.14 s ping
                Placement {
                    machine: 2,
                    disk: 0,
                    rtt: 0.14,
                    bandwidth: WAN_BANDWIDTH,
                },
                // FR → Waikato: 13 hops, 0.76 s ping
                Placement {
                    machine: 3,
                    disk: 0,
                    rtt: 0.76,
                    bandwidth: WAN_BANDWIDTH,
                },
                // WSJ → Israel: 28 hops, 1.04 s ping
                Placement {
                    machine: 4,
                    disk: 0,
                    rtt: 1.04,
                    bandwidth: WAN_BANDWIDTH,
                },
                // ZIFF → Canberra: 14 hops, 0.18 s ping
                Placement {
                    machine: 1,
                    disk: 0,
                    rtt: 0.18,
                    bandwidth: WAN_BANDWIDTH,
                },
            ],
            shared_medium_bandwidth: None,
        }
    }

    /// The four-collection WAN preset reordered so that librarian `i`
    /// matches the paper's Table 2 listing: Waikato, Canberra, Brisbane,
    /// Israel. Used by the Table 2 reproduction.
    pub fn wan_table2_order() -> Topology {
        let mut t = Topology::wan();
        // wan() is [AP, FR, WSJ, ZIFF]; Table 2 lists by site.
        t.librarians = vec![
            t.librarians[1], // Waikato (FR)
            t.librarians[3], // Canberra (ZIFF)
            t.librarians[0], // Brisbane (AP)
            t.librarians[2], // Israel (WSJ)
        ];
        t
    }

    /// Round-trip time of librarian `lib` to the receptionist.
    ///
    /// # Panics
    ///
    /// Panics if `lib` is out of range.
    pub fn site_rtt(&self, lib: usize) -> f64 {
        self.librarians[lib].rtt
    }

    /// The paper's Table 2 site data: (location, hops, ping seconds).
    pub fn table2_sites() -> [(&'static str, u32, f64); 4] {
        [
            ("Waikato", 13, 0.76),
            ("Canberra", 14, 0.18),
            ("Brisbane", 16, 0.14),
            ("Israel", 28, 1.04),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mono_disk_shares_one_disk() {
        let t = Topology::mono_disk(4);
        assert_eq!(t.machines.len(), 1);
        assert_eq!(t.machines[0].disks, 1);
        assert!(t.librarians.iter().all(|p| p.machine == 0 && p.disk == 0));
    }

    #[test]
    fn multi_disk_gives_each_librarian_a_disk() {
        let t = Topology::multi_disk(4);
        assert_eq!(t.machines[0].disks, 5);
        let disks: Vec<usize> = t.librarians.iter().map(|p| p.disk).collect();
        assert_eq!(disks, vec![1, 2, 3, 4]);
    }

    #[test]
    fn lan_has_three_machines_and_shared_medium() {
        let t = Topology::lan();
        assert_eq!(t.machines.len(), 3);
        assert!(t.shared_medium_bandwidth.is_some());
        // FR (librarian 1) is co-located with the receptionist.
        assert_eq!(t.librarians[1].machine, t.receptionist);
        // AP and WSJ share a machine but not a disk.
        assert_eq!(t.librarians[0].machine, t.librarians[2].machine);
        assert_ne!(t.librarians[0].disk, t.librarians[2].disk);
    }

    #[test]
    fn wan_rtts_match_table_2() {
        let t = Topology::wan();
        assert!((t.site_rtt(0) - 0.14).abs() < 1e-12); // AP / Brisbane
        assert!((t.site_rtt(1) - 0.76).abs() < 1e-12); // FR / Waikato
        assert!((t.site_rtt(2) - 1.04).abs() < 1e-12); // WSJ / Israel
        assert!((t.site_rtt(3) - 0.18).abs() < 1e-12); // ZIFF / Canberra
        assert!(t.shared_medium_bandwidth.is_none());
    }

    #[test]
    fn wan_table2_order_matches_paper_listing() {
        let t = Topology::wan_table2_order();
        let rtts: Vec<f64> = (0..4).map(|i| t.site_rtt(i)).collect();
        // Waikato, Canberra, Brisbane, Israel — as printed in Table 2.
        assert_eq!(rtts, vec![0.76, 0.18, 0.14, 1.04]);
        for (i, (_, _, ping)) in Topology::table2_sites().iter().enumerate() {
            assert!((t.site_rtt(i) - ping).abs() < 1e-12, "site {i}");
        }
    }

    #[test]
    fn no_librarian_is_co_located_in_wan() {
        let t = Topology::wan();
        assert!(t.librarians.iter().all(|p| p.machine != t.receptionist));
    }

    #[test]
    fn table2_reference_data() {
        let sites = Topology::table2_sites();
        assert_eq!(sites.len(), 4);
        assert_eq!(sites[3].0, "Israel");
        assert_eq!(sites[3].1, 28);
    }
}
