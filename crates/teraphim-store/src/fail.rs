//! Crash-point injection for durability testing.
//!
//! A crash can leave a file in exactly two interesting states relative to
//! an in-flight append: a **prefix** of the new bytes made it to disk
//! (torn write), or all bytes made it but one sector holds garbage
//! (misdirected/interrupted sector write). [`FailingFile`] wraps any
//! writer and simulates both, "killing the process" (returning an error
//! and refusing further writes) once the configured [`CrashPoint`] is
//! reached. The recovery proptests sweep the crash offset across an
//! entire WAL commit and assert that reopening always lands on a durable
//! epoch.

use std::io::{self, Write};

/// How the simulated crash mangles the in-flight write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Only the first `offset` bytes of the write reach the file; the
    /// rest are lost (torn write).
    Truncate,
    /// Every byte reaches the file, but the byte at `offset` is XOR-ed
    /// with `0xA5` (corrupted sector); writes keep succeeding so the
    /// full stream lands, corruption included. An `offset` past the end
    /// of the written data garbles nothing — the crash then strikes
    /// *after* a fully durable write.
    Garble,
}

/// A byte offset (relative to the wrapped writer's first byte) at which
/// the simulated crash strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Offset into the stream of bytes written through the wrapper.
    pub offset: u64,
    /// What happens to the data around the crash.
    pub mode: CrashMode,
}

/// Error kind used for the simulated crash.
fn crash_error() -> io::Error {
    io::Error::other("injected crash point fired")
}

/// A writer that persists data faithfully up to a [`CrashPoint`], then
/// fails like a crashing process.
///
/// Semantics per mode:
///
/// * [`CrashMode::Truncate`] — bytes `0..offset` are forwarded, then
///   the write covering the crash point and every later one return an
///   error. If `offset` is at or beyond the end of all data written,
///   nothing is lost (the crash lands after the write completed).
/// * [`CrashMode::Garble`] — all bytes are forwarded with the byte at
///   `offset` flipped; writes keep succeeding (the corruption is
///   already planted, and the caller learns of the crash from
///   [`FailingFile::crashed`], exactly how the store treats an armed
///   crash point as fatal after the write).
#[derive(Debug)]
pub struct FailingFile<W: Write> {
    inner: W,
    point: CrashPoint,
    written: u64,
    fired: bool,
}

impl<W: Write> FailingFile<W> {
    /// Wraps `inner`, arming the given crash point.
    pub fn new(inner: W, point: CrashPoint) -> Self {
        FailingFile {
            inner,
            point,
            written: 0,
            fired: false,
        }
    }

    /// Whether the crash point has fired.
    pub fn crashed(&self) -> bool {
        self.fired
    }

    /// Total bytes forwarded to the wrapped writer.
    pub fn bytes_written(&self) -> u64 {
        self.written
    }
}

impl<W: Write> Write for FailingFile<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.fired && self.point.mode == CrashMode::Truncate {
            return Err(crash_error());
        }
        let end = self.written + buf.len() as u64;
        match self.point.mode {
            CrashMode::Truncate => {
                if end > self.point.offset {
                    let keep = (self.point.offset.saturating_sub(self.written)) as usize;
                    self.inner.write_all(&buf[..keep])?;
                    self.written += keep as u64;
                    self.fired = true;
                    return Err(crash_error());
                }
                self.inner.write_all(buf)?;
                self.written = end;
                Ok(buf.len())
            }
            CrashMode::Garble => {
                if !self.fired && self.point.offset >= self.written && self.point.offset < end {
                    let mut garbled = buf.to_vec();
                    garbled[(self.point.offset - self.written) as usize] ^= 0xA5;
                    self.inner.write_all(&garbled)?;
                    self.fired = true;
                } else {
                    self.inner.write_all(buf)?;
                }
                self.written = end;
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(point: CrashPoint, chunks: &[&[u8]]) -> (Vec<u8>, bool) {
        let mut sink = Vec::new();
        let crashed;
        {
            let mut f = FailingFile::new(&mut sink, point);
            for chunk in chunks {
                if f.write_all(chunk).is_err() {
                    break;
                }
            }
            crashed = f.crashed();
        }
        (sink, crashed)
    }

    #[test]
    fn truncate_keeps_exact_prefix() {
        let data: Vec<u8> = (0u8..100).collect();
        for offset in 0..=100u64 {
            let point = CrashPoint {
                offset,
                mode: CrashMode::Truncate,
            };
            let (persisted, crashed) = run(point, &[&data]);
            assert_eq!(persisted, data[..offset as usize], "offset {offset}");
            assert_eq!(crashed, offset < 100, "offset {offset}");
        }
    }

    #[test]
    fn truncate_spanning_multiple_writes() {
        let point = CrashPoint {
            offset: 5,
            mode: CrashMode::Truncate,
        };
        let (persisted, crashed) = run(point, &[b"abc", b"def", b"ghi"]);
        assert_eq!(persisted, b"abcde");
        assert!(crashed);
    }

    #[test]
    fn garble_flips_exactly_one_byte() {
        let data: Vec<u8> = (0u8..50).collect();
        for offset in 0..50u64 {
            let point = CrashPoint {
                offset,
                mode: CrashMode::Garble,
            };
            let (persisted, crashed) = run(point, &[&data[..20], &data[20..]]);
            assert!(crashed, "offset {offset}");
            assert_eq!(persisted.len(), data.len());
            let diffs: Vec<usize> = (0..data.len())
                .filter(|&i| persisted[i] != data[i])
                .collect();
            assert_eq!(diffs, vec![offset as usize]);
            assert_eq!(persisted[offset as usize], data[offset as usize] ^ 0xA5);
        }
    }

    #[test]
    fn garble_past_end_is_a_clean_write() {
        let point = CrashPoint {
            offset: 99,
            mode: CrashMode::Garble,
        };
        let (persisted, crashed) = run(point, &[b"short"]);
        assert_eq!(persisted, b"short");
        assert!(!crashed);
    }

    #[test]
    fn no_writes_accepted_after_crash() {
        let mut sink = Vec::new();
        let mut f = FailingFile::new(
            &mut sink,
            CrashPoint {
                offset: 1,
                mode: CrashMode::Truncate,
            },
        );
        assert!(f.write_all(b"xy").is_err());
        assert!(f.crashed());
        assert!(f.write_all(b"z").is_err());
        let _ = f;
        assert_eq!(sink, b"x");
    }
}
