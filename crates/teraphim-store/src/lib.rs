//! Persistent versioned index store.
//!
//! Every librarian in the paper's distributed configurations owns a
//! collection; until this crate existed that collection lived only in
//! memory and the "index epoch" used by the cache-invalidation plumbing
//! was an ephemeral counter. [`IndexStore`] makes both durable:
//!
//! * **Segments** ([`segment`]) — immutable on-disk files holding a
//!   serialized [`teraphim_engine::Collection`] (compressed postings,
//!   document weights, compressed document store) plus the list of
//!   committed batches it covers, sealed with a CRC-32 footer
//!   ([`teraphim_compress::checksum`]).
//! * **Write-ahead log** ([`wal`]) — incremental `add_docs` batches are
//!   appended to `wal.log` as checksummed records *before* the in-memory
//!   index is touched. A synced WAL record is the commit point: each one
//!   advances the durable epoch by exactly one.
//! * **Manifest** ([`manifest`]) — the store's root pointer, updated
//!   atomically (write-temp + rename), naming the live segments and the
//!   last checkpointed epoch.
//! * **Crash recovery** — [`IndexStore::open`] loads segments in epoch
//!   order and replays the WAL's valid prefix. A torn tail (truncated or
//!   garbled final record, the only damage a crash can inflict) is
//!   dropped silently; corruption anywhere else fails with a typed
//!   [`StoreError`] rather than panicking or serving partial data.
//! * **As-of queries** — [`IndexStore::collection_at`] deterministically
//!   replays the store up to any durable epoch, yielding a collection
//!   whose rankings are byte-identical to an in-memory oracle that
//!   applied the same batches in the same order.
//!
//! The byte-identity guarantee rests on three facts: collection
//! serialization round-trips exactly (document weights travel as raw
//! `f64` bits), segment indexes are merged with the index-merge routine
//! (`teraphim_index::merge`) which carries postings and
//! weights over unchanged, and the per-batch delta indexes stored in
//! segments are built exactly like the deltas
//! [`Collection::append_documents`](teraphim_engine::Collection::append_documents)
//! builds in memory. Cold-open, WAL replay and as-of replay therefore all
//! walk the same construction path as the oracle.
//!
//! [`fail`] supplies the crash-point injection harness ([`FailingFile`])
//! used by the recovery test-suite, and [`tempdir`] a dependency-free
//! scratch-directory helper shared by tests and benches.
//!
//! # Examples
//!
//! ```
//! use teraphim_store::{IndexStore, tempdir::TempDir};
//! use teraphim_text::{sgml::TrecDoc, Analyzer};
//!
//! # fn main() -> Result<(), teraphim_store::StoreError> {
//! let dir = TempDir::new("doc-example")?;
//! let base = vec![TrecDoc { docno: "D1".into(), text: "the cat sat".into() }];
//! let (mut store, mut collection) =
//!     IndexStore::create(dir.path(), "demo", &Analyzer::default(), &base)?;
//! assert_eq!(store.epoch(), 0);
//!
//! // Durable append: WAL first, then the in-memory index.
//! let batch = vec![TrecDoc { docno: "D2".into(), text: "the dog ran".into() }];
//! store.log_batch(&batch)?;
//! collection.append_documents(&batch).expect("merge");
//! assert_eq!(store.epoch(), 1);
//!
//! // Reopen recovers the same epoch and identical rankings.
//! drop(store);
//! let (store, reopened) = IndexStore::open(dir.path())?;
//! assert_eq!(store.epoch(), 1);
//! assert_eq!(reopened.num_docs(), collection.num_docs());
//!
//! // Pin a query to an earlier epoch.
//! let as_of = store.collection_at(0)?;
//! assert_eq!(as_of.num_docs(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod fail;
pub mod manifest;
pub mod segment;
pub mod store;
pub mod tempdir;
pub mod wal;

pub use fail::{CrashMode, CrashPoint, FailingFile};
pub use manifest::{Manifest, SegmentEntry};
pub use segment::{Segment, SegmentBatch};
pub use store::{IndexStore, StoreOptions, StoreStatus};
pub use tempdir::TempDir;

use std::error::Error;
use std::fmt;

/// Errors surfaced by the persistent store.
///
/// All decode paths return typed errors — corruption is never reported by
/// panicking, and a store that fails to open leaves no partially-applied
/// state behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// Which store operation was in flight.
        op: &'static str,
        /// The operating-system error message.
        message: String,
    },
    /// An on-disk artefact (segment, WAL record, manifest) failed
    /// structural or checksum validation.
    Corrupt {
        /// What was found to be corrupt.
        what: &'static str,
    },
    /// The manifest was written by an incompatible format version.
    BadVersion {
        /// The version number found on disk.
        found: u32,
    },
    /// An as-of query asked for an epoch beyond the durable one.
    NoSuchEpoch {
        /// The epoch requested.
        requested: u64,
        /// The newest durable epoch.
        durable: u64,
    },
    /// `create` was called on a directory that already holds a store.
    Exists,
    /// `open` was called on a directory with no manifest.
    Missing,
    /// A collection-level operation (decode, merge) failed.
    Engine(String),
    /// An injected [`CrashPoint`] fired during a WAL append (test
    /// harness only — the simulated process is now "dead").
    Crashed,
    /// The store was used after an injected crash; reopen it instead.
    Poisoned,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, message } => write!(f, "store i/o failure during {op}: {message}"),
            StoreError::Corrupt { what } => write!(f, "corrupt store: {what}"),
            StoreError::BadVersion { found } => {
                write!(f, "unsupported store format version {found}")
            }
            StoreError::NoSuchEpoch { requested, durable } => {
                write!(f, "epoch {requested} is not durable (newest is {durable})")
            }
            StoreError::Exists => write!(f, "store directory already contains a manifest"),
            StoreError::Missing => write!(f, "no store manifest in directory"),
            StoreError::Engine(msg) => write!(f, "collection failure: {msg}"),
            StoreError::Crashed => write!(f, "injected crash point fired during wal append"),
            StoreError::Poisoned => write!(f, "store unusable after injected crash; reopen it"),
        }
    }
}

impl Error for StoreError {}

impl From<teraphim_engine::EngineError> for StoreError {
    fn from(e: teraphim_engine::EngineError) -> Self {
        match e {
            teraphim_engine::EngineError::Corrupt(what) => StoreError::Corrupt { what },
            other => StoreError::Engine(other.to_string()),
        }
    }
}

/// Convenience alias for store results.
pub type Result<T> = std::result::Result<T, StoreError>;

pub(crate) fn io_err(op: &'static str) -> impl Fn(std::io::Error) -> StoreError {
    move |e| StoreError::Io {
        op,
        message: e.to_string(),
    }
}
