//! The store's root pointer: which segments are live, at which epoch.
//!
//! The manifest is the only mutable file in a store besides the WAL. It
//! is always replaced atomically — written to `MANIFEST.tmp`, synced,
//! then renamed over `MANIFEST` — so a reader either sees the old
//! manifest or the new one, never a torn mix. Layout:
//!
//! ```text
//! magic "TMF1"
//! format version (u32 LE)
//! collection name (u32 length + bytes)
//! analyzer flags: stopping (u8), stemming (u8)
//! checkpointed epoch (u64 LE)
//! next segment id (u64 LE)
//! segment count (u32 LE), then per segment:
//!     file name (u32 length + bytes)
//!     batch count (u32 LE), then per batch: epoch u64 LE, docs u64 LE
//! CRC-32 over everything above (u32 LE)
//! ```

use crate::segment::SegmentBatch;
use crate::{Result, StoreError};
use teraphim_compress::checksum::crc32;

/// Magic bytes opening the manifest.
pub const MAGIC: [u8; 4] = *b"TMF1";
/// The current manifest format version.
pub const VERSION: u32 = 1;

/// One live segment file as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// File name relative to the store directory.
    pub file: String,
    /// The batches the segment covers (mirrors the segment's own meta;
    /// the two are cross-checked when the segment is read).
    pub batches: Vec<SegmentBatch>,
}

impl SegmentEntry {
    /// Total documents across the segment's batches.
    #[must_use]
    pub fn num_docs(&self) -> u64 {
        self.batches.iter().map(|b| b.docs).sum()
    }
}

/// The decoded manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Collection name (e.g. "AP").
    pub name: String,
    /// Analyzer stop-word flag at indexing time.
    pub stopping: bool,
    /// Analyzer stemming flag at indexing time.
    pub stemming: bool,
    /// Highest epoch captured in segments (WAL records above this are
    /// pending).
    pub epoch: u64,
    /// Counter for naming the next segment file.
    pub next_segment_id: u64,
    /// Live segments in epoch order.
    pub segments: Vec<SegmentEntry>,
}

impl Manifest {
    /// Serializes the manifest with its trailing CRC.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        let name = self.name.as_bytes();
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        out.push(u8::from(self.stopping));
        out.push(u8::from(self.stemming));
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.next_segment_id.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for entry in &self.segments {
            let file = entry.file.as_bytes();
            out.extend_from_slice(&(file.len() as u32).to_le_bytes());
            out.extend_from_slice(file);
            out.extend_from_slice(&(entry.batches.len() as u32).to_le_bytes());
            for batch in &entry.batches {
                out.extend_from_slice(&batch.epoch.to_le_bytes());
                out.extend_from_slice(&batch.docs.to_le_bytes());
            }
        }
        out.extend_from_slice(&crc32(&out).to_le_bytes());
        out
    }

    /// Decodes and validates a manifest.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] on structural or checksum
    /// problems and [`StoreError::BadVersion`] for unknown format
    /// versions.
    pub fn decode(bytes: &[u8]) -> Result<Manifest> {
        if bytes.len() < 4 + 4 + 4 {
            return Err(StoreError::Corrupt {
                what: "manifest too short",
            });
        }
        if bytes[0..4] != MAGIC {
            return Err(StoreError::Corrupt {
                what: "manifest magic",
            });
        }
        let body = &bytes[..bytes.len() - 4];
        let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        if crc32(body) != crc {
            return Err(StoreError::Corrupt {
                what: "manifest checksum",
            });
        }
        let mut pos = 4usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let slice = body.get(*pos..*pos + n).ok_or(StoreError::Corrupt {
                what: "manifest truncated",
            })?;
            *pos += n;
            Ok(slice)
        };
        let take_u32 = |pos: &mut usize| -> Result<u32> {
            Ok(u32::from_le_bytes(
                take(pos, 4)?.try_into().expect("4 bytes"),
            ))
        };
        let take_u64 = |pos: &mut usize| -> Result<u64> {
            Ok(u64::from_le_bytes(
                take(pos, 8)?.try_into().expect("8 bytes"),
            ))
        };
        let take_str = |pos: &mut usize| -> Result<String> {
            let len = take_u32(pos)? as usize;
            Ok(std::str::from_utf8(take(pos, len)?)
                .map_err(|_| StoreError::Corrupt {
                    what: "manifest string is not UTF-8",
                })?
                .to_owned())
        };
        let version = take_u32(&mut pos)?;
        if version != VERSION {
            return Err(StoreError::BadVersion { found: version });
        }
        let name = take_str(&mut pos)?;
        let stopping = *take(&mut pos, 1)?.first().expect("one byte") != 0;
        let stemming = *take(&mut pos, 1)?.first().expect("one byte") != 0;
        let epoch = take_u64(&mut pos)?;
        let next_segment_id = take_u64(&mut pos)?;
        let seg_count = take_u32(&mut pos)? as usize;
        let mut segments = Vec::with_capacity(seg_count.min(body.len()));
        for _ in 0..seg_count {
            let file = take_str(&mut pos)?;
            let batch_count = take_u32(&mut pos)? as usize;
            let mut batches = Vec::with_capacity(batch_count.min(body.len()));
            for _ in 0..batch_count {
                batches.push(SegmentBatch {
                    epoch: take_u64(&mut pos)?,
                    docs: take_u64(&mut pos)?,
                });
            }
            segments.push(SegmentEntry { file, batches });
        }
        if pos != body.len() {
            return Err(StoreError::Corrupt {
                what: "trailing bytes in manifest",
            });
        }
        let manifest = Manifest {
            name,
            stopping,
            stemming,
            epoch,
            next_segment_id,
            segments,
        };
        manifest.validate()?;
        Ok(manifest)
    }

    /// Checks internal consistency: batches contiguous from epoch 0 up
    /// to the manifest epoch.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] describing the inconsistency.
    pub fn validate(&self) -> Result<()> {
        let mut expected = 0u64;
        for entry in &self.segments {
            if entry.batches.is_empty() {
                return Err(StoreError::Corrupt {
                    what: "manifest segment covers no batches",
                });
            }
            for batch in &entry.batches {
                if batch.epoch != expected {
                    return Err(StoreError::Corrupt {
                        what: "manifest batch epochs not contiguous",
                    });
                }
                expected += 1;
            }
        }
        if self.segments.is_empty() || expected - 1 != self.epoch {
            return Err(StoreError::Corrupt {
                what: "manifest epoch disagrees with segment batches",
            });
        }
        Ok(())
    }

    /// All covered batches across segments, in epoch order.
    #[must_use]
    pub fn batches(&self) -> Vec<SegmentBatch> {
        self.segments
            .iter()
            .flat_map(|s| s.batches.iter().copied())
            .collect()
    }

    /// Total documents across all segments.
    #[must_use]
    pub fn num_docs(&self) -> u64 {
        self.segments.iter().map(SegmentEntry::num_docs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            name: "AP".into(),
            stopping: true,
            stemming: false,
            epoch: 3,
            next_segment_id: 2,
            segments: vec![
                SegmentEntry {
                    file: "seg-000000.seg".into(),
                    batches: vec![
                        SegmentBatch { epoch: 0, docs: 10 },
                        SegmentBatch { epoch: 1, docs: 4 },
                    ],
                },
                SegmentEntry {
                    file: "seg-000001.seg".into(),
                    batches: vec![
                        SegmentBatch { epoch: 2, docs: 5 },
                        SegmentBatch { epoch: 3, docs: 0 },
                    ],
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let decoded = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.num_docs(), 19);
        assert_eq!(decoded.batches().len(), 4);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut garbled = bytes.clone();
            garbled[i] ^= 0x04;
            assert!(
                Manifest::decode(&garbled).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn unknown_version_is_typed() {
        let mut m = sample();
        m.epoch = 3;
        let mut bytes = m.encode();
        // Rewrite the version field and re-seal the checksum so only the
        // version check can fire.
        bytes[4] = 9;
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        assert_eq!(
            Manifest::decode(&bytes),
            Err(StoreError::BadVersion { found: 9 })
        );
    }

    #[test]
    fn gap_in_epochs_rejected() {
        let mut m = sample();
        m.segments[1].batches[0].epoch = 5;
        m.segments[1].batches[1].epoch = 6;
        assert!(matches!(
            Manifest::decode(&m.encode()),
            Err(StoreError::Corrupt { .. })
        ));
    }
}
