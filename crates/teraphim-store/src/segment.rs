//! Immutable on-disk segment files.
//!
//! A segment freezes a serialized [`teraphim_engine::Collection`] — the
//! compressed postings, document-weights table and compressed document
//! store — together with the list of committed batches it covers, so an
//! as-of query can slice the segment back into the epochs its documents
//! arrived in. Layout:
//!
//! ```text
//! offset            size  field
//! 0                 4     magic "TSG1"
//! 4                 p     payload: Collection::to_bytes
//! 4+p               m     meta: batch list (u32 count, then per batch
//!                         epoch u64 LE, doc count u64 LE)
//! 4+p+m             8     payload length p (u64 LE)
//! 4+p+m+8           4     meta length m (u32 LE)
//! 4+p+m+12          4     CRC-32 over payload ‖ meta (u32 LE)
//! 4+p+m+16          4     footer magic "1GST"
//! ```
//!
//! Segments are written once (to their final name, synced, and only then
//! referenced from the manifest) and never modified. The checksummed
//! footer means a torn segment write — possible only for files the
//! manifest does not yet reference — is detected immediately if it is
//! ever read.

use crate::{Result, StoreError};
use teraphim_compress::checksum::crc32;

/// Magic bytes opening every segment file.
pub const HEAD_MAGIC: [u8; 4] = *b"TSG1";
/// Magic bytes closing every segment file.
pub const FOOT_MAGIC: [u8; 4] = *b"1GST";
/// Fixed footer size: payload length + meta length + CRC + magic.
pub const FOOTER_LEN: usize = 20;

/// One committed batch covered by a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentBatch {
    /// The epoch the batch committed.
    pub epoch: u64,
    /// How many documents the batch added.
    pub docs: u64,
}

/// A decoded segment: collection bytes plus batch metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Serialized collection ([`teraphim_engine::Collection::to_bytes`]).
    pub collection: Vec<u8>,
    /// The batches this segment covers, in epoch order. Never empty.
    pub batches: Vec<SegmentBatch>,
}

impl Segment {
    /// Lowest epoch covered.
    #[must_use]
    pub fn epoch_lo(&self) -> u64 {
        self.batches.first().map_or(0, |b| b.epoch)
    }

    /// Highest epoch covered.
    #[must_use]
    pub fn epoch_hi(&self) -> u64 {
        self.batches.last().map_or(0, |b| b.epoch)
    }

    /// Total documents across all covered batches.
    #[must_use]
    pub fn num_docs(&self) -> u64 {
        self.batches.iter().map(|b| b.docs).sum()
    }

    /// Serializes the segment (payload + meta + checksummed footer).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut meta = Vec::with_capacity(4 + self.batches.len() * 16);
        meta.extend_from_slice(&(self.batches.len() as u32).to_le_bytes());
        for batch in &self.batches {
            meta.extend_from_slice(&batch.epoch.to_le_bytes());
            meta.extend_from_slice(&batch.docs.to_le_bytes());
        }
        let mut out = Vec::with_capacity(4 + self.collection.len() + meta.len() + FOOTER_LEN);
        out.extend_from_slice(&HEAD_MAGIC);
        out.extend_from_slice(&self.collection);
        out.extend_from_slice(&meta);
        out.extend_from_slice(&(self.collection.len() as u64).to_le_bytes());
        out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&out[4..]).to_le_bytes());
        out.extend_from_slice(&FOOT_MAGIC);
        out
    }

    /// Decodes a segment file, validating both magics, the length
    /// bookkeeping and the CRC.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] describing the first structural
    /// problem found; never panics and never returns partial data.
    pub fn decode(bytes: &[u8]) -> Result<Segment> {
        if bytes.len() < 4 + FOOTER_LEN {
            return Err(StoreError::Corrupt {
                what: "segment too short",
            });
        }
        if bytes[0..4] != HEAD_MAGIC {
            return Err(StoreError::Corrupt {
                what: "segment header magic",
            });
        }
        if bytes[bytes.len() - 4..] != FOOT_MAGIC {
            return Err(StoreError::Corrupt {
                what: "segment footer magic",
            });
        }
        let footer = &bytes[bytes.len() - FOOTER_LEN..];
        let payload_len = u64::from_le_bytes(footer[0..8].try_into().expect("8 bytes")) as usize;
        let meta_len = u32::from_le_bytes(footer[8..12].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(footer[12..16].try_into().expect("4 bytes"));
        let expected_len = 4usize
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(meta_len))
            .and_then(|n| n.checked_add(FOOTER_LEN));
        if expected_len != Some(bytes.len()) {
            return Err(StoreError::Corrupt {
                what: "segment length bookkeeping",
            });
        }
        let body = &bytes[4..4 + payload_len + meta_len];
        // The CRC also covers the footer's own length fields, which were
        // appended to the buffer before the checksum was taken.
        let mut hasher = teraphim_compress::checksum::Crc32::new();
        hasher.update(body);
        hasher.update(&footer[0..12]);
        if hasher.finish() != crc {
            return Err(StoreError::Corrupt {
                what: "segment checksum",
            });
        }
        let collection = body[..payload_len].to_vec();
        let meta = &body[payload_len..];
        if meta.len() < 4 {
            return Err(StoreError::Corrupt {
                what: "segment meta truncated",
            });
        }
        let count = u32::from_le_bytes(meta[0..4].try_into().expect("4 bytes")) as usize;
        if meta.len() != 4 + count * 16 {
            return Err(StoreError::Corrupt {
                what: "segment batch list length",
            });
        }
        let mut batches = Vec::with_capacity(count);
        for i in 0..count {
            let at = 4 + i * 16;
            batches.push(SegmentBatch {
                epoch: u64::from_le_bytes(meta[at..at + 8].try_into().expect("8 bytes")),
                docs: u64::from_le_bytes(meta[at + 8..at + 16].try_into().expect("8 bytes")),
            });
        }
        if batches.is_empty() {
            return Err(StoreError::Corrupt {
                what: "segment covers no batches",
            });
        }
        for pair in batches.windows(2) {
            if pair[1].epoch != pair[0].epoch + 1 {
                return Err(StoreError::Corrupt {
                    what: "segment batch epochs not contiguous",
                });
            }
        }
        Ok(Segment {
            collection,
            batches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Segment {
        Segment {
            collection: (0u16..900).map(|i| (i % 251) as u8).collect(),
            batches: vec![
                SegmentBatch { epoch: 0, docs: 12 },
                SegmentBatch { epoch: 1, docs: 0 },
                SegmentBatch { epoch: 2, docs: 7 },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let seg = sample();
        let decoded = Segment::decode(&seg.encode()).unwrap();
        assert_eq!(decoded, seg);
        assert_eq!(decoded.epoch_lo(), 0);
        assert_eq!(decoded.epoch_hi(), 2);
        assert_eq!(decoded.num_docs(), 19);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut garbled = bytes.clone();
            garbled[i] ^= 0x01;
            assert!(
                matches!(Segment::decode(&garbled), Err(StoreError::Corrupt { .. })),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().encode();
        for cut in [0, 3, 4, 23, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    Segment::decode(&bytes[..cut]),
                    Err(StoreError::Corrupt { .. })
                ),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn non_contiguous_batches_rejected() {
        let seg = Segment {
            collection: vec![1, 2, 3],
            batches: vec![
                SegmentBatch { epoch: 0, docs: 1 },
                SegmentBatch { epoch: 2, docs: 1 },
            ],
        };
        assert_eq!(
            Segment::decode(&seg.encode()),
            Err(StoreError::Corrupt {
                what: "segment batch epochs not contiguous"
            })
        );
    }

    #[test]
    fn empty_batch_list_rejected() {
        let seg = Segment {
            collection: vec![9; 40],
            batches: vec![],
        };
        assert_eq!(
            Segment::decode(&seg.encode()),
            Err(StoreError::Corrupt {
                what: "segment covers no batches"
            })
        );
    }
}
