//! The durable, versioned index store.
//!
//! See the crate docs for the durability contract. In short: a store
//! directory holds immutable segments, an append-only WAL and an
//! atomically replaced manifest. Epoch `0` is the base build; every
//! synced WAL record commits exactly one further epoch. Checkpointing
//! turns pending WAL batches into segments and truncates the WAL;
//! compaction merges segments left-to-right (the same association order
//! the in-memory oracle uses, which keeps rankings byte-identical).

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use teraphim_engine::Collection;
use teraphim_text::sgml::TrecDoc;
use teraphim_text::Analyzer;

use crate::fail::{CrashPoint, FailingFile};
use crate::manifest::{Manifest, SegmentEntry};
use crate::segment::{Segment, SegmentBatch};
use crate::wal::{self, WalTail};
use crate::{io_err, Result, StoreError};

/// File name of the manifest.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// File name of the write-ahead log.
pub const WAL_FILE: &str = "wal.log";

/// Tuning knobs for an [`IndexStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Checkpoint automatically once this many batches are pending in
    /// the WAL (`0` disables automatic checkpoints).
    pub checkpoint_batches: usize,
    /// Compact down to a single segment when a checkpoint leaves more
    /// than this many segments (`0` disables automatic compaction).
    pub merge_threshold: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            checkpoint_batches: 8,
            merge_threshold: 6,
        }
    }
}

/// Summary returned by [`IndexStore::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStatus {
    /// Newest durable epoch.
    pub epoch: u64,
    /// Number of live segment files.
    pub segments: usize,
    /// Batches sitting in the WAL, not yet checkpointed.
    pub pending_batches: usize,
    /// Total documents across all durable batches.
    pub num_docs: u64,
}

/// A durable, versioned store for one collection.
///
/// The store does not own the live in-memory collection — callers (a
/// `Librarian`, the CLI) keep it and follow the write-ahead discipline:
/// call [`IndexStore::log_batch`] first, and only on success apply the
/// same batch in memory with `Collection::append_documents`.
#[derive(Debug)]
pub struct IndexStore {
    dir: PathBuf,
    manifest: Manifest,
    wal: File,
    pending: Vec<(u64, Vec<TrecDoc>)>,
    epoch: u64,
    options: StoreOptions,
    crash: Option<CrashPoint>,
    poisoned: bool,
}

impl IndexStore {
    /// Creates a new store in `dir` (made if absent), building epoch 0
    /// from `docs`, and returns the store plus the live collection.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Exists`] if `dir` already holds a manifest,
    /// or [`StoreError::Io`] on filesystem failure.
    pub fn create(
        dir: &Path,
        name: &str,
        analyzer: &Analyzer,
        docs: &[TrecDoc],
    ) -> Result<(IndexStore, Collection)> {
        Self::create_with(dir, name, analyzer, docs, StoreOptions::default())
    }

    /// [`IndexStore::create`] with explicit [`StoreOptions`].
    ///
    /// # Errors
    ///
    /// As [`IndexStore::create`].
    pub fn create_with(
        dir: &Path,
        name: &str,
        analyzer: &Analyzer,
        docs: &[TrecDoc],
        options: StoreOptions,
    ) -> Result<(IndexStore, Collection)> {
        std::fs::create_dir_all(dir).map_err(io_err("create store dir"))?;
        if dir.join(MANIFEST_FILE).exists() {
            return Err(StoreError::Exists);
        }
        let analyzer = Analyzer::new()
            .with_stopping(analyzer.stopping())
            .with_stemming(analyzer.stemming());
        let stopping = analyzer.stopping();
        let stemming = analyzer.stemming();
        let collection = Collection::build(name, analyzer, docs);
        let base = Segment {
            collection: collection.to_bytes(),
            batches: vec![SegmentBatch {
                epoch: 0,
                docs: docs.len() as u64,
            }],
        };
        let file = segment_file_name(0);
        write_file_synced(&dir.join(&file), &base.encode())?;
        let manifest = Manifest {
            name: name.to_owned(),
            stopping,
            stemming,
            epoch: 0,
            next_segment_id: 1,
            segments: vec![SegmentEntry {
                file,
                batches: base.batches,
            }],
        };
        write_manifest_atomic(dir, &manifest)?;
        let wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(dir.join(WAL_FILE))
            .map_err(io_err("create wal"))?;
        Ok((
            IndexStore {
                dir: dir.to_path_buf(),
                manifest,
                wal,
                pending: Vec::new(),
                epoch: 0,
                options,
                crash: None,
                poisoned: false,
            },
            collection,
        ))
    }

    /// Opens an existing store, recovering to the last durable epoch:
    /// segments are loaded in epoch order and the WAL's valid prefix is
    /// replayed on top. A torn WAL tail (the only crash damage possible)
    /// is truncated away; corruption anywhere else is a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Missing`] if `dir` has no manifest, and
    /// [`StoreError::Corrupt`]/[`StoreError::BadVersion`] for damaged
    /// stores.
    pub fn open(dir: &Path) -> Result<(IndexStore, Collection)> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// [`IndexStore::open`] with explicit [`StoreOptions`].
    ///
    /// # Errors
    ///
    /// As [`IndexStore::open`].
    pub fn open_with(dir: &Path, options: StoreOptions) -> Result<(IndexStore, Collection)> {
        let manifest_bytes = match std::fs::read(dir.join(MANIFEST_FILE)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(StoreError::Missing),
            Err(e) => return Err(io_err("read manifest")(e)),
        };
        let manifest = Manifest::decode(&manifest_bytes)?;

        // Cold-open: deserialize the first segment, merge the rest in.
        let mut collection: Option<Collection> = None;
        for entry in &manifest.segments {
            let segment = read_segment(dir, entry)?;
            let part = Collection::from_bytes(&segment.collection)?;
            collection = Some(match collection {
                None => part,
                Some(mut acc) => {
                    acc.absorb(&part)?;
                    acc
                }
            });
        }
        let mut collection = collection.ok_or(StoreError::Corrupt {
            what: "manifest lists no segments",
        })?;

        // Replay the WAL's valid prefix on top of the checkpointed state.
        let wal_bytes = match std::fs::read(dir.join(WAL_FILE)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err("read wal")(e)),
        };
        let scanned = wal::scan(&wal_bytes)?;
        let mut pending = Vec::new();
        let mut epoch = manifest.epoch;
        for record in scanned.records {
            if record.epoch <= manifest.epoch {
                // Stale record from a crash between manifest replacement
                // and WAL truncation; the batch is already in a segment.
                continue;
            }
            if record.epoch != epoch + 1 {
                return Err(StoreError::Corrupt {
                    what: "wal epoch out of order",
                });
            }
            collection.append_documents(&record.docs)?;
            pending.push((record.epoch, record.docs));
            epoch = record.epoch;
        }

        let mut wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(WAL_FILE))
            .map_err(io_err("open wal"))?;
        if !matches!(scanned.tail, WalTail::Clean) {
            wal.set_len(scanned.valid_len)
                .map_err(io_err("truncate torn wal tail"))?;
            wal.sync_data().map_err(io_err("sync wal"))?;
        }
        wal.seek(SeekFrom::End(0)).map_err(io_err("seek wal"))?;

        Ok((
            IndexStore {
                dir: dir.to_path_buf(),
                manifest,
                wal,
                pending,
                epoch,
                options,
                crash: None,
                poisoned: false,
            },
            collection,
        ))
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The collection name recorded in the manifest.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.manifest.name
    }

    /// The newest durable epoch. Epoch 0 is the base build; each synced
    /// WAL record adds one.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live segment files.
    #[must_use]
    pub fn num_segments(&self) -> usize {
        self.manifest.segments.len()
    }

    /// Number of batches pending in the WAL (not yet checkpointed).
    #[must_use]
    pub fn pending_batches(&self) -> usize {
        self.pending.len()
    }

    /// Total documents across all durable batches.
    #[must_use]
    pub fn num_docs(&self) -> u64 {
        self.manifest.num_docs()
            + self
                .pending
                .iter()
                .map(|(_, d)| d.len() as u64)
                .sum::<u64>()
    }

    /// Reconstructs the analyzer recorded in the manifest.
    #[must_use]
    pub fn analyzer(&self) -> Analyzer {
        Analyzer::new()
            .with_stopping(self.manifest.stopping)
            .with_stemming(self.manifest.stemming)
    }

    /// Arms a [`CrashPoint`] that will fire during the next
    /// [`IndexStore::log_batch`] (test harness). The simulated process
    /// dies: the call returns [`StoreError::Crashed`], the store is
    /// poisoned, and only a fresh [`IndexStore::open`] can continue.
    pub fn inject_crash(&mut self, point: CrashPoint) {
        self.crash = Some(point);
    }

    /// Durably commits one document batch: the WAL record is appended
    /// and synced, and only then does the epoch advance. The caller must
    /// mirror the batch into its in-memory collection afterwards.
    ///
    /// Returns the new epoch.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on write failure (the epoch does not
    /// advance), [`StoreError::Crashed`] if an injected crash point
    /// fired, or [`StoreError::Poisoned`] after one did.
    pub fn log_batch(&mut self, docs: &[TrecDoc]) -> Result<u64> {
        if self.poisoned {
            return Err(StoreError::Poisoned);
        }
        let next = self.epoch + 1;
        let record = wal::encode_record(next, docs);
        if let Some(point) = self.crash.take() {
            let mut failing = FailingFile::new(&mut self.wal, point);
            let _ = failing.write_all(&record);
            let _ = self.wal.sync_data();
            self.poisoned = true;
            return Err(StoreError::Crashed);
        }
        self.wal.write_all(&record).map_err(io_err("wal append"))?;
        self.wal.sync_data().map_err(io_err("wal sync"))?;
        self.epoch = next;
        self.pending.push((next, docs.to_vec()));
        if self.options.checkpoint_batches > 0
            && self.pending.len() >= self.options.checkpoint_batches
        {
            self.checkpoint()?;
        }
        Ok(next)
    }

    /// Folds pending WAL batches into per-batch segments, replaces the
    /// manifest atomically and truncates the WAL. Runs compaction if the
    /// segment count then exceeds the merge threshold.
    ///
    /// Both crash windows are idempotent: a crash after segment writes
    /// but before the manifest rename leaves orphan files the manifest
    /// never references; a crash after the rename but before WAL
    /// truncation leaves stale records that replay skips.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.poisoned {
            return Err(StoreError::Poisoned);
        }
        if self.pending.is_empty() {
            return Ok(());
        }
        let mut manifest = self.manifest.clone();
        for (epoch, docs) in &self.pending {
            // The delta collection is built exactly like the delta that
            // `append_documents` builds in memory, so absorbing this
            // segment later reproduces the oracle's merge bit-for-bit.
            let delta = Collection::build(&manifest.name, self.analyzer(), docs);
            let segment = Segment {
                collection: delta.to_bytes(),
                batches: vec![SegmentBatch {
                    epoch: *epoch,
                    docs: docs.len() as u64,
                }],
            };
            let file = segment_file_name(manifest.next_segment_id);
            manifest.next_segment_id += 1;
            write_file_synced(&self.dir.join(&file), &segment.encode())?;
            manifest.segments.push(SegmentEntry {
                file,
                batches: segment.batches,
            });
            manifest.epoch = *epoch;
        }
        write_manifest_atomic(&self.dir, &manifest)?;
        self.manifest = manifest;
        self.pending.clear();
        self.wal.set_len(0).map_err(io_err("truncate wal"))?;
        self.wal
            .seek(SeekFrom::Start(0))
            .map_err(io_err("seek wal"))?;
        self.wal.sync_data().map_err(io_err("sync wal"))?;
        if self.options.merge_threshold > 0
            && self.manifest.segments.len() > self.options.merge_threshold
        {
            self.compact()?;
        }
        Ok(())
    }

    /// Checkpoints any pending WAL batches, then merges all live
    /// segments into one, left-to-right — the same association order
    /// the in-memory oracle applies batches in, so the compacted index
    /// stays byte-identical. Old segment files are deleted
    /// (best-effort) after the manifest stops referencing them.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] or [`StoreError::Corrupt`] if a
    /// segment fails to load.
    pub fn compact(&mut self) -> Result<()> {
        if self.poisoned {
            return Err(StoreError::Poisoned);
        }
        self.checkpoint()?;
        if self.manifest.segments.len() <= 1 {
            return Ok(());
        }
        let mut merged: Option<Collection> = None;
        let mut batches = Vec::new();
        for entry in &self.manifest.segments {
            let segment = read_segment(&self.dir, entry)?;
            let part = Collection::from_bytes(&segment.collection)?;
            batches.extend(segment.batches);
            merged = Some(match merged {
                None => part,
                Some(mut acc) => {
                    acc.absorb(&part)?;
                    acc
                }
            });
        }
        let merged = merged.expect("at least two segments");
        let segment = Segment {
            collection: merged.to_bytes(),
            batches,
        };
        let file = segment_file_name(self.manifest.next_segment_id);
        write_file_synced(&self.dir.join(&file), &segment.encode())?;
        let old: Vec<String> = self
            .manifest
            .segments
            .iter()
            .map(|e| e.file.clone())
            .collect();
        let mut manifest = self.manifest.clone();
        manifest.next_segment_id += 1;
        manifest.segments = vec![SegmentEntry {
            file,
            batches: segment.batches,
        }];
        write_manifest_atomic(&self.dir, &manifest)?;
        self.manifest = manifest;
        for file in old {
            let _ = std::fs::remove_file(self.dir.join(file));
        }
        Ok(())
    }

    /// Deterministically replays the store up to `epoch`, yielding a
    /// collection byte-identical to an in-memory oracle that built the
    /// base and appended every batch `1..=epoch` in order ("as-of"
    /// search).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NoSuchEpoch`] if `epoch` is beyond the
    /// durable one, or [`StoreError::Corrupt`]/[`StoreError::Io`] if the
    /// store cannot be read.
    pub fn collection_at(&self, epoch: u64) -> Result<Collection> {
        if epoch > self.epoch {
            return Err(StoreError::NoSuchEpoch {
                requested: epoch,
                durable: self.epoch,
            });
        }
        let mut batches: Vec<(u64, Vec<TrecDoc>)> = Vec::new();
        for entry in &self.manifest.segments {
            if entry.batches.first().is_none_or(|b| b.epoch > epoch) {
                break;
            }
            let segment = read_segment(&self.dir, entry)?;
            let part = Collection::from_bytes(&segment.collection)?;
            let docs = part.export_docs()?;
            let mut offset = 0usize;
            for batch in &segment.batches {
                let end = offset + batch.docs as usize;
                if batch.epoch <= epoch {
                    batches.push((batch.epoch, docs[offset..end].to_vec()));
                }
                offset = end;
            }
        }
        for (e, docs) in &self.pending {
            if *e <= epoch {
                batches.push((*e, docs.clone()));
            }
        }
        let mut iter = batches.into_iter();
        let (base_epoch, base) = iter.next().ok_or(StoreError::Corrupt {
            what: "store has no base batch",
        })?;
        debug_assert_eq!(base_epoch, 0);
        let mut collection = Collection::build(&self.manifest.name, self.analyzer(), &base);
        for (_, docs) in iter {
            collection.append_documents(&docs)?;
        }
        Ok(collection)
    }

    /// Full integrity scan: every segment decodes, matches the manifest
    /// and the WAL parses cleanly up to its valid prefix.
    ///
    /// # Errors
    ///
    /// Returns the first [`StoreError`] encountered.
    pub fn verify(&self) -> Result<StoreStatus> {
        self.manifest.validate()?;
        for entry in &self.manifest.segments {
            read_segment(&self.dir, entry)?;
        }
        let wal_bytes = match std::fs::read(self.dir.join(WAL_FILE)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err("read wal")(e)),
        };
        wal::scan(&wal_bytes)?;
        Ok(StoreStatus {
            epoch: self.epoch,
            segments: self.manifest.segments.len(),
            pending_batches: self.pending.len(),
            num_docs: self.num_docs(),
        })
    }
}

fn segment_file_name(id: u64) -> String {
    format!("seg-{id:06}.seg")
}

/// Reads and validates one segment, cross-checking the manifest entry's
/// batch list against the segment's own meta.
fn read_segment(dir: &Path, entry: &SegmentEntry) -> Result<Segment> {
    let bytes = std::fs::read(dir.join(&entry.file)).map_err(io_err("read segment"))?;
    let segment = Segment::decode(&bytes)?;
    if segment.batches != entry.batches {
        return Err(StoreError::Corrupt {
            what: "segment batches disagree with manifest",
        });
    }
    Ok(segment)
}

/// Writes `bytes` to `path` and syncs before returning.
fn write_file_synced(path: &Path, bytes: &[u8]) -> Result<()> {
    let mut file = File::create(path).map_err(io_err("create file"))?;
    file.write_all(bytes).map_err(io_err("write file"))?;
    file.sync_all().map_err(io_err("sync file"))?;
    Ok(())
}

/// Atomically replaces the manifest: write `MANIFEST.tmp`, sync, rename.
fn write_manifest_atomic(dir: &Path, manifest: &Manifest) -> Result<()> {
    let tmp = dir.join("MANIFEST.tmp");
    write_file_synced(&tmp, &manifest.encode())?;
    std::fs::rename(&tmp, dir.join(MANIFEST_FILE)).map_err(io_err("rename manifest"))?;
    // Durability of the rename itself needs a directory sync where the
    // platform supports opening directories; best-effort elsewhere.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fail::CrashMode;
    use crate::tempdir::TempDir;

    fn doc(docno: &str, text: &str) -> TrecDoc {
        TrecDoc {
            docno: docno.into(),
            text: text.into(),
        }
    }

    fn base_docs() -> Vec<TrecDoc> {
        vec![
            doc("D1", "the cat sat on the mat"),
            doc("D2", "the dog chased the cat across the yard"),
            doc("D3", "penguins are aquatic flightless birds"),
        ]
    }

    fn batch(n: u64) -> Vec<TrecDoc> {
        vec![
            doc(
                &format!("B{n}-1"),
                &format!("batch {n} speaks of cats and tides"),
            ),
            doc(&format!("B{n}-2"), &format!("volume {n} covers dogs")),
        ]
    }

    /// Rankings for a spread of queries, as raw bits for exact compare.
    fn fingerprint(c: &Collection) -> Vec<(u32, u64)> {
        ["cat dog", "penguins", "tides", "batch volume", "mat yard"]
            .iter()
            .flat_map(|q| {
                c.ranked_query(q, 10)
                    .into_iter()
                    .map(|h| (h.doc, h.score.to_bits()))
            })
            .collect()
    }

    fn manual() -> StoreOptions {
        StoreOptions {
            checkpoint_batches: 0,
            merge_threshold: 0,
        }
    }

    #[test]
    fn create_open_roundtrip() {
        let dir = TempDir::new("roundtrip").unwrap();
        let (store, built) =
            IndexStore::create(dir.path(), "demo", &Analyzer::default(), &base_docs()).unwrap();
        assert_eq!(store.epoch(), 0);
        drop(store);
        let (store, opened) = IndexStore::open(dir.path()).unwrap();
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.name(), "demo");
        assert_eq!(fingerprint(&opened), fingerprint(&built));
    }

    #[test]
    fn create_refuses_existing_store() {
        let dir = TempDir::new("exists").unwrap();
        IndexStore::create(dir.path(), "demo", &Analyzer::default(), &[]).unwrap();
        assert_eq!(
            IndexStore::create(dir.path(), "demo", &Analyzer::default(), &[])
                .err()
                .unwrap(),
            StoreError::Exists
        );
    }

    #[test]
    fn open_missing_directory_is_typed() {
        let dir = TempDir::new("missing").unwrap();
        assert!(matches!(
            IndexStore::open(&dir.path().join("nope")),
            Err(StoreError::Missing)
        ));
    }

    #[test]
    fn wal_replay_matches_oracle_exactly() {
        let dir = TempDir::new("replay").unwrap();
        let (mut store, mut oracle) = IndexStore::create_with(
            dir.path(),
            "demo",
            &Analyzer::default(),
            &base_docs(),
            manual(),
        )
        .unwrap();
        for n in 1..=4u64 {
            let docs = batch(n);
            assert_eq!(store.log_batch(&docs).unwrap(), n);
            oracle.append_documents(&docs).unwrap();
        }
        assert_eq!(store.epoch(), 4);
        drop(store);
        let (store, recovered) = IndexStore::open(dir.path()).unwrap();
        assert_eq!(store.epoch(), 4);
        assert_eq!(store.pending_batches(), 4);
        assert_eq!(fingerprint(&recovered), fingerprint(&oracle));
    }

    #[test]
    fn checkpoint_and_compact_preserve_rankings() {
        let dir = TempDir::new("checkpoint").unwrap();
        let (mut store, mut oracle) = IndexStore::create_with(
            dir.path(),
            "demo",
            &Analyzer::default(),
            &base_docs(),
            manual(),
        )
        .unwrap();
        for n in 1..=3u64 {
            store.log_batch(&batch(n)).unwrap();
            oracle.append_documents(&batch(n)).unwrap();
        }
        store.checkpoint().unwrap();
        assert_eq!(store.pending_batches(), 0);
        assert_eq!(store.num_segments(), 4);
        {
            let (reopened, recovered) = IndexStore::open(dir.path()).unwrap();
            assert_eq!(reopened.epoch(), 3);
            assert_eq!(fingerprint(&recovered), fingerprint(&oracle));
        }
        let mut store = IndexStore::open(dir.path()).unwrap().0;
        store.compact().unwrap();
        assert_eq!(store.num_segments(), 1);
        let (reopened, recovered) = IndexStore::open(dir.path()).unwrap();
        assert_eq!(reopened.epoch(), 3);
        assert_eq!(fingerprint(&recovered), fingerprint(&oracle));
    }

    #[test]
    fn compact_folds_pending_wal_batches_in() {
        // A single-segment store with batches still pending in the WAL:
        // compact must checkpoint them first, not no-op on segment
        // count alone.
        let dir = TempDir::new("compact-pending").unwrap();
        let (mut store, mut oracle) = IndexStore::create_with(
            dir.path(),
            "demo",
            &Analyzer::default(),
            &base_docs(),
            manual(),
        )
        .unwrap();
        for n in 1..=2u64 {
            store.log_batch(&batch(n)).unwrap();
            oracle.append_documents(&batch(n)).unwrap();
        }
        assert_eq!((store.num_segments(), store.pending_batches()), (1, 2));
        store.compact().unwrap();
        assert_eq!((store.num_segments(), store.pending_batches()), (1, 0));
        let (reopened, recovered) = IndexStore::open(dir.path()).unwrap();
        assert_eq!(reopened.epoch(), 2);
        assert_eq!(reopened.pending_batches(), 0);
        assert_eq!(fingerprint(&recovered), fingerprint(&oracle));
    }

    #[test]
    fn auto_checkpoint_and_merge_fire() {
        let dir = TempDir::new("auto").unwrap();
        let options = StoreOptions {
            checkpoint_batches: 2,
            merge_threshold: 3,
        };
        let (mut store, _) = IndexStore::create_with(
            dir.path(),
            "demo",
            &Analyzer::default(),
            &base_docs(),
            options,
        )
        .unwrap();
        for n in 1..=6u64 {
            store.log_batch(&batch(n)).unwrap();
        }
        // Auto-checkpoints at 2 pending; auto-compacts past 3 segments.
        assert!(store.pending_batches() < 2);
        assert!(store.num_segments() <= 3);
        assert_eq!(store.epoch(), 6);
        let (reopened, _) = IndexStore::open(dir.path()).unwrap();
        assert_eq!(reopened.epoch(), 6);
    }

    #[test]
    fn collection_at_replays_every_epoch() {
        let dir = TempDir::new("asof").unwrap();
        let analyzer = Analyzer::default();
        let (mut store, _) =
            IndexStore::create_with(dir.path(), "demo", &analyzer, &base_docs(), manual()).unwrap();
        let mut oracles = vec![Collection::build("demo", Analyzer::default(), &base_docs())];
        for n in 1..=3u64 {
            store.log_batch(&batch(n)).unwrap();
            let mut next = Collection::build("demo", Analyzer::default(), &base_docs());
            for m in 1..=n {
                next.append_documents(&batch(m)).unwrap();
            }
            oracles.push(next);
        }
        // Replays must be exact both before and after checkpointing.
        for round in 0..2 {
            for (e, oracle) in oracles.iter().enumerate() {
                let as_of = store.collection_at(e as u64).unwrap();
                assert_eq!(
                    fingerprint(&as_of),
                    fingerprint(oracle),
                    "epoch {e} round {round}"
                );
            }
            store.checkpoint().unwrap();
        }
        assert!(matches!(
            store.collection_at(99),
            Err(StoreError::NoSuchEpoch {
                requested: 99,
                durable: 3
            })
        ));
    }

    #[test]
    fn injected_crash_poisons_store_and_reopen_recovers() {
        let dir = TempDir::new("poison").unwrap();
        let (mut store, _) = IndexStore::create_with(
            dir.path(),
            "demo",
            &Analyzer::default(),
            &base_docs(),
            manual(),
        )
        .unwrap();
        store.log_batch(&batch(1)).unwrap();
        store.inject_crash(CrashPoint {
            offset: 7,
            mode: CrashMode::Truncate,
        });
        assert_eq!(store.log_batch(&batch(2)), Err(StoreError::Crashed));
        assert_eq!(store.log_batch(&batch(3)), Err(StoreError::Poisoned));
        assert_eq!(store.checkpoint(), Err(StoreError::Poisoned));
        drop(store);
        let (store, _) = IndexStore::open(dir.path()).unwrap();
        assert_eq!(store.epoch(), 1);
        store.verify().unwrap();
    }

    #[test]
    fn verify_reports_status() {
        let dir = TempDir::new("verify").unwrap();
        let (mut store, _) = IndexStore::create_with(
            dir.path(),
            "demo",
            &Analyzer::default(),
            &base_docs(),
            manual(),
        )
        .unwrap();
        store.log_batch(&batch(1)).unwrap();
        let status = store.verify().unwrap();
        assert_eq!(
            status,
            StoreStatus {
                epoch: 1,
                segments: 1,
                pending_batches: 1,
                num_docs: 5,
            }
        );
    }

    #[test]
    fn corrupted_segment_fails_open_with_typed_error() {
        let dir = TempDir::new("corrupt-seg").unwrap();
        IndexStore::create(dir.path(), "demo", &Analyzer::default(), &base_docs()).unwrap();
        let seg = dir.path().join(segment_file_name(0));
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();
        assert!(matches!(
            IndexStore::open(dir.path()),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn corrupted_manifest_fails_open_with_typed_error() {
        let dir = TempDir::new("corrupt-man").unwrap();
        IndexStore::create(dir.path(), "demo", &Analyzer::default(), &base_docs()).unwrap();
        let path = dir.path().join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            IndexStore::open(dir.path()),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn analyzer_flags_survive_reopen() {
        let dir = TempDir::new("flags").unwrap();
        let analyzer = Analyzer::new().with_stopping(false).with_stemming(false);
        let (store, _) = IndexStore::create(dir.path(), "raw", &analyzer, &base_docs()).unwrap();
        drop(store);
        let (store, _) = IndexStore::open(dir.path()).unwrap();
        assert!(!store.analyzer().stopping());
        assert!(!store.analyzer().stemming());
    }
}
