//! Self-cleaning scratch directories for tests and benches.
//!
//! The workspace carries no general-purpose temp-dir dependency, and the
//! crash-recovery suites need many isolated store directories per
//! process. [`TempDir`] creates a uniquely named directory under the
//! system temp root and removes it (recursively, best-effort) on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named temporary directory, deleted on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `teraphim-<prefix>-<pid>-<nanos>-<n>` under the system
    /// temp directory.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StoreError::Io`] if the directory cannot be
    /// created.
    pub fn new(prefix: &str) -> crate::Result<TempDir> {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let path = std::env::temp_dir().join(format!(
            "teraphim-{prefix}-{}-{nanos:x}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path).map_err(crate::io_err("create temp dir"))?;
        Ok(TempDir { path })
    }

    /// The directory's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Releases the directory without deleting it (for post-mortem
    /// inspection, e.g. CI artifact upload).
    #[must_use]
    pub fn keep(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let kept;
        {
            let dir = TempDir::new("unit").unwrap();
            kept = dir.path().to_path_buf();
            assert!(kept.is_dir());
            std::fs::write(dir.path().join("f"), b"x").unwrap();
        }
        assert!(!kept.exists());
    }

    #[test]
    fn unique_names() {
        let a = TempDir::new("uniq").unwrap();
        let b = TempDir::new("uniq").unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn keep_preserves_directory() {
        let dir = TempDir::new("keep").unwrap();
        let path = dir.keep();
        assert!(path.is_dir());
        std::fs::remove_dir_all(&path).unwrap();
    }
}
