//! Write-ahead log records for incremental document batches.
//!
//! Each committed `add_docs` batch becomes one record appended to
//! `wal.log` and synced before the in-memory index is touched — the
//! synced record *is* the commit point, and advances the durable epoch
//! by one. The wire format per record:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "TWL1"
//! 4       8     epoch (u64 LE) this record commits
//! 12      4     payload length (u32 LE)
//! 16      4     CRC-32 over epoch ‖ length ‖ payload (u32 LE)
//! 20      n     payload: document batch
//! ```
//!
//! The checksum covers the header's epoch and length fields as well as
//! the payload, so a single garbled byte anywhere after the magic is
//! detected.
//!
//! The payload is a document batch: a `u32` count followed by, per
//! document, length-prefixed docno and text bytes.
//!
//! Recovery ([`scan`]) parses the **valid prefix**. A crash can only
//! damage the *final* record (torn or garbled tail), so an invalid tail
//! is reported as [`WalTail::Torn`] and dropped; an invalid record
//! *followed by more data* cannot be crash damage and fails with a typed
//! [`StoreError::Corrupt`].

use crate::{Result, StoreError};
use teraphim_text::sgml::TrecDoc;

/// Magic bytes opening every WAL record.
pub const RECORD_MAGIC: [u8; 4] = *b"TWL1";
/// Fixed-size record header: magic + epoch + payload length + CRC.
pub const HEADER_LEN: usize = 20;

/// Encodes a document batch as the WAL payload.
#[must_use]
pub fn encode_batch(docs: &[TrecDoc]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(docs.len() as u32).to_le_bytes());
    for doc in docs {
        let docno = doc.docno.as_bytes();
        out.extend_from_slice(&(docno.len() as u32).to_le_bytes());
        out.extend_from_slice(docno);
        let text = doc.text.as_bytes();
        out.extend_from_slice(&(text.len() as u32).to_le_bytes());
        out.extend_from_slice(text);
    }
    out
}

/// Decodes a WAL payload back into a document batch.
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] on truncation, bad UTF-8 or trailing
/// bytes.
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<TrecDoc>> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        let slice = bytes.get(*pos..*pos + n).ok_or(StoreError::Corrupt {
            what: "wal batch truncated",
        })?;
        *pos += n;
        Ok(slice)
    };
    let take_u32 = |pos: &mut usize| -> Result<u32> {
        Ok(u32::from_le_bytes(
            take(pos, 4)?.try_into().expect("4 bytes"),
        ))
    };
    let count = take_u32(&mut pos)? as usize;
    let mut docs = Vec::with_capacity(count.min(bytes.len()));
    for _ in 0..count {
        let docno_len = take_u32(&mut pos)? as usize;
        let docno = std::str::from_utf8(take(&mut pos, docno_len)?)
            .map_err(|_| StoreError::Corrupt {
                what: "wal docno is not UTF-8",
            })?
            .to_owned();
        let text_len = take_u32(&mut pos)? as usize;
        let text = std::str::from_utf8(take(&mut pos, text_len)?)
            .map_err(|_| StoreError::Corrupt {
                what: "wal text is not UTF-8",
            })?
            .to_owned();
        docs.push(TrecDoc { docno, text });
    }
    if pos != bytes.len() {
        return Err(StoreError::Corrupt {
            what: "trailing bytes after wal batch",
        });
    }
    Ok(docs)
}

/// Encodes one complete record (header + payload) committing `epoch`.
#[must_use]
pub fn encode_record(epoch: u64, docs: &[TrecDoc]) -> Vec<u8> {
    let payload = encode_batch(docs);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&RECORD_MAGIC);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&record_crc(epoch, &payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// CRC-32 over the epoch, payload length and payload of one record.
fn record_crc(epoch: u64, payload: &[u8]) -> u32 {
    let mut h = teraphim_compress::checksum::Crc32::new();
    h.update(&epoch.to_le_bytes());
    h.update(&(payload.len() as u32).to_le_bytes());
    h.update(payload);
    h.finish()
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The epoch this record committed.
    pub epoch: u64,
    /// The document batch.
    pub docs: Vec<TrecDoc>,
}

/// What the scanner found at the end of the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// The log ends exactly on a record boundary.
    Clean,
    /// The final bytes are a torn or garbled record (crash damage); they
    /// were dropped.
    Torn(&'static str),
}

/// Result of scanning a WAL byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// All fully valid records, in file order.
    pub records: Vec<WalRecord>,
    /// Length of the valid prefix in bytes (the tail past this point, if
    /// any, is crash damage and should be truncated away).
    pub valid_len: u64,
    /// How the log ended.
    pub tail: WalTail,
}

/// Scans a WAL byte stream into its valid record prefix.
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] if an invalid record is followed by
/// further data — damage a crash cannot produce.
pub fn scan(bytes: &[u8]) -> Result<WalScan> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(WalScan {
                records,
                valid_len: pos as u64,
                tail: WalTail::Clean,
            });
        }
        if remaining < HEADER_LEN {
            return Ok(WalScan {
                records,
                valid_len: pos as u64,
                tail: WalTail::Torn("truncated record header"),
            });
        }
        let head = &bytes[pos..pos + HEADER_LEN];
        if head[0..4] != RECORD_MAGIC {
            return Ok(WalScan {
                records,
                valid_len: pos as u64,
                tail: WalTail::Torn("bad record magic at tail"),
            });
        }
        let epoch = u64::from_le_bytes(head[4..12].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(head[12..16].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(head[16..20].try_into().expect("4 bytes"));
        if remaining < HEADER_LEN + len {
            return Ok(WalScan {
                records,
                valid_len: pos as u64,
                tail: WalTail::Torn("truncated record payload"),
            });
        }
        let payload = &bytes[pos + HEADER_LEN..pos + HEADER_LEN + len];
        if record_crc(epoch, payload) != crc {
            if pos + HEADER_LEN + len == bytes.len() {
                return Ok(WalScan {
                    records,
                    valid_len: pos as u64,
                    tail: WalTail::Torn("checksum mismatch in final record"),
                });
            }
            // A checksum failure mid-log cannot be crash damage: every
            // earlier record was synced before the next was written.
            return Err(StoreError::Corrupt {
                what: "wal record checksum",
            });
        }
        let docs = decode_batch(payload)?;
        records.push(WalRecord { epoch, docs });
        pos += HEADER_LEN + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(docno: &str, text: &str) -> TrecDoc {
        TrecDoc {
            docno: docno.into(),
            text: text.into(),
        }
    }

    fn sample_log() -> (Vec<u8>, Vec<WalRecord>) {
        let batches = vec![
            (1u64, vec![doc("A-1", "alpha beta"), doc("A-2", "gamma")]),
            (2u64, vec![doc("B-1", "delta epsilon zeta")]),
            (3u64, vec![]),
        ];
        let mut bytes = Vec::new();
        let mut records = Vec::new();
        for (epoch, docs) in batches {
            bytes.extend_from_slice(&encode_record(epoch, &docs));
            records.push(WalRecord { epoch, docs });
        }
        (bytes, records)
    }

    #[test]
    fn roundtrip_multiple_records() {
        let (bytes, records) = sample_log();
        let scanned = scan(&bytes).unwrap();
        assert_eq!(scanned.records, records);
        assert_eq!(scanned.valid_len, bytes.len() as u64);
        assert_eq!(scanned.tail, WalTail::Clean);
    }

    #[test]
    fn empty_log_is_clean() {
        let scanned = scan(&[]).unwrap();
        assert!(scanned.records.is_empty());
        assert_eq!(scanned.tail, WalTail::Clean);
    }

    #[test]
    fn torn_tail_drops_only_final_record() {
        let (bytes, records) = sample_log();
        let second_end = bytes.len() - encode_record(3, &[]).len();
        for cut in second_end + 1..bytes.len() {
            let scanned = scan(&bytes[..cut]).unwrap();
            assert_eq!(scanned.records, records[..2], "cut {cut}");
            assert_eq!(scanned.valid_len, second_end as u64, "cut {cut}");
            assert!(matches!(scanned.tail, WalTail::Torn(_)), "cut {cut}");
        }
    }

    #[test]
    fn garbled_final_record_is_torn() {
        let (bytes, records) = sample_log();
        // Garble every byte position of the final record in turn: the
        // scan must always salvage exactly the first two records.
        let final_start = bytes.len() - encode_record(3, &[]).len();
        for i in final_start..bytes.len() {
            let mut garbled = bytes.clone();
            garbled[i] ^= 0xA5;
            let scanned = scan(&garbled).unwrap();
            assert_eq!(scanned.records, records[..2], "garble at {i}");
            assert_eq!(scanned.valid_len, final_start as u64, "garble at {i}");
            assert!(matches!(scanned.tail, WalTail::Torn(_)), "garble at {i}");
        }
    }

    #[test]
    fn garbled_middle_record_is_typed_corruption() {
        let (mut bytes, _) = sample_log();
        // Garble a payload byte of the FIRST record (well before the
        // tail): scan must fail with a typed error, not salvage.
        bytes[HEADER_LEN + 6] ^= 0x10;
        match scan(&bytes) {
            Err(StoreError::Corrupt { what }) => assert_eq!(what, "wal record checksum"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn batch_decode_rejects_trailing_bytes() {
        let mut payload = encode_batch(&[doc("X", "y")]);
        payload.push(0);
        assert!(matches!(
            decode_batch(&payload),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn batch_decode_rejects_truncation() {
        let payload = encode_batch(&[doc("X-1", "some words here")]);
        for cut in 0..payload.len() {
            assert!(decode_batch(&payload[..cut]).is_err(), "cut {cut}");
        }
    }
}
