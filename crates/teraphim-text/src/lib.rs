//! Text processing for TERAPHIM: tokenization, stopping, stemming and
//! TREC-style SGML document parsing.
//!
//! The paper's query pipeline applies "simple transformations such as
//! removal of stop-words" before evaluation; MG additionally case-folds
//! and stems terms. This crate implements that pipeline:
//!
//! * [`tokenize`] — case-folded alphanumeric tokenization.
//! * [`stopwords`] — the classic short English stop list.
//! * [`stem`] — the Porter stemming algorithm.
//! * [`sgml`] — parsing of TREC-format `<DOC>` collections.
//! * [`Analyzer`] — the composed pipeline used by indexing and querying.
//!
//! # Examples
//!
//! ```
//! use teraphim_text::Analyzer;
//!
//! let analyzer = Analyzer::default();
//! let terms = analyzer.analyze("The Libraries' distributed RETRIEVAL systems!");
//! assert_eq!(terms, vec!["librari", "distribut", "retriev", "system"]);
//! ```

pub mod sgml;
pub mod stem;
pub mod stopwords;
pub mod tokenize;

use std::fmt;

/// The composed text-analysis pipeline: tokenize → stop → stem.
///
/// The same analyzer instance must be used for indexing and querying a
/// collection; TERAPHIM requires all librarians and receptionists to share
/// it (the paper's "librarians and receptionist are similar enough to
/// share information such as vocabulary").
#[derive(Debug, Clone)]
pub struct Analyzer {
    stop: bool,
    stem: bool,
    min_len: usize,
    max_len: usize,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer {
            stop: true,
            stem: true,
            min_len: 1,
            max_len: 64,
        }
    }
}

impl fmt::Display for Analyzer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "analyzer(stop={}, stem={}, len={}..={})",
            self.stop, self.stem, self.min_len, self.max_len
        )
    }
}

impl Analyzer {
    /// Creates the default pipeline (stopping and stemming enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// An analyzer that neither stops nor stems (raw case-folded tokens).
    pub fn raw() -> Self {
        Analyzer {
            stop: false,
            stem: false,
            ..Self::default()
        }
    }

    /// Enables or disables stop-word removal.
    pub fn with_stopping(mut self, stop: bool) -> Self {
        self.stop = stop;
        self
    }

    /// Enables or disables Porter stemming.
    pub fn with_stemming(mut self, stem: bool) -> Self {
        self.stem = stem;
        self
    }

    /// True if stop-word removal is enabled.
    pub fn stopping(&self) -> bool {
        self.stop
    }

    /// True if Porter stemming is enabled.
    pub fn stemming(&self) -> bool {
        self.stem
    }

    /// Runs the full pipeline over `text`, returning index terms in
    /// occurrence order (duplicates preserved).
    pub fn analyze(&self, text: &str) -> Vec<String> {
        tokenize::tokenize(text)
            .filter(|tok| tok.len() >= self.min_len && tok.len() <= self.max_len)
            .filter(|tok| !self.stop || !stopwords::is_stopword(tok))
            .map(|tok| if self.stem { stem::stem(&tok) } else { tok })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline_stops_and_stems() {
        let a = Analyzer::default();
        assert_eq!(a.analyze("the running of THE dogs"), vec!["run", "dog"]);
    }

    #[test]
    fn raw_pipeline_preserves_tokens() {
        let a = Analyzer::raw();
        assert_eq!(
            a.analyze("The Running of the Dogs"),
            vec!["the", "running", "of", "the", "dogs"]
        );
    }

    #[test]
    fn builder_toggles_compose() {
        let a = Analyzer::new().with_stopping(false).with_stemming(true);
        assert_eq!(a.analyze("the cats"), vec!["the", "cat"]);
        let a = Analyzer::new().with_stopping(true).with_stemming(false);
        assert_eq!(a.analyze("the cats"), vec!["cats"]);
    }

    #[test]
    fn duplicates_are_preserved_in_order() {
        let a = Analyzer::raw();
        assert_eq!(a.analyze("b a b"), vec!["b", "a", "b"]);
    }

    #[test]
    fn empty_text_gives_no_terms() {
        assert!(Analyzer::default().analyze("").is_empty());
        assert!(Analyzer::default().analyze("  ,,, !!!").is_empty());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Analyzer::default()).is_empty());
    }
}
