//! Parsing of TREC-format SGML document collections.
//!
//! TREC collections (AP, FR, WSJ, ZIFF on disk 2) are concatenations of
//! `<DOC>` elements, each containing a `<DOCNO>` identifier and one or
//! more text-bearing elements (`<TEXT>`, `<HL>`, `<HEAD>`, ...). The
//! parser here is the pragmatic line-oriented kind used by real TREC
//! tooling: it does not attempt general SGML, only the TREC conventions.
//!
//! The synthetic corpus generator in `teraphim-corpus` exports this same
//! format, so the full pipeline (parse → index → query) is exercised
//! exactly as it would be on the original data.

use std::error::Error;
use std::fmt;

/// A parsed TREC document: identifier plus concatenated text content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrecDoc {
    /// The `<DOCNO>` value, trimmed.
    pub docno: String,
    /// Concatenated contents of the text-bearing elements, in order.
    pub text: String,
}

/// Error from [`parse_trec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgmlError {
    /// A `<DOC>` had no `<DOCNO>` element.
    MissingDocno {
        /// Index of the offending document in the input stream.
        doc_index: usize,
    },
    /// An element open tag was never closed.
    UnclosedElement(&'static str),
}

impl fmt::Display for SgmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgmlError::MissingDocno { doc_index } => {
                write!(f, "document #{doc_index} has no <DOCNO> element")
            }
            SgmlError::UnclosedElement(tag) => write!(f, "unclosed <{tag}> element"),
        }
    }
}

impl Error for SgmlError {}

/// Elements whose character content is treated as document text.
const TEXT_TAGS: &[&str] = &["TEXT", "HL", "HEAD", "HEADLINE", "TTL", "LP", "SUMMARY"];

/// Parses a TREC-format collection into its documents.
///
/// # Errors
///
/// Returns [`SgmlError::MissingDocno`] if a `<DOC>` lacks an identifier
/// and [`SgmlError::UnclosedElement`] on truncated input.
///
/// # Examples
///
/// ```
/// use teraphim_text::sgml::parse_trec;
///
/// let input = "<DOC>\n<DOCNO> AP-1 </DOCNO>\n<TEXT>\nHello world.\n</TEXT>\n</DOC>\n";
/// let docs = parse_trec(input)?;
/// assert_eq!(docs.len(), 1);
/// assert_eq!(docs[0].docno, "AP-1");
/// assert_eq!(docs[0].text.trim(), "Hello world.");
/// # Ok::<(), teraphim_text::sgml::SgmlError>(())
/// ```
pub fn parse_trec(input: &str) -> Result<Vec<TrecDoc>, SgmlError> {
    let mut docs = Vec::new();
    let mut rest = input;
    let mut doc_index = 0usize;
    while let Some(start) = find_tag(rest, "DOC") {
        let after_open = &rest[start..];
        let end = find_close(after_open, "DOC").ok_or(SgmlError::UnclosedElement("DOC"))?;
        let body = &after_open[..end.0];
        docs.push(parse_doc(body, doc_index)?);
        doc_index += 1;
        rest = &after_open[end.1..];
    }
    Ok(docs)
}

/// Serializes documents back to TREC format (used by the corpus
/// exporter).
pub fn to_trec(docs: &[TrecDoc]) -> String {
    let mut out = String::new();
    for doc in docs {
        out.push_str("<DOC>\n<DOCNO> ");
        out.push_str(&doc.docno);
        out.push_str(" </DOCNO>\n<TEXT>\n");
        out.push_str(&doc.text);
        if !doc.text.ends_with('\n') {
            out.push('\n');
        }
        out.push_str("</TEXT>\n</DOC>\n");
    }
    out
}

/// Finds `<TAG>` (exact, upper-case) and returns the offset just past it.
fn find_tag(haystack: &str, tag: &str) -> Option<usize> {
    let needle = format!("<{tag}>");
    haystack.find(&needle).map(|i| i + needle.len())
}

/// Finds `</TAG>`, returning (content_end, offset_past_close).
fn find_close(haystack: &str, tag: &str) -> Option<(usize, usize)> {
    let needle = format!("</{tag}>");
    haystack.find(&needle).map(|i| (i, i + needle.len()))
}

fn parse_doc(body: &str, doc_index: usize) -> Result<TrecDoc, SgmlError> {
    let docno = {
        let start = find_tag(body, "DOCNO").ok_or(SgmlError::MissingDocno { doc_index })?;
        let after = &body[start..];
        let (end, _) = find_close(after, "DOCNO").ok_or(SgmlError::UnclosedElement("DOCNO"))?;
        after[..end].trim().to_owned()
    };
    let mut text = String::new();
    for &tag in TEXT_TAGS {
        let mut rest = body;
        while let Some(start) = find_tag(rest, tag) {
            let after = &rest[start..];
            match find_close(after, tag) {
                Some((end, past)) => {
                    text.push_str(&after[..end]);
                    rest = &after[past..];
                }
                None => return Err(SgmlError::UnclosedElement("TEXT")),
            }
        }
    }
    Ok(TrecDoc { docno, text })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
<DOC>
<DOCNO> AP880212-0001 </DOCNO>
<HEAD>Reports of a Thing</HEAD>
<TEXT>
First document body.
</TEXT>
</DOC>
<DOC>
<DOCNO> AP880212-0002 </DOCNO>
<TEXT>
Second document body,
spanning two lines.
</TEXT>
</DOC>
";

    #[test]
    fn parses_multiple_documents() {
        let docs = parse_trec(SAMPLE).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].docno, "AP880212-0001");
        assert_eq!(docs[1].docno, "AP880212-0002");
    }

    #[test]
    fn text_and_head_elements_are_concatenated() {
        let docs = parse_trec(SAMPLE).unwrap();
        assert!(docs[0].text.contains("First document body."));
        assert!(docs[0].text.contains("Reports of a Thing"));
    }

    #[test]
    fn multiple_text_elements_in_one_doc() {
        let input = "<DOC>\n<DOCNO> X </DOCNO>\n<TEXT>alpha</TEXT>\n<TEXT>beta</TEXT>\n</DOC>";
        let docs = parse_trec(input).unwrap();
        assert!(docs[0].text.contains("alpha"));
        assert!(docs[0].text.contains("beta"));
    }

    #[test]
    fn missing_docno_is_an_error() {
        let input = "<DOC>\n<TEXT>orphan</TEXT>\n</DOC>";
        assert_eq!(
            parse_trec(input),
            Err(SgmlError::MissingDocno { doc_index: 0 })
        );
    }

    #[test]
    fn unclosed_doc_is_an_error() {
        let input = "<DOC>\n<DOCNO> X </DOCNO>\n<TEXT>hmm</TEXT>\n";
        assert_eq!(parse_trec(input), Err(SgmlError::UnclosedElement("DOC")));
    }

    #[test]
    fn empty_input_gives_no_documents() {
        assert!(parse_trec("").unwrap().is_empty());
        assert!(parse_trec("no tags at all").unwrap().is_empty());
    }

    #[test]
    fn to_trec_roundtrips_through_parse() {
        let docs = vec![
            TrecDoc {
                docno: "A-1".into(),
                text: "hello world\n".into(),
            },
            TrecDoc {
                docno: "A-2".into(),
                text: "second one".into(),
            },
        ];
        let serialized = to_trec(&docs);
        let parsed = parse_trec(&serialized).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].docno, "A-1");
        assert_eq!(parsed[0].text.trim(), "hello world");
        assert_eq!(parsed[1].text.trim(), "second one");
    }

    #[test]
    fn non_text_elements_are_ignored() {
        let input = "<DOC>\n<DOCNO> X </DOCNO>\n<DATE>1988</DATE>\n<TEXT>body</TEXT>\n</DOC>";
        let docs = parse_trec(input).unwrap();
        assert!(!docs[0].text.contains("1988"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_arbitrary_safe_texts(
            texts in proptest::collection::vec("[a-zA-Z0-9 .,\n]{0,200}", 0..8),
        ) {
            let docs: Vec<TrecDoc> = texts
                .iter()
                .enumerate()
                .map(|(i, t)| TrecDoc { docno: format!("D-{i}"), text: t.clone() })
                .collect();
            let parsed = parse_trec(&to_trec(&docs)).unwrap();
            prop_assert_eq!(parsed.len(), docs.len());
            for (a, b) in docs.iter().zip(&parsed) {
                prop_assert_eq!(&a.docno, &b.docno);
                // Serialization brackets the text with newlines; TREC
                // parsing is whitespace-insensitive at element bounds.
                prop_assert_eq!(a.text.trim(), b.text.trim());
            }
        }

        #[test]
        fn parser_never_panics(input in "\\PC{0,500}") {
            let _ = parse_trec(&input);
        }
    }
}
