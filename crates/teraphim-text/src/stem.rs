//! The Porter stemming algorithm (Porter, 1980).
//!
//! This is a faithful implementation of the original five-step algorithm,
//! operating on ASCII lower-case words. Words containing non-ASCII
//! characters, or shorter than three characters, are returned unchanged —
//! the algorithm is defined over English.

/// Stems a single lower-case word.
///
/// # Examples
///
/// ```
/// use teraphim_text::stem::stem;
///
/// assert_eq!(stem("caresses"), "caress");
/// assert_eq!(stem("running"), "run");
/// assert_eq!(stem("relational"), "relat");
/// assert_eq!(stem("sky"), "sky");
/// ```
pub fn stem(word: &str) -> String {
    if word.len() <= 2
        || !word
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit())
    {
        return word.to_owned();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
        k: word.len(),
    };
    s.step1ab();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5();
    s.b.truncate(s.k);
    String::from_utf8(s.b).expect("ascii input stays ascii")
}

struct Stemmer {
    /// Word buffer; only `b[..k]` is live.
    b: Vec<u8>,
    k: usize,
}

impl Stemmer {
    /// True if `b[i]` is a consonant.
    fn cons(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.cons(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Measure of the stem `b[..j]`: the number of VC sequences.
    fn measure(&self, j: usize) -> usize {
        let mut n = 0;
        let mut i = 0;
        // Skip initial consonants.
        while i < j && self.cons(i) {
            i += 1;
        }
        loop {
            // Skip vowels.
            while i < j && !self.cons(i) {
                i += 1;
            }
            if i >= j {
                return n;
            }
            n += 1;
            // Skip consonants.
            while i < j && self.cons(i) {
                i += 1;
            }
            if i >= j {
                return n;
            }
        }
    }

    /// True if `b[..j]` contains a vowel.
    fn vowel_in_stem(&self, j: usize) -> bool {
        (0..j).any(|i| !self.cons(i))
    }

    /// True if `b[..=j]` ends in a double consonant.
    fn double_cons(&self, j: usize) -> bool {
        j >= 1 && self.b[j] == self.b[j - 1] && self.cons(j)
    }

    /// True if `b[i-2..=i]` is consonant-vowel-consonant and the final
    /// consonant is not w, x or y (the *o rule).
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.cons(i) || self.cons(i - 1) || !self.cons(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    /// True if the live word ends with `suffix`.
    fn ends(&self, suffix: &str) -> bool {
        let s = suffix.as_bytes();
        s.len() <= self.k && &self.b[self.k - s.len()..self.k] == s
    }

    /// Length of the stem if `suffix` were removed (caller must have
    /// checked `ends`).
    fn stem_len(&self, suffix: &str) -> usize {
        self.k - suffix.len()
    }

    /// Replaces the current suffix of length `old_len` with `repl`.
    fn set_to(&mut self, old_len: usize, repl: &str) {
        let j = self.k - old_len;
        self.b.truncate(j);
        self.b.extend_from_slice(repl.as_bytes());
        self.k = self.b.len();
    }

    /// If the word ends in `suffix` and m(stem) > `m_min`, replace it with
    /// `repl` and return true.
    fn replace_if_m(&mut self, suffix: &str, repl: &str, m_min: usize) -> bool {
        if self.ends(suffix) {
            let j = self.stem_len(suffix);
            if self.measure(j) > m_min {
                self.set_to(suffix.len(), repl);
            }
            true
        } else {
            false
        }
    }

    /// Step 1a (plurals) and 1b (-ed, -ing).
    fn step1ab(&mut self) {
        // Step 1a.
        if self.ends("sses") {
            self.set_to(4, "ss");
        } else if self.ends("ies") {
            self.set_to(3, "i");
        } else if self.ends("ss") {
            // unchanged
        } else if self.ends("s") {
            self.set_to(1, "");
        }

        // Step 1b.
        if self.ends("eed") {
            let j = self.stem_len("eed");
            if self.measure(j) > 0 {
                self.set_to(3, "ee");
            }
        } else {
            let removed = if self.ends("ed") && self.vowel_in_stem(self.stem_len("ed")) {
                self.set_to(2, "");
                true
            } else if self.ends("ing") && self.vowel_in_stem(self.stem_len("ing")) {
                self.set_to(3, "");
                true
            } else {
                false
            };
            if removed {
                if self.ends("at") || self.ends("bl") || self.ends("iz") {
                    self.b.truncate(self.k);
                    self.b.push(b'e');
                    self.k += 1;
                } else if self.double_cons(self.k - 1)
                    && !matches!(self.b[self.k - 1], b'l' | b's' | b'z')
                {
                    self.k -= 1;
                    self.b.truncate(self.k);
                } else if self.measure(self.k) == 1 && self.cvc(self.k - 1) {
                    self.b.truncate(self.k);
                    self.b.push(b'e');
                    self.k += 1;
                }
            }
        }
    }

    /// Step 1c: terminal y → i when there is another vowel in the stem.
    fn step1c(&mut self) {
        if self.ends("y") && self.vowel_in_stem(self.k - 1) {
            self.b[self.k - 1] = b'i';
        }
    }

    /// Step 2: double-suffix reductions when m > 0.
    fn step2(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("abli", "able"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
        ];
        for &(suffix, repl) in RULES {
            if self.replace_if_m(suffix, repl, 0) {
                return;
            }
        }
    }

    /// Step 3: -ic-, -full, -ness etc. when m > 0.
    fn step3(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ];
        for &(suffix, repl) in RULES {
            if self.replace_if_m(suffix, repl, 0) {
                return;
            }
        }
    }

    /// Step 4: drop residual suffixes when m > 1.
    fn step4(&mut self) {
        const SUFFIXES: &[&str] = &[
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
            "ism", "ate", "iti", "ous", "ive", "ize",
        ];
        // "ion" requires the stem to end in s or t.
        if self.ends("ion") {
            let j = self.stem_len("ion");
            if j >= 1 && matches!(self.b[j - 1], b's' | b't') && self.measure(j) > 1 {
                self.set_to(3, "");
            }
            return;
        }
        for &suffix in SUFFIXES {
            if self.ends(suffix) {
                let j = self.stem_len(suffix);
                if self.measure(j) > 1 {
                    self.set_to(suffix.len(), "");
                }
                return;
            }
        }
    }

    /// Step 5: remove a final -e and reduce -ll when m > 1.
    fn step5(&mut self) {
        // 5a.
        if self.b[self.k - 1] == b'e' {
            let m = self.measure(self.k - 1);
            if m > 1 || (m == 1 && !self.cvc(self.k.saturating_sub(2))) {
                self.k -= 1;
                self.b.truncate(self.k);
            }
        }
        // 5b.
        if self.b[self.k - 1] == b'l' && self.double_cons(self.k - 1) && self.measure(self.k) > 1 {
            self.k -= 1;
            self.b.truncate(self.k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic Porter test vectors (from the published algorithm paper and
    /// reference implementation).
    #[test]
    fn porter_reference_vectors() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(stem(input), expected, "stem({input:?})");
        }
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("be"), "be");
    }

    #[test]
    fn non_ascii_words_unchanged() {
        assert_eq!(stem("café"), "café");
        assert_eq!(stem("naïve"), "naïve");
    }

    #[test]
    fn digits_pass_through() {
        assert_eq!(stem("1998"), "1998");
        assert_eq!(stem("trec2"), "trec2");
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        for w in [
            "running",
            "libraries",
            "retrieval",
            "distributed",
            "information",
        ] {
            let once = stem(w);
            let twice = stem(&once);
            // Porter is not idempotent in general, but is on these stems.
            assert_eq!(once, twice, "word {w}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn never_panics_and_never_grows_much(word in "[a-z]{0,30}") {
            let s = stem(&word);
            // Porter can add at most one character (e restoration).
            prop_assert!(s.len() <= word.len() + 1);
        }

        #[test]
        fn output_stays_ascii_lowercase(word in "[a-z]{3,20}") {
            let s = stem(&word);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
            prop_assert!(!s.is_empty());
        }
    }
}
