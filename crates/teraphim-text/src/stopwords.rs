//! English stop-word list.
//!
//! The paper applies "simple transformations such as removal of
//! stop-words" to queries; MG also stops at indexing time. The list here
//! is the classic van Rijsbergen-style short function-word list (plus a
//! handful of TREC-topic boilerplate terms such as "document" and
//! "relevant" that appear in every topic statement).

use std::collections::HashSet;
use std::sync::OnceLock;

/// The stop list as a static slice, lower-cased, sorted.
pub const STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "also",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

fn stopword_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// True if `word` (already lower-cased) is a stop word.
///
/// # Examples
///
/// ```
/// use teraphim_text::stopwords::is_stopword;
///
/// assert!(is_stopword("the"));
/// assert!(!is_stopword("retrieval"));
/// ```
pub fn is_stopword(word: &str) -> bool {
    stopword_set().contains(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_function_words_are_stopped() {
        for w in ["the", "a", "of", "and", "is", "to", "in"] {
            assert!(is_stopword(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn content_words_are_not_stopped() {
        for w in [
            "information",
            "retrieval",
            "distributed",
            "librarian",
            "query",
        ] {
            assert!(!is_stopword(w), "{w} should not be a stop word");
        }
    }

    #[test]
    fn list_is_sorted_and_unique() {
        for pair in STOPWORDS.windows(2) {
            assert!(pair[0] < pair[1], "{:?} >= {:?}", pair[0], pair[1]);
        }
    }

    #[test]
    fn list_is_lowercase() {
        for w in STOPWORDS {
            assert_eq!(*w, w.to_lowercase());
        }
    }

    #[test]
    fn uppercase_forms_are_not_matched() {
        // Callers must lower-case first; document that contract.
        assert!(!is_stopword("The"));
    }
}
