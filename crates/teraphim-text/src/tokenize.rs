//! Case-folded alphanumeric tokenization.
//!
//! A token is a maximal run of alphanumeric characters, lower-cased.
//! Apostrophes inside a word (`libraries'`, `don't`) are dropped rather
//! than splitting the word, matching the behaviour of classic IR
//! tokenizers.

/// Iterator over the tokens of a text. Produced by [`tokenize`].
#[derive(Debug, Clone)]
pub struct Tokens<'a> {
    rest: &'a str,
}

impl<'a> Iterator for Tokens<'a> {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        // Skip separators.
        let start = self
            .rest
            .char_indices()
            .find(|(_, c)| c.is_alphanumeric())
            .map(|(i, _)| i)?;
        self.rest = &self.rest[start..];
        // Take the maximal word run, permitting embedded apostrophes when
        // followed by another alphanumeric character.
        let mut end = 0;
        let mut chars = self.rest.char_indices().peekable();
        while let Some((i, c)) = chars.next() {
            if c.is_alphanumeric() {
                end = i + c.len_utf8();
            } else if c == '\'' {
                match chars.peek() {
                    Some(&(_, d)) if d.is_alphanumeric() => continue,
                    _ => break,
                }
            } else {
                break;
            }
        }
        let word = &self.rest[..end];
        self.rest = &self.rest[end..];
        let token: String = word
            .chars()
            .filter(|c| *c != '\'')
            .flat_map(char::to_lowercase)
            .collect();
        Some(token)
    }
}

/// Tokenizes `text` into lower-cased alphanumeric tokens.
///
/// # Examples
///
/// ```
/// use teraphim_text::tokenize::tokenize;
///
/// let tokens: Vec<String> = tokenize("Don't panic, TREC-2!").collect();
/// assert_eq!(tokens, vec!["dont", "panic", "trec", "2"]);
/// ```
pub fn tokenize(text: &str) -> Tokens<'_> {
    Tokens { rest: text }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(text: &str) -> Vec<String> {
        tokenize(text).collect()
    }

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            toks("alpha, beta;gamma.delta"),
            vec!["alpha", "beta", "gamma", "delta"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(toks("ALPHA Beta"), vec!["alpha", "beta"]);
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(toks("trec2 1998 b52"), vec!["trec2", "1998", "b52"]);
    }

    #[test]
    fn internal_apostrophes_fold_into_the_word() {
        assert_eq!(
            toks("don't libraries' o'clock"),
            vec!["dont", "libraries", "oclock"]
        );
    }

    #[test]
    fn trailing_apostrophe_terminates_the_word() {
        assert_eq!(toks("cats' "), vec!["cats"]);
    }

    #[test]
    fn unicode_letters_are_tokens() {
        assert_eq!(toks("café naïve"), vec!["café", "naïve"]);
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(toks("").is_empty());
        assert!(toks("!!! --- ???").is_empty());
    }

    #[test]
    fn hyphenated_words_split() {
        assert_eq!(toks("mono-server"), vec!["mono", "server"]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn tokens_are_lowercase_alphanumeric(text in ".{0,300}") {
            for tok in tokenize(&text) {
                prop_assert!(!tok.is_empty());
                prop_assert!(tok.chars().all(|c| c.is_alphanumeric()));
                // Fully folded: some characters (e.g. 𝑨) have no lowercase
                // mapping, so compare against to_lowercase instead of
                // asserting absence of uppercase.
                prop_assert_eq!(tok.to_lowercase(), tok);
            }
        }

        #[test]
        fn tokenize_never_panics(text in "\\PC{0,500}") {
            let _ = tokenize(&text).count();
        }
    }
}
