//! Effectiveness evaluation: run the generated query sets through every
//! methodology and report 11-point average recall-precision and relevant
//! documents in the top 20 (the Table 1 measures).
//!
//! ```sh
//! cargo run --release --example effectiveness_eval
//! ```

use teraphim::core::{DistributedCollection, Methodology};
use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
use teraphim::eval::{Judgments, QueryEval, SetEval};
use teraphim::text::sgml::TrecDoc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(42));
    let judgments = Judgments::from_qrels(&corpus.qrels());
    let parts: Vec<(&str, &[TrecDoc])> = corpus
        .subcollections()
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect();
    let system = DistributedCollection::build(&parts)?;

    for (label, queries) in [
        ("long queries", corpus.long_queries()),
        ("short queries", corpus.short_queries()),
    ] {
        println!("{label} ({} queries):", queries.len());
        for methodology in Methodology::ALL {
            let mut evals = Vec::new();
            for query in queries {
                // The paper evaluates 11-pt precision over the top 1000.
                let ranking = system.ranked_docnos(methodology, &query.text, 1000)?;
                evals.push(QueryEval::evaluate(&judgments, query.id, &ranking));
            }
            let set = SetEval::from_evals(&evals);
            println!("  {methodology}: {set}");
        }
        println!();
    }
    Ok(())
}
