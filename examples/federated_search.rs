//! Federated search with explicit receptionist control: build librarians
//! and a receptionist by hand, inspect per-methodology wire traffic, and
//! compare the merged rankings.
//!
//! ```sh
//! cargo run --example federated_search
//! ```

use teraphim::core::{CiParams, Librarian, Methodology, Receptionist};
use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
use teraphim::net::InProcTransport;
use teraphim::text::Analyzer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(7));

    // Librarians are fully independent engines; the receptionist reaches
    // each through a transport (in-process here, TCP in tcp_cluster.rs).
    let transports: Vec<InProcTransport<Librarian>> = corpus
        .subcollections()
        .iter()
        .map(|sub| {
            InProcTransport::new(Librarian::build(&sub.name, Analyzer::default(), &sub.docs))
        })
        .collect();
    let mut receptionist = Receptionist::new(transports, Analyzer::default());

    // Preprocessing: CV merges vocabularies; CI pulls whole indexes and
    // groups them (G = 10, k' = 30).
    receptionist.enable_cv()?;
    receptionist.enable_ci(CiParams {
        group_size: 10,
        k_prime: 30,
    })?;
    let setup_traffic = receptionist.traffic();
    println!(
        "setup traffic: {} round trips, {} KB (vocabularies + indexes)",
        setup_traffic.round_trips,
        setup_traffic.total_bytes() / 1024
    );
    println!(
        "central vocabulary: {} KB; central index: {} KB\n",
        receptionist.cv_vocabulary_bytes().unwrap_or(0) / 1024,
        receptionist.ci_index_bytes().unwrap_or(0) / 1024
    );

    for query in corpus.short_queries().iter().take(3) {
        println!(
            "query {} ({} terms):",
            query.id,
            query.text.split_whitespace().count()
        );
        for methodology in Methodology::ALL {
            let before = receptionist.traffic();
            let hits = receptionist.query(methodology, &query.text, 10)?;
            let docnos = receptionist.headers(&hits)?;
            let after = receptionist.traffic();
            println!(
                "  {methodology}: {} hits, {} round trips, {} bytes on wire; top: {}",
                hits.len(),
                after.round_trips - before.round_trips,
                after.total_bytes() - before.total_bytes(),
                docnos.first().map(String::as_str).unwrap_or("-"),
            );
        }
        println!();
    }
    Ok(())
}
