//! Incremental update: the management benefit the paper's introduction
//! motivates ("distributed over several machines, to simplify update").
//!
//! A librarian appends new documents locally via a delta-index merge; a
//! Central Vocabulary receptionist refreshes its merged vocabulary and
//! keeps producing mono-server-identical rankings — no other librarian
//! is touched.
//!
//! ```sh
//! cargo run --example incremental_update
//! ```

use teraphim::core::{Librarian, Methodology, Receptionist};
use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
use teraphim::net::InProcTransport;
use teraphim::text::sgml::TrecDoc;
use teraphim::text::Analyzer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(64));

    // Hold back the last 30 documents of AP as "tomorrow's update".
    let ap = &corpus.subcollections()[0];
    let (initial, update) = ap.docs.split_at(ap.docs.len() - 30);
    println!(
        "AP starts with {} documents; {} arrive later",
        initial.len(),
        update.len()
    );

    let mut librarians: Vec<Librarian> = corpus
        .subcollections()
        .iter()
        .skip(1)
        .map(|s| Librarian::build(&s.name, Analyzer::default(), &s.docs))
        .collect();
    librarians.insert(0, Librarian::build("AP", Analyzer::default(), initial));
    let transports: Vec<InProcTransport<Librarian>> =
        librarians.into_iter().map(InProcTransport::new).collect();
    // Keep a handle to AP's service so we can update it "at the branch
    // office" later.
    let ap_service = transports[0].service();
    let mut receptionist = Receptionist::new(transports, Analyzer::default());
    receptionist.enable_cv()?;

    let query = &corpus.short_queries()[0].text;
    let before = receptionist.query(Methodology::CentralVocabulary, query, 5)?;
    println!(
        "\nbefore update, top docnos: {:?}",
        receptionist.headers(&before)?
    );

    // The librarian updates locally: delta index merge + store append.
    let delta: Vec<TrecDoc> = update.to_vec();
    ap_service
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .collection_mut()
        .append_documents(&delta)?;
    println!(
        "AP appended {} documents locally (no other librarian touched)",
        delta.len()
    );

    // The receptionist refreshes its central vocabulary (one round of
    // stats requests) and queries again.
    receptionist.enable_cv()?;
    let after = receptionist.query(Methodology::CentralVocabulary, query, 5)?;
    println!(
        "after update, top docnos:  {:?}",
        receptionist.headers(&after)?
    );

    // Sanity: the updated system equals a from-scratch build.
    let scratch: Vec<InProcTransport<Librarian>> = corpus
        .subcollections()
        .iter()
        .map(|s| InProcTransport::new(Librarian::build(&s.name, Analyzer::default(), &s.docs)))
        .collect();
    let mut reference = Receptionist::new(scratch, Analyzer::default());
    reference.enable_cv()?;
    let expected = reference.query(Methodology::CentralVocabulary, query, 5)?;
    let same = after
        .iter()
        .zip(&expected)
        .all(|(a, b)| a.doc == b.doc && (a.score - b.score).abs() < 1e-12);
    println!(
        "\nupdated system matches a from-scratch rebuild: {}",
        if same { "yes" } else { "NO (bug!)" }
    );
    Ok(())
}
