//! Quickstart: generate a corpus, build a distributed collection, and
//! run the same query under all three methodologies.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use teraphim::core::{DistributedCollection, Methodology};
use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
use teraphim::text::sgml::TrecDoc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small deterministic corpus: four subcollections (AP, FR, WSJ,
    // ZIFF), topics, queries and relevance judgments all derived from
    // seed 42.
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(42));
    println!(
        "corpus: {} subcollections, {} documents, {} KB of text",
        corpus.subcollections().len(),
        corpus.spec().total_docs(),
        corpus.text_bytes() / 1024
    );

    // One librarian per subcollection, plus the CV/CI preprocessing.
    let parts: Vec<(&str, &[TrecDoc])> = corpus
        .subcollections()
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect();
    let system = DistributedCollection::build(&parts)?;
    println!(
        "receptionist state: central vocabulary {} KB, central index {} KB",
        system.cv_vocabulary_bytes() / 1024,
        system.ci_index_bytes() / 1024
    );

    // Ask the first short query under each methodology.
    let query = &corpus.short_queries()[0].text;
    println!("\nquery: {query}\n");
    for methodology in Methodology::ALL {
        let hits = system.query(methodology, query, 5)?;
        let docs = system.fetch(&hits, true)?;
        println!("{methodology} top {}:", hits.len());
        for (hit, doc) in hits.iter().zip(&docs) {
            println!(
                "  {:<12} score {:.4}  (librarian {}) {}…",
                doc.docno,
                hit.score,
                hit.librarian,
                doc.text
                    .as_deref()
                    .unwrap_or("")
                    .chars()
                    .take(40)
                    .collect::<String>()
            );
        }
        println!();
    }

    let traffic = system.traffic();
    println!(
        "total wire traffic: {} round trips, {} KB",
        traffic.round_trips,
        traffic.total_bytes() / 1024
    );
    Ok(())
}
