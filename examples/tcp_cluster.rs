//! A real TCP cluster on loopback: one librarian server per
//! subcollection, a receptionist connecting over sockets — the paper's
//! LAN configuration, minus the 1997 hardware.
//!
//! ```sh
//! cargo run --example tcp_cluster
//! ```

use teraphim::core::{CiParams, Librarian, Methodology, Receptionist};
use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
use teraphim::net::tcp::{TcpServer, TcpTransport};
use teraphim::text::Analyzer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(99));

    // Spawn one librarian server per subcollection on an ephemeral port.
    let mut servers = Vec::new();
    for sub in corpus.subcollections() {
        let librarian = Librarian::build(&sub.name, Analyzer::default(), &sub.docs);
        let server = TcpServer::spawn(librarian, "127.0.0.1:0")?;
        println!("librarian {:<5} listening on {}", sub.name, server.addr());
        servers.push(server);
    }

    // The receptionist connects to each.
    let transports = servers
        .iter()
        .map(|s| TcpTransport::connect(s.addr()))
        .collect::<Result<Vec<_>, _>>()?;
    let mut receptionist = Receptionist::new(transports, Analyzer::default());
    receptionist.enable_cv()?;
    receptionist.enable_ci(CiParams {
        group_size: 10,
        k_prime: 30,
    })?;

    let query = &corpus.short_queries()[1].text;
    println!("\nquery: {query}\n");
    for methodology in Methodology::ALL {
        let start = std::time::Instant::now();
        let hits = receptionist.query(methodology, query, 10)?;
        let docs = receptionist.fetch(&hits, false)?;
        let elapsed = start.elapsed();
        println!(
            "{methodology}: {} hits in {elapsed:?}; first {}; {} compressed bytes fetched",
            hits.len(),
            docs.first().map(|d| d.docno.as_str()).unwrap_or("-"),
            docs.iter().map(|d| d.body_bytes).sum::<usize>()
        );
    }
    let traffic = receptionist.traffic();
    println!(
        "\nwire traffic: {} round trips, {} KB",
        traffic.round_trips,
        traffic.total_bytes() / 1024
    );

    for server in servers {
        server.shutdown();
    }
    Ok(())
}
