//! Per-phase latency attribution from query traces: run the three
//! methodologies over S = 4 librarians, once healthy and once with one
//! uniformly slow librarian, and show where each query's time went —
//! which phase, and which librarian.
//!
//! ```sh
//! cargo run --release --example trace_attribution
//! ```

use std::collections::BTreeMap;
use std::time::Duration;

use teraphim::core::{CiParams, Librarian, Methodology, Receptionist};
use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
use teraphim::net::{FaultPlan, FaultyTransport, InProcTransport};
use teraphim::obs::{EventKind, Phase, QueryTrace};
use teraphim::text::Analyzer;

const SLOW_LIBRARIAN: usize = 2;
const SLOWDOWN: Duration = Duration::from_millis(25);
const QUERIES: usize = 12;
const K: usize = 10;

type Stack = FaultyTransport<InProcTransport<Librarian>>;

fn receptionist(corpus: &SyntheticCorpus, slow: Option<Duration>) -> Receptionist<Stack> {
    let transports = corpus
        .subcollections()
        .iter()
        .enumerate()
        .map(|(i, sub)| {
            let plan = match slow {
                Some(d) if i == SLOW_LIBRARIAN => FaultPlan::new().delay_all(d),
                _ => FaultPlan::new(),
            };
            FaultyTransport::new(
                InProcTransport::new(Librarian::build(&sub.name, Analyzer::default(), &sub.docs)),
                plan,
            )
        })
        .collect();
    let mut r = Receptionist::new(transports, Analyzer::default());
    r.enable_cv().unwrap();
    r.enable_ci(CiParams {
        group_size: 10,
        k_prime: 50,
    })
    .unwrap();
    r
}

/// Mean microseconds per phase and per-librarian exchange latency
/// (send-to-reply), accumulated over a batch of traces.
#[derive(Default)]
struct Attribution {
    phase_sums: BTreeMap<&'static str, u64>,
    lib_sums: BTreeMap<u32, (u64, u64)>,
    traces: u64,
}

impl Attribution {
    fn absorb(&mut self, trace: &QueryTrace) {
        self.traces += 1;
        for (phase, micros) in trace.metrics().phase_micros {
            *self.phase_sums.entry(phase.as_str()).or_default() += micros;
        }
        let mut sent: BTreeMap<u32, u64> = BTreeMap::new();
        for event in &trace.events {
            match event.kind {
                EventKind::Sent { librarian, .. } => {
                    sent.insert(librarian, event.at_micros);
                }
                EventKind::Reply { librarian, .. } => {
                    if let Some(&at) = sent.get(&librarian) {
                        let slot = self.lib_sums.entry(librarian).or_default();
                        slot.0 += event.at_micros.saturating_sub(at);
                        slot.1 += 1;
                    }
                }
                _ => {}
            }
        }
    }

    fn mean_phases(&self) -> Vec<(&'static str, u64)> {
        self.phase_sums
            .iter()
            .map(|(&p, &sum)| (p, sum / self.traces.max(1)))
            .collect()
    }

    fn mean_lib_latency(&self) -> Vec<(u32, u64)> {
        self.lib_sums
            .iter()
            .map(|(&lib, &(sum, n))| (lib, sum / n.max(1)))
            .collect()
    }
}

fn run_scenario(
    corpus: &SyntheticCorpus,
    slow: Option<Duration>,
) -> BTreeMap<&'static str, Attribution> {
    let mut out = BTreeMap::new();
    for methodology in Methodology::ALL {
        let mut r = receptionist(corpus, slow);
        let sink = r.enable_tracing();
        for query in corpus.short_queries().iter().cycle().take(QUERIES) {
            r.query(methodology, &query.text, K).unwrap();
        }
        let mut attribution = Attribution::default();
        for trace in sink.take_traces() {
            attribution.absorb(&trace);
        }
        out.insert(methodology.code(), attribution);
    }
    out
}

fn main() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(7));
    let healthy = run_scenario(&corpus, None);
    let degraded = run_scenario(&corpus, Some(SLOWDOWN));

    println!(
        "Per-phase latency attribution, S = 4 librarians, {QUERIES} queries, k = {K}.\n\
         Degraded run: librarian {SLOW_LIBRARIAN} answers every exchange {SLOWDOWN:?} late.\n"
    );

    println!(
        "{:<4} {:<14} {:>12} {:>12} {:>8}",
        "meth", "phase", "healthy µs", "1-slow µs", "×"
    );
    for methodology in Methodology::ALL {
        let code = methodology.code();
        let h = &healthy[code];
        let d = &degraded[code];
        let slow_phases: BTreeMap<_, _> = d.mean_phases().into_iter().collect();
        for (phase, mean_h) in h.mean_phases() {
            let mean_d = slow_phases.get(phase).copied().unwrap_or(0);
            let factor = mean_d as f64 / mean_h.max(1) as f64;
            println!("{code:<4} {phase:<14} {mean_h:>12} {mean_d:>12} {factor:>8.1}");
        }
    }

    println!("\nMean send-to-reply latency per librarian (µs):");
    println!("{:<4} {:<9} librarians 0..4", "meth", "run");
    for methodology in Methodology::ALL {
        let code = methodology.code();
        for (label, attribution) in [("healthy", &healthy[code]), ("1-slow", &degraded[code])] {
            let row: Vec<String> = attribution
                .mean_lib_latency()
                .iter()
                .map(|(lib, mean)| format!("L{lib}={mean}"))
                .collect();
            println!("{code:<4} {label:<9} {}", row.join("  "));
        }
    }

    // The rank fan-out phase should absorb (roughly) one slowdown per
    // query under concurrent dispatch, regardless of methodology.
    let h_fanout = healthy["CN"]
        .mean_phases()
        .iter()
        .find(|(p, _)| *p == Phase::RankFanout.as_str())
        .map(|&(_, m)| m)
        .unwrap_or(0);
    println!(
        "\nHealthy CN fan-out mean {h_fanout} µs; injected slowdown {} µs per exchange.",
        SLOWDOWN.as_micros()
    );
}
