//! WAN simulation: replay a query under every methodology on the paper's
//! four hardware configurations and print the per-phase latency
//! breakdown (the machinery behind Tables 3 and 4).
//!
//! ```sh
//! cargo run --example wan_simulation
//! ```

use teraphim::core::sim::{SimDriver, SimMode};
use teraphim::core::{CiParams, Methodology};
use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
use teraphim::simnet::{CostModel, Topology};
use teraphim::text::sgml::TrecDoc;
use teraphim::text::Analyzer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(13));
    let parts: Vec<(&str, &[TrecDoc])> = corpus
        .subcollections()
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect();
    let mut driver = SimDriver::new(&parts, Analyzer::default(), CiParams::default())?;

    let query = &corpus.short_queries()[0].text;
    let k = 20;
    let cost = CostModel::default();
    let topologies = [
        Topology::mono_disk(parts.len()),
        Topology::multi_disk(parts.len()),
        Topology::lan(),
        Topology::wan(),
    ];
    let modes = [
        SimMode::MonoServer,
        SimMode::Distributed(Methodology::CentralNothing),
        SimMode::Distributed(Methodology::CentralVocabulary),
        SimMode::Distributed(Methodology::CentralIndex),
    ];

    println!("query: {query}\nk = {k}, G = 10, k' = 100\n");
    println!(
        "{:<6} {:<12} {:>12} {:>12} {:>12} {:>10}",
        "mode", "config", "index (s)", "total (s)", "fetch (s)", "wire KB"
    );
    for topo in &topologies {
        for mode in modes {
            // MS only makes sense on a single machine.
            if mode == SimMode::MonoServer && topo.name != "mono-disk" {
                continue;
            }
            let c = driver.time_query(topo, &cost, mode, query, k)?;
            println!(
                "{:<6} {:<12} {:>12.4} {:>12.4} {:>12.4} {:>10.1}",
                mode.to_string(),
                topo.name,
                c.index_time,
                c.total_time,
                c.total_time - c.index_time,
                c.bytes_on_wire as f64 / 1024.0
            );
        }
        println!();
    }

    // The Table 2 connectivity check: simulated pings.
    println!("WAN site round-trip times (paper Table 2):");
    let wan = Topology::wan_table2_order();
    let net = teraphim::simnet::SimNetwork::new(&wan, CostModel::default());
    for (i, (site, hops, ping)) in Topology::table2_sites().iter().enumerate() {
        println!(
            "  {:<10} {:>2} hops  measured {:.2} s  simulated {:.2} s",
            site,
            hops,
            ping,
            net.ping(i)
        );
    }
    Ok(())
}
