//! # TERAPHIM-RS
//!
//! A from-scratch Rust reproduction of *"Methodologies for Distributed
//! Information Retrieval"* (de Kretser, Moffat, Shimmin & Zobel, ICDCS
//! 1998): a distributed text-retrieval system in which independent
//! *librarians* manage subcollections and *receptionists* broker ranked
//! queries, comparing the **Central Nothing**, **Central Vocabulary** and
//! **Central Index** methodologies against a monolithic baseline.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`compress`] — integer codes and word-based text compression.
//! * [`text`] — tokenization, stopping, stemming, TREC SGML parsing.
//! * [`index`] — compressed inverted indexes, skips, grouped indexes.
//! * [`engine`] — the MG-style mono-server query engine.
//! * [`corpus`] — synthetic TREC-like corpus/query/qrels generation.
//! * [`eval`] — retrieval-effectiveness metrics.
//! * [`net`] — wire protocol and transports.
//! * [`obs`] — structured query traces and per-phase metrics.
//! * [`simnet`] — discrete-event disk/CPU/network simulator.
//! * [`store`] — persistent versioned index: segments, WAL, epochs.
//! * [`core`] — the TERAPHIM librarian/receptionist system itself.
//!
//! # Quick start
//!
//! ```
//! use teraphim::core::{DistributedCollection, Methodology};
//! use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a small deterministic corpus split into four subcollections.
//! let corpus = SyntheticCorpus::generate(&CorpusSpec::small(42));
//! // Stand up librarians (one per subcollection) and a receptionist.
//! let parts: Vec<(&str, &[teraphim::text::sgml::TrecDoc])> = corpus
//!     .subcollections()
//!     .iter()
//!     .map(|s| (s.name.as_str(), s.docs.as_slice()))
//!     .collect();
//! let system = DistributedCollection::build(&parts)?;
//! // Ask for the top 10 documents under Central Vocabulary.
//! let query = &corpus.short_queries()[0].text;
//! let ranking = system.query(Methodology::CentralVocabulary, query, 10)?;
//! assert!(!ranking.is_empty() && ranking.len() <= 10);
//! # Ok(())
//! # }
//! ```

pub use teraphim_compress as compress;
pub use teraphim_core as core;
pub use teraphim_corpus as corpus;
pub use teraphim_engine as engine;
pub use teraphim_eval as eval;
pub use teraphim_index as index;
pub use teraphim_net as net;
pub use teraphim_obs as obs;
pub use teraphim_scenario as scenario;
pub use teraphim_simnet as simnet;
pub use teraphim_store as store;
pub use teraphim_text as text;
