//! Cache transparency: a receptionist with its caches enabled must be
//! observationally identical to a cache-free one — byte-identical
//! merged rankings (scores compared as f64 bits, not approximately),
//! identical `Coverage` metadata, identical fetched documents — over
//! random corpora and random query streams with duplicates, for all
//! four methodologies (MS as CN over one merged librarian, CN, CV, CI),
//! under permanent `FaultPlan` failures, and across mid-stream index
//! epoch bumps.
//!
//! The caches are *only* allowed to change how many messages cross the
//! wire, never what the caller sees. Faults in these properties are
//! permanent (`fail_from`): a cache hit suppresses a fan-out, which
//! shifts every later fault index at that librarian, so any
//! *transient* schedule observes different faults with and without a
//! cache — transparency is only defined against fault schedules that
//! answer the same way no matter when they are probed.

use std::sync::{Arc, Mutex};

use proptest::collection::vec;
use proptest::prelude::*;
use teraphim::core::{
    CacheConfig, CiParams, Coverage, GlobalHit, Librarian, Methodology, Receptionist,
};
use teraphim::net::{
    FaultPlan, FaultyService, InProcTransport, Message, ReplicaGroup, RoutingTable, Service,
};
use teraphim::text::Analyzer;

const POOL: &[&str] = &[
    "alpha", "bravo", "carbon", "delta", "echo", "foxtrot", "golf", "hotel", "india", "jazz",
    "kilo", "lima",
];

/// `libs[i]` is librarian `i`'s documents; each document is a list of
/// word-pool indices.
fn librarian_texts(libs: &[Vec<Vec<usize>>]) -> Vec<Vec<(String, String)>> {
    libs.iter()
        .enumerate()
        .map(|(i, docs)| {
            docs.iter()
                .enumerate()
                .map(|(d, words)| {
                    let text: Vec<&str> = words.iter().map(|&w| POOL[w]).collect();
                    (format!("L{i}-{d}"), text.join(" "))
                })
                .collect()
        })
        .collect()
}

fn build_librarian(name: &str, texts: &[(String, String)]) -> Librarian {
    let borrowed: Vec<(&str, &str)> = texts
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    Librarian::from_texts(name, &borrowed)
}

fn build_librarians(libs: &[Vec<Vec<usize>>]) -> Vec<Librarian> {
    librarian_texts(libs)
        .iter()
        .enumerate()
        .map(|(i, texts)| build_librarian(&format!("L{i}"), texts))
        .collect()
}

/// MS: every document in one merged librarian (with S = 1, Central
/// Nothing *is* the mono-server methodology).
fn merged_librarian(libs: &[Vec<Vec<usize>>]) -> Librarian {
    let merged: Vec<(String, String)> = librarian_texts(libs).into_iter().flatten().collect();
    build_librarian("MS", &merged)
}

fn receptionist(libs: Vec<Librarian>) -> Receptionist<InProcTransport<Librarian>> {
    Receptionist::new(
        libs.into_iter().map(InProcTransport::new).collect(),
        Analyzer::default(),
    )
}

/// `(librarian, doc, score bits)` — bitwise identity, not approximate.
fn fingerprint(hits: &[GlobalHit]) -> Vec<(usize, u32, u64)> {
    hits.iter()
        .map(|h| (h.librarian, h.doc, h.score.to_bits()))
        .collect()
}

/// Renders a stream of query-pool indices into query strings. Indexing
/// the pool modulo its length guarantees duplicates for any stream
/// longer than the pool.
fn render_stream(pool: &[Vec<usize>], stream: &[usize]) -> Vec<String> {
    stream
        .iter()
        .map(|&i| {
            pool[i % pool.len()]
                .iter()
                .map(|&w| POOL[w])
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

/// A deliberately tiny configuration: every structure is small enough
/// that the random streams force evictions, exercising the eviction
/// paths' transparency, not just the steady-state hit path.
fn tiny_config() -> CacheConfig {
    CacheConfig {
        result_entries: 2,
        result_shards: 1,
        term_entries: 2,
        doc_bytes: 96,
    }
}

const CI: CiParams = CiParams {
    group_size: 2,
    k_prime: 8,
};
const K: usize = 8;

fn enable(r: &mut Receptionist<impl teraphim::net::Transport>, methodology: Methodology) {
    match methodology {
        Methodology::CentralNothing => {}
        Methodology::CentralVocabulary => r.enable_cv().expect("CV preprocessing"),
        Methodology::CentralIndex => r.enable_ci(CI).expect("CI preprocessing"),
    }
}

proptest! {
    /// Healthy fleet, all four methodologies, both the default and a
    /// tiny (eviction-heavy) cache configuration: `query` and `fetch`
    /// results are byte-identical with and without the caches.
    fn cached_rankings_and_fetches_are_byte_identical(
        corpus in vec(vec(vec(0usize..12, 1..6), 1..4), 2..5),
        query_pool in vec(vec(0usize..12, 1..4), 2..5),
        stream in vec(0usize..64, 6..14),
        tiny in proptest::bool::ANY,
    ) {
        let queries = render_stream(&query_pool, &stream);
        let config = if tiny { tiny_config() } else { CacheConfig::default() };
        for methodology in [
            Methodology::CentralNothing, // over the merged corpus: MS
            Methodology::CentralNothing,
            Methodology::CentralVocabulary,
            Methodology::CentralIndex,
        ]
        .into_iter()
        .enumerate()
        {
            let (i, methodology) = methodology;
            let build = || {
                if i == 0 {
                    vec![merged_librarian(&corpus)]
                } else {
                    build_librarians(&corpus)
                }
            };
            let mut cached = receptionist(build());
            let mut plain = receptionist(build());
            cached.enable_cache(config);
            enable(&mut cached, methodology);
            enable(&mut plain, methodology);
            for query in &queries {
                let a = cached.query(methodology, query, K).unwrap();
                let b = plain.query(methodology, query, K).unwrap();
                prop_assert_eq!(fingerprint(&a), fingerprint(&b));
                // Fetch through the answer-document cache as well:
                // compressed bodies first (what TERAPHIM prefers), then
                // plain — distinct doc-cache keys, identical results.
                for plain_mode in [false, true] {
                    let fa = cached.fetch(&a, plain_mode).unwrap();
                    let fb = plain.fetch(&b, plain_mode).unwrap();
                    prop_assert_eq!(&fa, &fb);
                }
            }
            // The stream had duplicates; a default-config run that never
            // hit would mean the cache is inert, making this test
            // vacuous. (The tiny config may legitimately thrash.)
            let stats = cached.cache_stats().unwrap();
            if !tiny && stream.len() > stream.iter().map(|i| i % query_pool.len()).collect::<std::collections::HashSet<_>>().len() {
                prop_assert!(
                    stats.results.hits > 0,
                    "duplicate queries produced no result-cache hits: {:?}",
                    stats
                );
            }
        }
    }

    /// One librarian dead under a *permanent* fault plan: degraded
    /// rankings and `Coverage` metadata are identical with and without
    /// the caches, for CN, CV and CI — including repeats of the same
    /// query, which the cached side answers from flagged degraded
    /// entries for as long as the fleet stays degraded.
    fn cached_coverage_is_identical_under_permanent_faults(
        corpus in vec(vec(vec(0usize..12, 1..6), 1..4), 2..5),
        query_pool in vec(vec(0usize..12, 1..4), 2..4),
        stream in vec(0usize..64, 4..10),
        dead_raw in 0usize..16,
    ) {
        let dead = dead_raw % corpus.len();
        let queries = render_stream(&query_pool, &stream);
        for methodology in [
            Methodology::CentralNothing,
            Methodology::CentralVocabulary,
            Methodology::CentralIndex,
        ] {
            // The dead librarian answers its one setup exchange
            // (enable_cv's StatsRequest / enable_ci's IndexRequest at
            // fault index 0) and then fails forever; CN has no setup,
            // so its plan fails from the very first request.
            let build = |dead: usize| {
                let transports: Vec<_> = build_librarians(&corpus)
                    .into_iter()
                    .enumerate()
                    .map(|(i, lib)| {
                        let plan = if i == dead {
                            FaultPlan::new().fail_from(if methodology == Methodology::CentralNothing { 0 } else { 1 })
                        } else {
                            FaultPlan::new()
                        };
                        InProcTransport::new(FaultyService::new(lib, plan))
                    })
                    .collect();
                Receptionist::new(transports, Analyzer::default())
            };
            let mut cached = build(dead);
            let mut plain = build(dead);
            cached.enable_cache(CacheConfig::default());
            enable(&mut cached, methodology);
            enable(&mut plain, methodology);
            let mut coverages: Vec<Coverage> = Vec::new();
            for query in &queries {
                let a = cached.query_with_coverage(methodology, query, K);
                let b = plain.query_with_coverage(methodology, query, K);
                match (a, b) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(fingerprint(&a.hits), fingerprint(&b.hits));
                        prop_assert_eq!(&a.coverage, &b.coverage);
                        prop_assert!(a.hits.iter().all(|h| h.librarian != dead));
                        coverages.push(a.coverage);
                    }
                    // A CI fan-out whose only candidates live at the
                    // dead librarian fails coverage on both sides —
                    // identically.
                    (Err(a), Err(b)) => prop_assert_eq!(format!("{a}"), format!("{b}")),
                    (a, b) => prop_assert!(
                        false,
                        "cache changed the outcome: cached ok = {}, plain ok = {}",
                        a.is_ok(),
                        b.is_ok()
                    ),
                }
            }
            // Every fan-out that touched the dead librarian reported it;
            // CI fan-outs that skip it (no candidates there) report a
            // complete answer.
            prop_assert!(coverages
                .iter()
                .all(|c| c.failed == vec![dead] || c.failed.is_empty()));
        }
    }

    /// Mid-stream epoch bumps: librarians re-index at a random point in
    /// the stream (contents unchanged, epoch moved). The cached
    /// receptionist must invalidate — and keep returning exactly what
    /// the cache-free receptionist returns before, across, and after
    /// the bump.
    fn epoch_bumps_mid_stream_preserve_transparency(
        corpus in vec(vec(vec(0usize..12, 1..6), 1..4), 2..4),
        query_pool in vec(vec(0usize..12, 1..4), 2..4),
        stream in vec(0usize..64, 6..12),
        bump_at_raw in 0usize..16,
        bump_lib_raw in 0usize..16,
    ) {
        let queries = render_stream(&query_pool, &stream);
        let bump_at = bump_at_raw % queries.len();
        let bump_lib = bump_lib_raw % corpus.len();

        // Closure services over shared librarians, so the test keeps a
        // handle it can bump mid-stream.
        let build = || {
            let libs: Vec<Arc<Mutex<Librarian>>> = build_librarians(&corpus)
                .into_iter()
                .map(|l| Arc::new(Mutex::new(l)))
                .collect();
            let transports: Vec<_> = libs
                .iter()
                .map(|lib| {
                    let lib = Arc::clone(lib);
                    InProcTransport::new(move |m: Message| lib.lock().unwrap().handle(m))
                })
                .collect();
            (libs, Receptionist::new(transports, Analyzer::default()))
        };
        let (cached_libs, mut cached) = build();
        let (plain_libs, mut plain) = build();
        cached.enable_cache(CacheConfig::default());
        cached.enable_cv().unwrap();
        plain.enable_cv().unwrap();

        let generation_before = cached.cache_stats().unwrap().generation;
        for (i, query) in queries.iter().enumerate() {
            if i == bump_at {
                // Both fleets re-index so the corpora stay twins; only
                // the cached side has state to invalidate. The health
                // poll is how a receptionist notices a bump without
                // waiting for the next fan-out's reply epochs.
                cached_libs[bump_lib].lock().unwrap().bump_epoch();
                plain_libs[bump_lib].lock().unwrap().bump_epoch();
                cached.fleet_health();
                plain.fleet_health();
            }
            let a = cached.query(Methodology::CentralVocabulary, query, K).unwrap();
            let b = plain.query(Methodology::CentralVocabulary, query, K).unwrap();
            prop_assert_eq!(fingerprint(&a), fingerprint(&b));
        }
        let stats = cached.cache_stats().unwrap();
        prop_assert!(
            stats.generation > generation_before,
            "health poll observed a moved epoch but the generation never advanced: {:?}",
            stats
        );
    }
}

/// The deterministic core of the epoch story, stated as plain
/// assertions: hit before the bump, stale miss after, identical
/// rankings throughout.
#[test]
fn epoch_bump_turns_hits_into_stale_misses() {
    let lib = || {
        Arc::new(Mutex::new(Librarian::from_texts(
            "A",
            &[("A-1", "cats and dogs"), ("A-2", "just cats")],
        )))
    };
    let a = lib();
    let service = {
        let a = Arc::clone(&a);
        move |m: Message| a.lock().unwrap().handle(m)
    };
    let mut r = Receptionist::new(vec![InProcTransport::new(service)], Analyzer::default());
    r.enable_cv().unwrap();
    r.enable_cache(CacheConfig::default());

    let first = r.query(Methodology::CentralVocabulary, "cats", 4).unwrap();
    let second = r.query(Methodology::CentralVocabulary, "cats", 4).unwrap();
    assert_eq!(fingerprint(&first), fingerprint(&second));
    let stats = r.cache_stats().unwrap();
    assert_eq!((stats.results.hits, stats.results.misses), (1, 1));
    assert_eq!(stats.results.stale, 0);

    a.lock().unwrap().bump_epoch();
    let report = r.fleet_health();
    assert!(report.all_up());
    let after = r.cache_stats().unwrap();
    assert!(
        after.generation > stats.generation,
        "epoch bump must advance the generation"
    );

    let third = r.query(Methodology::CentralVocabulary, "cats", 4).unwrap();
    assert_eq!(fingerprint(&first), fingerprint(&third));
    let stats = r.cache_stats().unwrap();
    assert_eq!(
        stats.results.stale, 1,
        "the pre-bump entry must read as stale"
    );
    assert_eq!(stats.results.hits, 1, "a stale entry is not a hit");

    // And the re-inserted entry serves again at the new generation.
    let fourth = r.query(Methodology::CentralVocabulary, "cats", 4).unwrap();
    assert_eq!(fingerprint(&first), fingerprint(&fourth));
    assert_eq!(r.cache_stats().unwrap().results.hits, 2);
}

/// A cache hit must not consume fault-plan indices: with a permanent
/// plan this is invisible, so pin the contract directly — the second
/// (cached) query sends nothing, which is the entire point of the
/// result cache.
#[test]
fn hits_suppress_fan_out_traffic() {
    let lib = Librarian::from_texts("A", &[("A-1", "cats and dogs")]);
    // Fail every request after the first two (CV setup + one rank
    // exchange): only a receptionist that answers repeats from cache
    // can survive the stream below.
    let service = FaultyService::new(lib, FaultPlan::new().fail_from(2));
    let mut r = Receptionist::new(vec![InProcTransport::new(service)], Analyzer::default());
    r.enable_cv().unwrap();
    r.enable_cache(CacheConfig::default());
    let first = r.query(Methodology::CentralVocabulary, "cats", 4).unwrap();
    for _ in 0..5 {
        let again = r.query(Methodology::CentralVocabulary, "cats", 4).unwrap();
        assert_eq!(fingerprint(&first), fingerprint(&again));
    }
    assert_eq!(r.cache_stats().unwrap().results.hits, 5);
}

/// A membership move mid-query-stream — a replica joining, being
/// promoted, and the old primary leaving, published through the fleet
/// [`RoutingTable`] — must bump the cache generation on the next query,
/// so no result or CV term-statistics entry cached under the old
/// routing is ever served again: the pre-move entries read as stale
/// misses, and rankings stay byte-identical to a cache-free twin
/// before, across, and after the move.
#[test]
fn membership_move_mid_stream_invalidates_result_and_term_caches() {
    let shard_docs: [&[(&str, &str)]; 2] = [
        &[("A-1", "cats and dogs"), ("A-2", "just cats")],
        &[("B-1", "dogs fetch sticks"), ("B-2", "cats nap")],
    ];
    let librarian =
        |shard: usize| Librarian::from_texts(if shard == 0 { "A" } else { "B" }, shard_docs[shard]);
    let table = RoutingTable::new();
    let groups: Vec<ReplicaGroup<InProcTransport<Librarian>>> = (0..2)
        .map(|s| {
            ReplicaGroup::new(
                s as u32,
                vec![(s as u32, InProcTransport::new(librarian(s)))],
            )
            .with_table(table.clone())
        })
        .collect();
    let mut cached = Receptionist::new(groups.clone(), Analyzer::default());
    cached.set_routing_table(table.clone());
    cached.enable_cv().unwrap();
    cached.enable_cache(CacheConfig::default());
    let mut plain = Receptionist::new(groups.clone(), Analyzer::default());
    plain.enable_cv().unwrap();

    let battery = |cached: &mut Receptionist<_>, plain: &mut Receptionist<_>| {
        for query in ["cats", "cats dogs"] {
            let a = cached
                .query(Methodology::CentralVocabulary, query, 4)
                .unwrap();
            let b = plain
                .query(Methodology::CentralVocabulary, query, 4)
                .unwrap();
            assert_eq!(fingerprint(&a), fingerprint(&b), "query {query:?}");
        }
    };
    battery(&mut cached, &mut plain);
    battery(&mut cached, &mut plain); // repeats: hits on both caches
    let before = cached.cache_stats().unwrap();
    assert_eq!(before.results.hits, 2, "both repeats hit the result cache");
    assert!(
        before.terms.hits > 0,
        "the shared term \"cats\" hit the term cache: {before:?}"
    );
    assert_eq!((before.results.stale, before.terms.stale), (0, 0));

    // The move: shard 1 gains a content-identical replica, promotes it,
    // and retires the old primary. Replicas hold the same index by
    // contract, so the caller-visible results must not move — but every
    // cached entry predates the routing change and may no longer be
    // addressed to the replica that produced it, so none may be served.
    let version = table.version();
    groups[1].add_replica(2, InProcTransport::new(librarian(1)));
    assert!(groups[1].promote(2));
    assert!(groups[1].remove_replica(1));
    assert_eq!(table.version(), version + 3, "every move published");

    battery(&mut cached, &mut plain);
    let after = cached.cache_stats().unwrap();
    assert!(
        after.generation > before.generation,
        "the routing-version delta must advance the cache generation"
    );
    assert_eq!(
        after.results.hits, before.results.hits,
        "no pre-move result entry may be served after the move"
    );
    assert!(
        after.results.stale >= 2,
        "pre-move result entries read as stale: {after:?}"
    );
    assert!(
        after.terms.stale > 0,
        "pre-move term-statistics entries read as stale: {after:?}"
    );

    // Steady state resumes at the new generation and stays transparent.
    battery(&mut cached, &mut plain);
    assert!(cached.cache_stats().unwrap().results.hits > after.results.hits);
}
