//! Cross-crate integration tests: corpus → librarians → receptionist →
//! evaluation, for every methodology and transport.

use teraphim::core::{CiParams, DistributedCollection, Librarian, Methodology, Receptionist};
use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
use teraphim::engine::Collection;
use teraphim::net::InProcTransport;
use teraphim::text::sgml::TrecDoc;
use teraphim::text::Analyzer;

fn corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(&CorpusSpec::small(21))
}

fn parts(corpus: &SyntheticCorpus) -> Vec<(&str, &[TrecDoc])> {
    corpus
        .subcollections()
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect()
}

/// The mono-server baseline over the concatenated collection.
fn mono(corpus: &SyntheticCorpus) -> Collection {
    let all: Vec<TrecDoc> = corpus
        .subcollections()
        .iter()
        .flat_map(|s| s.docs.iter().cloned())
        .collect();
    Collection::build("MS", Analyzer::default(), &all)
}

/// §4: "with vocabularies held at the receptionist, effectiveness is
/// identical to that of a MS system" — CV scores must equal MS scores
/// *exactly*, not approximately.
#[test]
fn cv_ranking_is_bit_identical_to_mono_server() {
    let corpus = corpus();
    let system = DistributedCollection::build(&parts(&corpus)).unwrap();
    let ms = mono(&corpus);

    for query in corpus.short_queries().iter().take(6) {
        let k = 30;
        let cv_hits = system
            .query(Methodology::CentralVocabulary, &query.text, k)
            .unwrap();
        let cv_docnos = system
            .ranked_docnos(Methodology::CentralVocabulary, &query.text, k)
            .unwrap();
        let ms_hits = ms.ranked_query(&query.text, k);
        assert_eq!(cv_hits.len(), ms_hits.len(), "query {}", query.id);
        for (i, (cv, msh)) in cv_hits.iter().zip(&ms_hits).enumerate() {
            assert!(
                (cv.score - msh.score).abs() < 1e-12,
                "query {} rank {i}: CV {} vs MS {}",
                query.id,
                cv.score,
                msh.score
            );
            // Same document, identified externally.
            assert_eq!(
                cv_docnos[i],
                ms.docno(msh.doc),
                "query {} rank {i}",
                query.id
            );
        }
    }
}

/// CI with ample k' must agree with CV on the top k: candidate scoring
/// uses the same global weights over the same documents.
#[test]
fn ci_with_large_k_prime_matches_cv_top_k() {
    let corpus = corpus();
    let system = DistributedCollection::build_with(
        &parts(&corpus),
        Analyzer::default(),
        CiParams {
            group_size: 10,
            // Expand every group: candidates = whole collection.
            k_prime: 1000,
        },
    )
    .unwrap();
    for query in corpus.short_queries().iter().take(4) {
        let k = 15;
        let cv: Vec<String> = system
            .ranked_docnos(Methodology::CentralVocabulary, &query.text, k)
            .unwrap();
        let ci: Vec<String> = system
            .ranked_docnos(Methodology::CentralIndex, &query.text, k)
            .unwrap();
        assert_eq!(cv, ci, "query {}", query.id);
    }
}

/// CN uses local statistics, so for at least some queries its merged
/// ranking must differ from CV's (otherwise the methodology distinction
/// is vacuous on this corpus).
#[test]
fn cn_differs_from_cv_somewhere() {
    let corpus = corpus();
    let system = DistributedCollection::build(&parts(&corpus)).unwrap();
    let mut any_difference = false;
    for query in corpus.short_queries() {
        let cn = system
            .ranked_docnos(Methodology::CentralNothing, &query.text, 20)
            .unwrap();
        let cv = system
            .ranked_docnos(Methodology::CentralVocabulary, &query.text, 20)
            .unwrap();
        if cn != cv {
            any_difference = true;
            break;
        }
    }
    assert!(any_difference, "CN never differed from CV");
}

/// Every methodology returns the same documents regardless of transport:
/// in-process librarians against a second, independently built system.
#[test]
fn results_are_deterministic_across_rebuilds() {
    let corpus = corpus();
    let a = DistributedCollection::build(&parts(&corpus)).unwrap();
    let b = DistributedCollection::build(&parts(&corpus)).unwrap();
    for methodology in Methodology::ALL {
        for query in corpus.short_queries().iter().take(3) {
            let ra = a.ranked_docnos(methodology, &query.text, 10).unwrap();
            let rb = b.ranked_docnos(methodology, &query.text, 10).unwrap();
            assert_eq!(ra, rb, "{methodology} query {}", query.id);
        }
    }
}

/// Fetched documents round-trip exactly through compressed transfer.
#[test]
fn fetched_documents_match_source_text() {
    let corpus = corpus();
    let system = DistributedCollection::build(&parts(&corpus)).unwrap();
    let query = &corpus.short_queries()[0].text;
    let hits = system
        .query(Methodology::CentralVocabulary, query, 5)
        .unwrap();
    let docs = system.fetch(&hits, true).unwrap();
    for doc in &docs {
        let original = corpus
            .subcollections()
            .iter()
            .flat_map(|s| &s.docs)
            .find(|d| d.docno == doc.docno)
            .expect("document exists in corpus");
        assert_eq!(doc.text.as_deref(), Some(original.text.as_str()));
    }
}

/// An empty subcollection must not break any methodology.
#[test]
fn empty_subcollection_is_tolerated() {
    let corpus = corpus();
    let mut p = parts(&corpus);
    let empty: [TrecDoc; 0] = [];
    p.push(("EMPTY", &empty));
    let system = DistributedCollection::build(&p).unwrap();
    for methodology in Methodology::ALL {
        let hits = system
            .query(methodology, &corpus.short_queries()[0].text, 10)
            .unwrap();
        assert!(!hits.is_empty(), "{methodology}");
    }
}

/// Single-document subcollections exercise short groups and tiny
/// vocabularies.
#[test]
fn single_document_subcollections_work() {
    let docs_a = [TrecDoc {
        docno: "A-1".into(),
        text: "solitary document about distributed retrieval".into(),
    }];
    let docs_b = [TrecDoc {
        docno: "B-1".into(),
        text: "another lonely text about compression".into(),
    }];
    let system = DistributedCollection::build(&[("A", &docs_a[..]), ("B", &docs_b[..])]).unwrap();
    for methodology in Methodology::ALL {
        let docnos = system.ranked_docnos(methodology, "retrieval", 5).unwrap();
        assert_eq!(docnos, vec!["A-1".to_string()], "{methodology}");
    }
}

/// The 43-way split of §4: CN effectiveness holds up with many more,
/// unevenly sized subcollections (here: rankings stay plausible and the
/// system stays consistent; the effectiveness comparison itself is in
/// the bench binary `split43`).
#[test]
fn many_way_split_works_end_to_end() {
    let corpus = corpus();
    let subs = teraphim::corpus::splits::split_into(&corpus, 17);
    let owned: Vec<(&str, &[TrecDoc])> = subs
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect();
    let system = DistributedCollection::build(&owned).unwrap();
    assert_eq!(system.num_librarians(), 17);
    let query = &corpus.short_queries()[0].text;
    // CV on the 17-way split must equal CV on the 4-way split (both are
    // bit-identical to MS).
    let four_way = DistributedCollection::build(&parts(&corpus)).unwrap();
    let a = system
        .ranked_docnos(Methodology::CentralVocabulary, query, 20)
        .unwrap();
    let b = four_way
        .ranked_docnos(Methodology::CentralVocabulary, query, 20)
        .unwrap();
    assert_eq!(a, b);
}

/// A receptionist without preprocessing can still run CN (its defining
/// property), and reports missing state for CV/CI.
#[test]
fn cn_needs_no_global_state() {
    let corpus = corpus();
    let transports: Vec<InProcTransport<Librarian>> = corpus
        .subcollections()
        .iter()
        .map(|s| InProcTransport::new(Librarian::build(&s.name, Analyzer::default(), &s.docs)))
        .collect();
    let mut r = Receptionist::new(transports, Analyzer::default());
    assert!(!r.has_cv());
    assert!(!r.has_ci());
    let hits = r
        .query(
            Methodology::CentralNothing,
            &corpus.short_queries()[0].text,
            10,
        )
        .unwrap();
    assert!(!hits.is_empty());
    assert!(r.query(Methodology::CentralVocabulary, "x", 10).is_err());
    assert!(r.query(Methodology::CentralIndex, "x", 10).is_err());
}
