//! Effectiveness-shape tests: the qualitative structure of the paper's
//! Table 1 must hold on the synthetic corpus.

use teraphim::core::{CiParams, DistributedCollection, Methodology};
use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
use teraphim::eval::{Judgments, QueryEval, SetEval};
use teraphim::text::sgml::TrecDoc;
use teraphim::text::Analyzer;

fn evaluate(
    system: &DistributedCollection,
    corpus: &SyntheticCorpus,
    judgments: &Judgments,
    methodology: Methodology,
    depth: usize,
) -> SetEval {
    let evals: Vec<QueryEval> = corpus
        .short_queries()
        .iter()
        .map(|q| {
            let ranking = system.ranked_docnos(methodology, &q.text, depth).unwrap();
            QueryEval::evaluate(judgments, q.id, &ranking)
        })
        .collect();
    SetEval::from_evals(&evals)
}

fn build(corpus: &SyntheticCorpus, k_prime: usize) -> DistributedCollection {
    let parts: Vec<(&str, &[TrecDoc])> = corpus
        .subcollections()
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect();
    DistributedCollection::build_with(
        &parts,
        Analyzer::default(),
        CiParams {
            group_size: 10,
            k_prime,
        },
    )
    .unwrap()
}

#[test]
fn retrieval_finds_relevant_documents_at_all() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(77));
    let judgments = Judgments::from_qrels(&corpus.qrels());
    let system = build(&corpus, 36);
    let cv = evaluate(
        &system,
        &corpus,
        &judgments,
        Methodology::CentralVocabulary,
        360,
    );
    // The generative ground truth makes topical queries easy: effectiveness
    // must be far above chance.
    assert!(
        cv.eleven_point_pct > 30.0,
        "CV 11-pt only {:.2}%",
        cv.eleven_point_pct
    );
    assert!(cv.relevant_in_top_20 > 1.0);
}

/// Table 1 shape: CN's local statistics change effectiveness only
/// mildly relative to CV (the paper even saw CN slightly *better*).
#[test]
fn cn_is_close_to_cv() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(77));
    let judgments = Judgments::from_qrels(&corpus.qrels());
    let system = build(&corpus, 36);
    let cv = evaluate(
        &system,
        &corpus,
        &judgments,
        Methodology::CentralVocabulary,
        360,
    );
    let cn = evaluate(
        &system,
        &corpus,
        &judgments,
        Methodology::CentralNothing,
        360,
    );
    let ratio = cn.eleven_point_pct / cv.eleven_point_pct;
    assert!(
        (0.7..=1.3).contains(&ratio),
        "CN {:.2}% vs CV {:.2}% (ratio {ratio:.2})",
        cn.eleven_point_pct,
        cv.eleven_point_pct
    );
}

/// Table 1 shape: a small k' caps recall and depresses the 11-pt average
/// (the paper: CI k'=100 scored 10.49% vs 23.07% for MS on long
/// queries), while large k' recovers CV-level effectiveness.
#[test]
fn small_k_prime_hurts_eleven_point_large_recovers() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(77));
    let judgments = Judgments::from_qrels(&corpus.qrels());
    // k' = 2 expands only 20 candidate documents per query.
    let small = build(&corpus, 2);
    let large = build(&corpus, 36); // all groups
    let depth = 360;
    let ci_small = evaluate(&small, &corpus, &judgments, Methodology::CentralIndex, 20);
    let ci_large = evaluate(
        &large,
        &corpus,
        &judgments,
        Methodology::CentralIndex,
        depth,
    );
    let cv = evaluate(
        &large,
        &corpus,
        &judgments,
        Methodology::CentralVocabulary,
        depth,
    );
    assert!(
        ci_small.eleven_point_pct < ci_large.eleven_point_pct,
        "small k' {:.2}% should trail large k' {:.2}%",
        ci_small.eleven_point_pct,
        ci_large.eleven_point_pct
    );
    assert!(
        (ci_large.eleven_point_pct - cv.eleven_point_pct).abs() < 1e-9,
        "full expansion must equal CV exactly"
    );
}

/// Table 1 shape: precision in the top 20 is relatively insensitive to
/// k' ("small values of k' may be used without the usefulness of the
/// result being substantially eroded").
#[test]
fn precision_at_20_is_insensitive_to_k_prime() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(77));
    let judgments = Judgments::from_qrels(&corpus.qrels());
    // k' = 12 of 36 groups: deep-ranking recall is capped (the paper's
    // "unsurprising that 11-point effectiveness is very low"), but the
    // top-20 screen should survive nearly intact.
    let small = build(&corpus, 12);
    let large = build(&corpus, 36);
    let ci_small_20 = evaluate(&small, &corpus, &judgments, Methodology::CentralIndex, 20);
    let ci_large_20 = evaluate(&large, &corpus, &judgments, Methodology::CentralIndex, 20);
    let ci_small_deep = evaluate(&small, &corpus, &judgments, Methodology::CentralIndex, 120);
    let ci_large_deep = evaluate(&large, &corpus, &judgments, Methodology::CentralIndex, 360);

    let rel20_retention = ci_small_20.relevant_in_top_20 / ci_large_20.relevant_in_top_20;
    let eleven_retention = ci_small_deep.eleven_point_pct / ci_large_deep.eleven_point_pct;
    assert!(
        rel20_retention >= 0.85,
        "rel@20 dropped too much: {:.2} -> {:.2}",
        ci_large_20.relevant_in_top_20,
        ci_small_20.relevant_in_top_20
    );
    assert!(
        rel20_retention > eleven_retention,
        "rel@20 ({rel20_retention:.2}) should be less sensitive to k' than \
         the 11-pt average ({eleven_retention:.2})"
    );
}

/// §4's 43-subcollection experiment: CN effectiveness on a many-way,
/// unevenly sized split is "only marginally poorer".
#[test]
fn cn_survives_many_way_split() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(77));
    let judgments = Judgments::from_qrels(&corpus.qrels());
    let four = build(&corpus, 36);
    let subs = teraphim::corpus::splits::split_into(&corpus, 20);
    let split_parts: Vec<(&str, &[TrecDoc])> = subs
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect();
    let many = DistributedCollection::build(&split_parts).unwrap();

    let eval_cn = |system: &DistributedCollection| {
        let evals: Vec<QueryEval> = corpus
            .short_queries()
            .iter()
            .map(|q| {
                let ranking = system
                    .ranked_docnos(Methodology::CentralNothing, &q.text, 360)
                    .unwrap();
                QueryEval::evaluate(&judgments, q.id, &ranking)
            })
            .collect();
        SetEval::from_evals(&evals)
    };
    let four_way = eval_cn(&four);
    let many_way = eval_cn(&many);
    assert!(
        many_way.eleven_point_pct > 0.6 * four_way.eleven_point_pct,
        "20-way CN {:.2}% collapsed vs 4-way {:.2}%",
        many_way.eleven_point_pct,
        four_way.eleven_point_pct
    );
}
