//! Elastic fleet end to end: replica groups under a live receptionist,
//! failover on transient `FaultPlan` errors, membership churn (join /
//! leave / promote) against a never-failed oracle, and plan-level
//! differential coverage across MS/CN/CV/CI on all three scenario
//! backends.
//!
//! The invariant under test everywhere: replicas are content-identical,
//! so *which* replica serves — and whether the primary died before,
//! during, or after any particular exchange — must be invisible in
//! rankings, to the score bit, and must never surface as degraded
//! coverage as long as one replica per shard survives.

use std::path::PathBuf;

use proptest::prelude::*;

use teraphim::core::{CiParams, Librarian, Methodology, Receptionist};
use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
use teraphim::net::tcp::{TcpServer, TcpTransport};
use teraphim::net::{
    DispatchMode, FaultPlan, FaultyService, FaultyTransport, InProcTransport, ReplicaGroup,
    RoutingTable,
};
use teraphim::obs::{diff_json, EventKind, QueryTrace, SpanTree, TraceSink};
use teraphim::scenario::{
    differential, doublecheck, generate_plan, Backend, GenOptions, InProcBackend, Plan, RunMode,
    SimBackend, Step, TcpBackend,
};
use teraphim::text::Analyzer;

/// Four tiny shards with overlapping vocabulary, the `tests/failures.rs`
/// fixture shape. Rebuilt from scratch for every replica: replicas must
/// be content-identical, not shared.
const SHARDS: [(&str, [(&str, &str); 2]); 4] = [
    ("A", [("A-1", "cats and dogs"), ("A-2", "just cats")]),
    ("B", [("B-1", "dogs alone"), ("B-2", "cats dogs birds")]),
    ("C", [("C-1", "cats chasing birds"), ("C-2", "quiet cats")]),
    ("D", [("D-1", "birds and cats"), ("D-2", "sleeping dogs")]),
];

const CI_PARAMS: CiParams = CiParams {
    group_size: 2,
    k_prime: 8,
};

fn build_librarian(shard: usize) -> Librarian {
    let (name, docs) = SHARDS[shard];
    Librarian::from_texts(name, &docs)
}

type Flaky = FaultyTransport<InProcTransport<Librarian>>;

/// A replica for `shard` with its own fault schedule. Replica ids follow
/// the scenario convention: the primary of shard `s` is id `s`, extras
/// get ids from a global counter starting at the shard count.
fn replica(shard: usize, plan: FaultPlan) -> Flaky {
    FaultyTransport::new(InProcTransport::new(build_librarian(shard)), plan)
}

/// A 2-replica-per-shard fleet; `faulty_shard`'s primary runs under
/// `primary_plan`, every other transport is healthy. Returns the groups
/// (shared handles — membership changes are visible to the
/// receptionist) alongside the receptionist.
fn elastic_fleet(
    faulty_shard: usize,
    primary_plan: FaultPlan,
) -> (Vec<ReplicaGroup<Flaky>>, Receptionist<ReplicaGroup<Flaky>>) {
    let n = SHARDS.len();
    let groups: Vec<ReplicaGroup<Flaky>> = (0..n)
        .map(|s| {
            let plan = if s == faulty_shard {
                primary_plan.clone()
            } else {
                FaultPlan::new()
            };
            ReplicaGroup::new(
                s as u32,
                vec![
                    (s as u32, replica(s, plan)),
                    ((n + s) as u32, replica(s, FaultPlan::new())),
                ],
            )
        })
        .collect();
    let receptionist = Receptionist::new(groups.clone(), Analyzer::default());
    (groups, receptionist)
}

/// The never-failed single-replica oracle.
fn oracle_fleet() -> Receptionist<InProcTransport<Librarian>> {
    let transports = (0..SHARDS.len())
        .map(|s| InProcTransport::new(build_librarian(s)))
        .collect();
    Receptionist::new(transports, Analyzer::default())
}

/// Runs the full query battery — every methodology, several queries and
/// k values — and flattens the answers to score-bit granularity.
/// Panics if any query degrades: with one live replica per shard,
/// coverage loss is a failover bug, not an acceptable answer.
fn battery<T: teraphim::net::Transport>(r: &mut Receptionist<T>) -> Vec<(usize, u32, u64)> {
    let mut flat = Vec::new();
    for methodology in [
        Methodology::CentralNothing,
        Methodology::CentralVocabulary,
        Methodology::CentralIndex,
    ] {
        for query in ["cats", "dogs birds", "quiet cats", "sleeping"] {
            for k in [3usize, 8] {
                let answer = r
                    .query_with_coverage(methodology, query, k)
                    .expect("a fleet with a live replica per shard answers");
                assert!(
                    answer.coverage.failed.is_empty(),
                    "failover must be invisible: {:?} {query:?} k={k} reported \
                     casualties {:?}",
                    methodology,
                    answer.coverage.failed
                );
                for hit in answer.hits {
                    flat.push((hit.librarian, hit.doc, hit.score.to_bits()));
                }
            }
        }
    }
    flat
}

proptest! {
    /// The tentpole invariant: one shard's primary dies — transiently
    /// erroring or dropping connections — after an arbitrary number of
    /// served requests (possibly zero: mid-preprocessing), and every
    /// ranking across CN/CV/CI stays byte-identical to the oracle's
    /// with full coverage. Healing the shard (a fresh replica joins,
    /// is promoted, the corpse leaves) keeps the answers identical.
    fn primary_death_is_invisible_at_any_point(
        shard in 0usize..4,
        drop_instead in proptest::bool::ANY,
        dies_after in 0u64..48,
    ) {
        let plan = if drop_instead {
            FaultPlan::new().drop_from(dies_after)
        } else {
            FaultPlan::new().fail_from(dies_after)
        };
        let mut oracle = oracle_fleet();
        oracle.enable_cv().unwrap();
        oracle.enable_ci(CI_PARAMS).unwrap();
        let expected = battery(&mut oracle);

        let (groups, mut elastic) = elastic_fleet(shard, plan);
        elastic.enable_cv().unwrap();
        elastic.enable_ci(CI_PARAMS).unwrap();
        prop_assert_eq!(&battery(&mut elastic), &expected);

        // Heal: a fresh replica joins the wounded shard, takes over as
        // preferred, and the dead primary leaves the group.
        let joined = (2 * SHARDS.len() + shard) as u32;
        groups[shard].add_replica(joined, replica(shard, FaultPlan::new()));
        prop_assert!(groups[shard].promote(joined));
        prop_assert!(groups[shard].remove_replica(shard as u32));
        prop_assert_eq!(groups[shard].preferred_id(), Some(joined));
        prop_assert_eq!(&battery(&mut elastic), &expected);
    }
}

/// A primary dead from the first exchange: the group records `Failover`
/// events naming the shard, the corpse, and the replica that took over,
/// and the shared routing table versions every membership change it is
/// told about.
#[test]
fn failover_traces_and_routing_versions() {
    let table = RoutingTable::new();
    let (groups, mut elastic) = elastic_fleet(1, FaultPlan::new().fail_from(0));
    let groups: Vec<ReplicaGroup<Flaky>> = groups
        .into_iter()
        .map(|g| g.with_table(table.clone()))
        .collect();
    let sink = elastic.enable_tracing();
    for group in &groups {
        let _ = group.clone().with_trace(sink.clone());
    }
    elastic.set_routing_table(table.clone());
    let version_after_publish = table.version();

    let mut oracle = oracle_fleet();
    let expected = oracle
        .query_with_coverage(Methodology::CentralNothing, "cats", 8)
        .unwrap();
    let answer = elastic
        .query_with_coverage(Methodology::CentralNothing, "cats", 8)
        .unwrap();
    assert_eq!(answer.hits, expected.hits, "failover preserved the ranking");
    assert!(answer.coverage.failed.is_empty());

    let failovers: Vec<(u32, u32, u32)> = sink
        .take_traces()
        .iter()
        .flat_map(|t| t.events.clone())
        .filter_map(|e| match e.kind {
            EventKind::Failover {
                librarian,
                from,
                to,
                ..
            } => Some((librarian, from, to)),
            _ => None,
        })
        .collect();
    assert!(
        failovers.contains(&(1, 1, 5)),
        "expected a shard-1 failover from replica 1 to replica 5, got {failovers:?}"
    );

    // Membership changes bump the shared routing table monotonically
    // and the published snapshot tracks the live set.
    let v1 = groups[1].add_replica(9, replica(1, FaultPlan::new()));
    assert!(v1 > version_after_publish);
    assert!(groups[1].promote(9));
    assert!(groups[1].remove_replica(1));
    let (replicas, preferred) = table.shard(1).expect("shard 1 is published");
    assert_eq!(preferred, 9);
    assert!(replicas.contains(&9) && !replicas.contains(&1));
    assert!(table.version() > v1);
}

fn load_fixture(name: &str) -> Plan {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/plans")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    Plan::from_json(&text).unwrap_or_else(|e| panic!("fixture {name} malformed: {e}"))
}

/// The committed ddmin-shrunk reproducer from the 500-step elastic
/// gate: draining a shard to zero replicas right after it received the
/// only copies of fresh documents, then asking the central index for
/// them. Historically this diverged — the real receptionist punished
/// the *only contacted* librarian being down with an
/// `insufficient_coverage` error while the simulator answered empty
/// with degraded coverage. The coverage policy now counts librarians
/// the central index answers for authoritatively, so all three
/// backends agree.
#[test]
fn committed_elastic_drain_reproducer_replays() {
    let plan = load_fixture("elastic_drain_min.json");
    assert_eq!(plan.replicas, 2);
    assert_eq!(
        plan.steps
            .iter()
            .filter(|s| matches!(s, Step::RemoveLib { .. }))
            .count(),
        2,
        "the fixture drains one shard's primary and then its last replica"
    );
    let report = differential(&plan).unwrap_or_else(|f| panic!("fixture diverged: {f}"));
    // The drained shard really was a casualty of the final CI query.
    let last = report.inproc.outcomes.last().expect("the CI query ran");
    assert_eq!(last.failed, vec![1], "shard 1 had zero live replicas");
    assert!(last.error.is_none(), "a drained shard degrades, not errors");
    doublecheck(&plan, SimBackend::new).expect("sim doublecheck");
    doublecheck(&plan, InProcBackend::new).expect("inproc doublecheck");
    doublecheck(&plan, TcpBackend::new).expect("tcp doublecheck");
}

/// Plan-level elastic differentials over fresh seeds: generated
/// workloads with 2–3 replicas per shard mix all four methodologies
/// (MS included — served mono-server, so membership churn must be
/// invisible there too), fault windows, and join/leave/promote churn;
/// sim, in-process and TCP must agree everywhere.
#[test]
fn elastic_differential_over_seeds() {
    for (seed, replicas) in [(11u64, 2u64), (24, 3)] {
        let plan = generate_plan(
            &format!("elastic-{seed}"),
            seed,
            GenOptions {
                steps: 90,
                clients: 2,
                allow_kills: false,
                replicas,
                crashes: false,
            },
        );
        assert!(
            plan.steps.iter().any(|s| matches!(
                s,
                Step::AddLib { .. } | Step::RemoveLib { .. } | Step::PromoteReplica { .. }
            )),
            "seed {seed}: membership churn present"
        );
        for mode in RunMode::ALL {
            assert!(
                plan.steps
                    .iter()
                    .any(|s| matches!(s, Step::Query { mode: m, .. } if *m == mode)),
                "seed {seed}: {} missing from the workload",
                mode.code()
            );
        }
        differential(&plan).unwrap_or_else(|f| panic!("seed {seed} diverged: {f}"));
    }
}

// ---------------------------------------------------------------------
// Golden normalized traces: a failover and a migration, committed under
// tests/fixtures/traces/ like the PR 3 methodology goldens. Regenerate
// with `UPDATE_TRACE_GOLDENS=1 cargo test --test elastic_fleet`.
// ---------------------------------------------------------------------

fn trace_fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/traces")
        .join(format!("{name}.json"))
}

/// Asserts `trace` (normalized) matches the committed golden fixture —
/// the `tests/traces.rs` machinery, shared by copy because integration
/// tests are separate binaries.
fn assert_matches_golden(name: &str, trace: &QueryTrace) {
    let actual = trace.normalized().to_json() + "\n";
    let path = trace_fixture_path(name);
    if std::env::var("UPDATE_TRACE_GOLDENS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_TRACE_GOLDENS=1 cargo test --test elastic_fleet",
            path.display()
        )
    });
    if let Some(diff) = diff_json(&expected, &actual) {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/trace-diffs");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join(format!("{name}.actual.json"));
        std::fs::write(&out, &actual).unwrap();
        panic!(
            "golden trace `{name}` diverged (actual written to {}):\n{diff}",
            out.display()
        );
    }
}

/// The span-tree variant of the golden assertion, same protocol.
fn assert_span_golden(name: &str, tree: &SpanTree) {
    let actual = tree.to_json();
    let path = trace_fixture_path(name);
    if std::env::var("UPDATE_TRACE_GOLDENS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_TRACE_GOLDENS=1 cargo test --test elastic_fleet",
            path.display()
        )
    });
    if let Some(diff) = diff_json(&expected, &actual) {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/trace-diffs");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join(format!("{name}.actual.json"));
        std::fs::write(&out, &actual).unwrap();
        panic!(
            "golden span tree `{name}` diverged (actual written to {}):\n{diff}",
            out.display()
        );
    }
}

fn trace_corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(&CorpusSpec::small(33))
}

fn corpus_librarian(corpus: &SyntheticCorpus, shard: usize) -> Librarian {
    let sub = &corpus.subcollections()[shard];
    Librarian::build(&sub.name, Analyzer::default(), &sub.docs)
}

/// One traced CN query against a 2-replica fleet whose shard-1 primary
/// is dead from the first exchange — the failover is on the record
/// between that shard's fan-out events.
fn failover_trace<T: teraphim::net::Transport>(
    groups: Vec<ReplicaGroup<T>>,
    query: &str,
) -> QueryTrace {
    let mut r = Receptionist::new(groups.clone(), Analyzer::default());
    r.set_dispatch_mode(DispatchMode::Sequential);
    let sink = TraceSink::new();
    r.set_trace_sink(sink.clone());
    for group in &groups {
        let _ = group.clone().with_trace(sink.clone());
    }
    r.query(Methodology::CentralNothing, query, 10)
        .expect("the fleet answers through the surviving replica");
    let mut traces = sink.take_traces();
    assert_eq!(traces.len(), 1, "one traced query, one trace");
    traces.remove(0)
}

/// The failover golden: the in-process and TCP stacks must emit the
/// byte-identical normalized trace — same fan-out, same `failover`
/// event naming the corpse and the replacement, same byte accounting.
/// (The simulator models whole-shard availability, not per-replica
/// faults, so it never emits `failover`; its membership schema is
/// pinned by the migrate golden below.)
#[test]
fn golden_failover_trace_shared_by_inproc_and_tcp() {
    let corpus = trace_corpus();
    let n = corpus.subcollections().len();
    let query = corpus.short_queries()[0].text.clone();

    let inproc_groups: Vec<ReplicaGroup<FaultyTransport<InProcTransport<Librarian>>>> = (0..n)
        .map(|s| {
            let dead = |r: usize| s == 1 && r == 0;
            ReplicaGroup::new(
                s as u32,
                (0..2)
                    .map(|r| {
                        let id = if r == 0 { s as u32 } else { (n + s) as u32 };
                        let plan = if dead(r) {
                            FaultPlan::new().fail_from(0)
                        } else {
                            FaultPlan::new()
                        };
                        (
                            id,
                            FaultyTransport::new(
                                InProcTransport::new(corpus_librarian(&corpus, s)),
                                plan,
                            ),
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    let inproc = failover_trace(inproc_groups, &query);
    assert!(
        inproc.events.iter().any(|e| matches!(
            e.kind,
            EventKind::Failover {
                librarian: 1,
                from: 1,
                ..
            }
        )),
        "the shard-1 failover is on the record"
    );
    assert_matches_golden("failover", &inproc);

    // The same fleet over real sockets: one TCP server per replica,
    // the shard-1 primary server refusing every request.
    let servers: Vec<Vec<TcpServer>> = (0..n)
        .map(|s| {
            (0..2)
                .map(|r| {
                    let plan = if s == 1 && r == 0 {
                        FaultPlan::new().fail_from(0)
                    } else {
                        FaultPlan::new()
                    };
                    TcpServer::spawn(
                        FaultyService::new(corpus_librarian(&corpus, s), plan),
                        "127.0.0.1:0",
                    )
                    .expect("loopback server spawns")
                })
                .collect()
        })
        .collect();
    let tcp_groups: Vec<ReplicaGroup<TcpTransport>> = servers
        .iter()
        .enumerate()
        .map(|(s, replicas)| {
            ReplicaGroup::new(
                s as u32,
                replicas
                    .iter()
                    .enumerate()
                    .map(|(r, server)| {
                        let id = if r == 0 { s as u32 } else { (n + s) as u32 };
                        (
                            id,
                            TcpTransport::connect(server.addr()).expect("loopback connects"),
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    let tcp = failover_trace(tcp_groups, &query);
    assert_eq!(
        tcp.normalized(),
        inproc.normalized(),
        "TCP and in-process failover traces must be byte-identical after \
         normalization"
    );

    // And the stitched form: the failover surfaces as a zero-duration
    // annotation inside shard 1's librarian span, identically on both
    // stacks, pinned as a span-tree golden next to the methodology ones.
    let inproc_tree = SpanTree::from_trace(&inproc.normalized());
    let tcp_tree = SpanTree::from_trace(&tcp.normalized());
    assert_eq!(
        inproc_tree.to_json(),
        tcp_tree.to_json(),
        "TCP and in-process failover span trees must be byte-identical"
    );
    assert_span_golden("span_failover", &inproc_tree);
}

/// The migration golden: an `add_lib` index handoff produces a
/// `migrate` trace — `Migrate` (docs and epoch handed over) then `Join`
/// (the new replica's id and the routing version it published) — and
/// all three scenario backends emit it byte-identically: the simulator
/// mirrors the real backends' replica-id and routing-version counters.
#[test]
fn golden_migrate_trace_shared_by_sim_inproc_and_tcp() {
    let mut plan = Plan::named("migrate-golden", 5);
    plan.replicas = 2;
    // One client session: the TCP backend records one `Join` per
    // session group, so a single session matches the other drivers.
    plan.clients = 1;

    let mut sim = SimBackend::new(&plan);
    sim.take_traces(); // discard construction-time preprocessing
    sim.add_lib(1);
    let sim_migrate = extract_migrate(sim.take_traces());

    let mut inproc = InProcBackend::new(&plan);
    inproc.take_traces();
    inproc.add_lib(1);
    let inproc_migrate = extract_migrate(inproc.take_traces());

    let mut tcp = TcpBackend::new(&plan);
    tcp.take_traces();
    tcp.add_lib(1);
    let tcp_migrate = extract_migrate(tcp.take_traces());

    assert_eq!(
        inproc_migrate.normalized(),
        sim_migrate.normalized(),
        "sim and in-process migrate traces must be byte-identical"
    );
    assert_eq!(
        tcp_migrate.normalized(),
        sim_migrate.normalized(),
        "sim and TCP migrate traces must be byte-identical"
    );
    assert_matches_golden("migrate", &sim_migrate);
}

fn extract_migrate(traces: Vec<QueryTrace>) -> QueryTrace {
    let mut migrates: Vec<QueryTrace> = traces.into_iter().filter(|t| t.op == "migrate").collect();
    assert_eq!(migrates.len(), 1, "one handoff, one migrate trace");
    let trace = migrates.remove(0);
    assert!(trace.complete, "the migrate trace closed cleanly");
    trace
}
