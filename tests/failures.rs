//! Failure injection: the receptionist must surface librarian and
//! transport failures as errors, never as silently wrong rankings.

use teraphim::core::{Librarian, Methodology, Receptionist};
use teraphim::net::{InProcTransport, Message, NetError, Service, Transport};
use teraphim::text::Analyzer;

/// A service that fails a configurable subset of requests and otherwise
/// delegates to a real librarian.
struct Faulty {
    inner: Librarian,
    fail_ranks: bool,
    fail_fetches: bool,
    garble_query_ids: bool,
}

impl Faulty {
    fn wrap(inner: Librarian) -> Faulty {
        Faulty {
            inner,
            fail_ranks: false,
            fail_fetches: false,
            garble_query_ids: false,
        }
    }
}

impl Service for Faulty {
    fn handle(&mut self, request: Message) -> Message {
        match &request {
            Message::RankRequest { .. } | Message::RankWeightedRequest { .. }
                if self.fail_ranks =>
            {
                return Message::Error {
                    message: "injected rank failure".into(),
                }
            }
            Message::FetchDocsRequest { .. } if self.fail_fetches => {
                return Message::Error {
                    message: "injected fetch failure".into(),
                }
            }
            _ => {}
        }
        let response = self.inner.handle(request);
        if self.garble_query_ids {
            if let Message::RankResponse { query_id, entries } = response {
                return Message::RankResponse {
                    query_id: query_id.wrapping_add(1),
                    entries,
                };
            }
        }
        response
    }
}

fn faulty_receptionist(
    configure: impl Fn(usize, &mut Faulty),
) -> Receptionist<InProcTransport<Faulty>> {
    let libs = [
        Librarian::from_texts("A", &[("A-1", "cats and dogs"), ("A-2", "just cats")]),
        Librarian::from_texts("B", &[("B-1", "dogs alone"), ("B-2", "cats dogs birds")]),
    ];
    let transports = libs
        .into_iter()
        .enumerate()
        .map(|(i, lib)| {
            let mut faulty = Faulty::wrap(lib);
            configure(i, &mut faulty);
            InProcTransport::new(faulty)
        })
        .collect();
    Receptionist::new(transports, Analyzer::default())
}

#[test]
fn healthy_baseline_works() {
    let mut r = faulty_receptionist(|_, _| {});
    let hits = r.query(Methodology::CentralNothing, "cats", 4).unwrap();
    assert!(!hits.is_empty());
}

#[test]
fn rank_failure_at_one_librarian_fails_the_query() {
    let mut r = faulty_receptionist(|i, f| f.fail_ranks = i == 1);
    let err = r.query(Methodology::CentralNothing, "cats", 4).unwrap_err();
    let message = format!("{err}");
    assert!(
        message.contains("injected rank failure"),
        "unexpected error: {message}"
    );
}

#[test]
fn fetch_failure_surfaces_after_successful_ranking() {
    let mut r = faulty_receptionist(|i, f| f.fail_fetches = i == 0);
    let hits = r.query(Methodology::CentralNothing, "cats", 4).unwrap();
    assert!(!hits.is_empty());
    let err = r.fetch(&hits, true).unwrap_err();
    assert!(format!("{err}").contains("injected fetch failure"));
}

#[test]
fn mismatched_query_ids_are_rejected() {
    let mut r = faulty_receptionist(|_, f| f.garble_query_ids = true);
    let err = r.query(Methodology::CentralNothing, "cats", 4).unwrap_err();
    assert!(format!("{err}").contains("unexpected"));
}

#[test]
fn cv_setup_failure_leaves_receptionist_usable_for_cn() {
    // A librarian that rejects StatsRequest: enable_cv fails, but CN
    // still works (its defining property — no setup needed).
    struct NoStats(Librarian);
    impl Service for NoStats {
        fn handle(&mut self, request: Message) -> Message {
            match request {
                Message::StatsRequest => Message::Error {
                    message: "stats unavailable".into(),
                },
                other => self.0.handle(other),
            }
        }
    }
    let transports = vec![InProcTransport::new(NoStats(Librarian::from_texts(
        "A",
        &[("A-1", "cats and dogs")],
    )))];
    let mut r = Receptionist::new(transports, Analyzer::default());
    assert!(r.enable_cv().is_err());
    assert!(!r.has_cv());
    let hits = r.query(Methodology::CentralNothing, "cats", 2).unwrap();
    assert_eq!(hits.len(), 1);
}

#[test]
fn corrupt_index_bytes_fail_ci_setup() {
    struct BadIndex(Librarian);
    impl Service for BadIndex {
        fn handle(&mut self, request: Message) -> Message {
            match request {
                Message::IndexRequest => Message::IndexResponse {
                    index_bytes: vec![0xDE, 0xAD, 0xBE, 0xEF],
                },
                other => self.0.handle(other),
            }
        }
    }
    let transports = vec![InProcTransport::new(BadIndex(Librarian::from_texts(
        "A",
        &[("A-1", "cats")],
    )))];
    let mut r = Receptionist::new(transports, Analyzer::default());
    let err = r.enable_ci(Default::default()).unwrap_err();
    assert!(format!("{err}").contains("index") || format!("{err}").contains("corrupt"));
}

#[test]
fn transport_disconnect_is_an_error_not_a_hang() {
    // A TCP transport whose server dies mid-session.
    use teraphim::net::tcp::{TcpServer, TcpTransport};
    let server = TcpServer::spawn(
        Librarian::from_texts("A", &[("A-1", "cats")]),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.addr();
    let mut transport = TcpTransport::connect(addr).unwrap();
    // First request succeeds.
    let ok = transport.request(&Message::StatsRequest);
    assert!(ok.is_ok());
    // Kill the server, then the next request must error.
    server.shutdown();
    std::thread::sleep(std::time::Duration::from_millis(100));
    let result = transport.request(&Message::StatsRequest);
    match result {
        Err(NetError::Io(_)) | Err(NetError::Disconnected) => {}
        other => {
            // Depending on socket timing the first write can still be
            // buffered; a second request must then fail.
            if other.is_ok() {
                let second = transport.request(&Message::StatsRequest);
                assert!(second.is_err(), "request after shutdown succeeded twice");
            }
        }
    }
}
