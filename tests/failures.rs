//! Failure injection: the receptionist must surface librarian and
//! transport failures as typed errors or degraded (but still correct)
//! rankings — never as silently wrong answers, and never as hangs.
//!
//! All faults are injected through the deterministic
//! `teraphim::net::FaultPlan` harness, so every failing schedule here is
//! replayable: rebuilding the same wrappers around the same plans
//! reproduces the same exchanges byte for byte.

use std::time::{Duration, Instant};

use teraphim::core::{CiParams, Librarian, Methodology, Receptionist};
use teraphim::net::{
    FaultPlan, FaultyService, FaultyTransport, InProcTransport, Message, NetError, RetryPolicy,
    RetryTransport, Service, Transport,
};
use teraphim::text::Analyzer;

/// Four librarians with overlapping vocabulary: every subcollection can
/// answer a "cats" query, so every librarian participates in every
/// methodology's fan-out.
fn four_librarians() -> Vec<Librarian> {
    vec![
        Librarian::from_texts("A", &[("A-1", "cats and dogs"), ("A-2", "just cats")]),
        Librarian::from_texts("B", &[("B-1", "dogs alone"), ("B-2", "cats dogs birds")]),
        Librarian::from_texts("C", &[("C-1", "cats chasing birds"), ("C-2", "quiet cats")]),
        Librarian::from_texts("D", &[("D-1", "birds and cats"), ("D-2", "sleeping dogs")]),
    ]
}

/// Wraps each librarian in a `FaultyService` driven by its plan. The
/// fault counter advances once per request the librarian *receives*, so
/// setup traffic (`enable_cv` = 1 request, `enable_ci` = 1 request)
/// shifts the indices query traffic sees.
fn faulty_receptionist(
    plans: Vec<FaultPlan>,
) -> Receptionist<InProcTransport<FaultyService<Librarian>>> {
    let transports = four_librarians()
        .into_iter()
        .zip(plans)
        .map(|(lib, plan)| InProcTransport::new(FaultyService::new(lib, plan)))
        .collect();
    Receptionist::new(transports, Analyzer::default())
}

fn healthy_plans() -> Vec<FaultPlan> {
    vec![FaultPlan::new(); 4]
}

fn plans_with(lib: usize, plan: FaultPlan) -> Vec<FaultPlan> {
    let mut plans = healthy_plans();
    plans[lib] = plan;
    plans
}

/// `(librarian, doc, score bits)` — bitwise identity, not approximate.
fn fingerprint(hits: &[teraphim::core::GlobalHit]) -> Vec<(usize, u32, u64)> {
    hits.iter()
        .map(|h| (h.librarian, h.doc, h.score.to_bits()))
        .collect()
}

#[test]
fn healthy_baseline_works() {
    let mut r = faulty_receptionist(healthy_plans());
    let hits = r.query(Methodology::CentralNothing, "cats", 8).unwrap();
    assert!(!hits.is_empty());
}

#[test]
fn rank_failure_at_one_librarian_fails_the_strict_query() {
    // The strict `query` path keeps its all-or-nothing contract: one
    // injected failure aborts the query with the librarian's error.
    let mut r = faulty_receptionist(plans_with(1, FaultPlan::new().fail_from(0)));
    let err = r.query(Methodology::CentralNothing, "cats", 8).unwrap_err();
    let message = format!("{err}");
    assert!(
        message.contains("injected fault"),
        "unexpected error: {message}"
    );
}

#[test]
fn fetch_failure_surfaces_after_successful_ranking() {
    // Request 0 at librarian 0 is the rank exchange (succeeds); request
    // 1 is the fetch (fails).
    let mut r = faulty_receptionist(plans_with(0, FaultPlan::new().fail_from(1)));
    let hits = r.query(Methodology::CentralNothing, "cats", 8).unwrap();
    assert!(hits.iter().any(|h| h.librarian == 0));
    let err = r.fetch(&hits, true).unwrap_err();
    assert!(format!("{err}").contains("injected fault"));
}

#[test]
fn garbled_query_ids_are_rejected() {
    let mut r = faulty_receptionist(plans_with(0, FaultPlan::new().garble_nth(0)));
    let err = r.query(Methodology::CentralNothing, "cats", 8).unwrap_err();
    assert!(format!("{err}").contains("unexpected"));
}

#[test]
fn cv_setup_failure_leaves_receptionist_usable_for_cn() {
    // Librarian 3 rejects its StatsRequest: enable_cv fails, but CN
    // still works (its defining property — no setup needed). The failed
    // setup consumed fault index 0, so the CN rank request (index 1)
    // is healthy again.
    let mut r = faulty_receptionist(plans_with(3, FaultPlan::new().fail_nth(0)));
    assert!(r.enable_cv().is_err());
    assert!(!r.has_cv());
    let hits = r.query(Methodology::CentralNothing, "cats", 8).unwrap();
    assert!(hits.iter().any(|h| h.librarian == 3));
}

#[test]
fn corrupt_index_bytes_fail_ci_setup() {
    // Payload corruption is outside FaultPlan's protocol-level faults,
    // so this keeps a bespoke service.
    struct BadIndex(Librarian);
    impl Service for BadIndex {
        fn handle(&mut self, request: Message) -> Message {
            match request {
                Message::IndexRequest => Message::IndexResponse {
                    index_bytes: vec![0xDE, 0xAD, 0xBE, 0xEF],
                },
                other => self.0.handle(other),
            }
        }
    }
    let transports = vec![InProcTransport::new(BadIndex(Librarian::from_texts(
        "A",
        &[("A-1", "cats")],
    )))];
    let mut r = Receptionist::new(transports, Analyzer::default());
    let err = r.enable_ci(Default::default()).unwrap_err();
    assert!(format!("{err}").contains("index") || format!("{err}").contains("corrupt"));
}

#[test]
fn timeout_then_retry_succeeds() {
    // First request sleeps past the transport deadline and times out;
    // the retry layer classifies Timeout as transient and the second
    // attempt (fault index 1, healthy) succeeds.
    let lib = Librarian::from_texts("A", &[("A-1", "cats and dogs")]);
    let service = FaultyService::new(
        lib,
        FaultPlan::new().delay_nth(0, Duration::from_millis(120)),
    );
    let transport = InProcTransport::new(service).with_deadline(Duration::from_millis(30));
    let mut t = RetryTransport::new(
        transport,
        RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(1),
        },
    );
    let response = t
        .request(&Message::RankRequest {
            query_id: 1,
            k: 4,
            terms: vec![("cats".into(), 1)],
        })
        .unwrap();
    assert!(matches!(response, Message::RankResponse { .. }));
    assert_eq!(t.retries_used(), 1);
}

#[test]
fn retries_exhausted_surfaces_the_final_error() {
    let lib = Librarian::from_texts("A", &[("A-1", "cats")]);
    let faulty = FaultyTransport::new(InProcTransport::new(lib), FaultPlan::new().fail_from(0));
    let mut t = RetryTransport::new(
        faulty,
        RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(1),
        },
    );
    let err = t.request(&Message::StatsRequest).unwrap_err();
    assert!(matches!(err, NetError::Unavailable(_)));
    assert_eq!(t.retries_used(), 2);
    // max_retries + 1 total attempts, all consumed by the plan.
    assert_eq!(t.inner().attempts(), 3);
}

#[test]
fn one_dead_librarian_degrades_cn() {
    let mut r = faulty_receptionist(plans_with(2, FaultPlan::new().fail_from(0)));
    let answer = r
        .query_with_coverage(Methodology::CentralNothing, "cats", 8)
        .unwrap();
    assert_eq!(answer.coverage.answered, vec![0, 1, 3]);
    assert_eq!(answer.coverage.failed, vec![2]);
    assert!(answer.coverage.is_degraded());
    assert!(!answer.hits.is_empty());
    assert!(answer.hits.iter().all(|h| h.librarian != 2));
    // Degraded merge == the ranking over only the survivors.
    let subset = r
        .query_subset(Methodology::CentralNothing, "cats", 8, &[0, 1, 3])
        .unwrap();
    assert_eq!(fingerprint(&answer.hits), fingerprint(&subset));
}

#[test]
fn one_dead_librarian_degrades_cv() {
    // enable_cv consumes fault index 0 at every librarian; killing from
    // index 1 lets preprocessing finish and fails query traffic only.
    let mut r = faulty_receptionist(plans_with(2, FaultPlan::new().fail_from(1)));
    r.enable_cv().unwrap();
    let answer = r
        .query_with_coverage(Methodology::CentralVocabulary, "cats", 8)
        .unwrap();
    assert_eq!(answer.coverage.answered, vec![0, 1, 3]);
    assert_eq!(answer.coverage.failed, vec![2]);
    // CV state knows per-librarian sizes: each librarian holds 2 of 8.
    assert_eq!(answer.coverage.docs_fraction, Some(0.75));
    let subset = r
        .query_subset(Methodology::CentralVocabulary, "cats", 8, &[0, 1, 3])
        .unwrap();
    assert_eq!(fingerprint(&answer.hits), fingerprint(&subset));
}

#[test]
fn one_dead_librarian_degrades_ci() {
    // Small groups and a generous k' make every document a candidate,
    // so all four librarians receive a ScoreCandidatesRequest (fault
    // index 1, after enable_ci's IndexRequest at index 0).
    let mut r = faulty_receptionist(plans_with(2, FaultPlan::new().fail_from(1)));
    r.enable_ci(CiParams {
        group_size: 2,
        k_prime: 8,
    })
    .unwrap();
    let answer = r
        .query_with_coverage(Methodology::CentralIndex, "cats", 8)
        .unwrap();
    assert_eq!(answer.coverage.answered, vec![0, 1, 3]);
    assert_eq!(answer.coverage.failed, vec![2]);
    // No CV state, so the coverage fraction is unknown.
    assert_eq!(answer.coverage.docs_fraction, None);
    assert!(!answer.hits.is_empty());
    assert!(answer.hits.iter().all(|h| h.librarian != 2));
}

/// The acceptance scenario: four librarians, one killed mid-stream
/// (after CV preprocessing), behind transports with a deadline. CN and
/// CV queries must return ranked results with coverage metadata — no
/// error, no hang — and replaying the same `FaultPlan` schedule on a
/// fresh receptionist must reproduce the exact same merged rankings.
#[test]
fn killed_mid_stream_degrades_and_replays_deterministically() {
    let deadline = Duration::from_secs(2);
    let run = |plans: Vec<FaultPlan>| {
        let transports: Vec<_> = four_librarians()
            .into_iter()
            .zip(plans)
            .map(|(lib, plan)| {
                InProcTransport::new(FaultyService::new(lib, plan)).with_deadline(deadline)
            })
            .collect();
        let mut r = Receptionist::new(transports, Analyzer::default());
        r.enable_cv().unwrap();
        let started = Instant::now();
        let cn = r
            .query_with_coverage(Methodology::CentralNothing, "cats dogs", 8)
            .unwrap();
        let cv = r
            .query_with_coverage(Methodology::CentralVocabulary, "cats dogs", 8)
            .unwrap();
        assert!(
            started.elapsed() < deadline,
            "degraded queries exceeded the deadline"
        );
        for answer in [&cn, &cv] {
            assert!(!answer.hits.is_empty());
            assert_eq!(answer.coverage.answered, vec![0, 1, 3]);
            assert_eq!(answer.coverage.failed, vec![2]);
            assert_eq!(answer.coverage.docs_fraction, Some(0.75));
        }
        (fingerprint(&cn.hits), fingerprint(&cv.hits))
    };
    // Librarian 2 dies after its CV setup exchange (fault index 0).
    let plans = plans_with(2, FaultPlan::new().fail_from(1));
    let first = run(plans.clone());
    let second = run(plans);
    assert_eq!(first, second, "FaultPlan replay diverged");
}

/// Regression: the merged tie order must match `ScoredDoc::ranking_cmp`
/// extended by the librarian index — (score desc, doc asc, librarian
/// asc) — even when the surviving librarian ids have gaps. Every
/// librarian holds byte-identical documents, so all scores tie and only
/// the pinned tie-break determines the order.
#[test]
fn tie_order_is_stable_under_librarian_id_gaps() {
    let texts: &[(&str, &str)] = &[("X-1", "identical cats"), ("X-2", "identical cats")];
    let transports: Vec<_> = (0..4)
        .map(|i| {
            let plan = if i == 1 {
                FaultPlan::new().fail_from(0)
            } else {
                FaultPlan::new()
            };
            InProcTransport::new(FaultyService::new(Librarian::from_texts("T", texts), plan))
        })
        .collect();
    let mut r = Receptionist::new(transports, Analyzer::default());
    let answer = r
        .query_with_coverage(Methodology::CentralNothing, "cats", 10)
        .unwrap();
    assert_eq!(answer.coverage.failed, vec![1]);
    let order: Vec<(u32, usize)> = answer.hits.iter().map(|h| (h.doc, h.librarian)).collect();
    // All six surviving (doc, librarian) pairs at one tied score:
    // doc ascending, then librarian ascending across the 0/2/3 gap.
    assert_eq!(order, vec![(0, 0), (0, 2), (0, 3), (1, 0), (1, 2), (1, 3)]);
    // And all scores really were tied, so the order above was decided
    // entirely by the tie-break.
    let first = answer.hits[0].score;
    assert!(answer.hits.iter().all(|h| h.score == first));
}

mod degraded_equivalence {
    //! Property: for ANY corpus and ANY single dead librarian, the
    //! degraded CN/CV ranking is byte-identical to the ranking computed
    //! over only the surviving subcollections — no phantom documents,
    //! no score drift.

    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    const POOL: &[&str] = &[
        "alpha", "bravo", "carbon", "delta", "echo", "foxtrot", "golf", "hotel", "india", "jazz",
        "kilo", "lima",
    ];

    /// `libs[i]` is librarian `i`'s documents; each document is a list
    /// of word-pool indices.
    fn build_librarians(libs: &[Vec<Vec<usize>>]) -> Vec<Librarian> {
        libs.iter()
            .enumerate()
            .map(|(i, docs)| {
                let texts: Vec<(String, String)> = docs
                    .iter()
                    .enumerate()
                    .map(|(d, words)| {
                        let text: Vec<&str> = words.iter().map(|&w| POOL[w]).collect();
                        (format!("L{i}-{d}"), text.join(" "))
                    })
                    .collect();
                let borrowed: Vec<(&str, &str)> = texts
                    .iter()
                    .map(|(n, t)| (n.as_str(), t.as_str()))
                    .collect();
                Librarian::from_texts(&format!("L{i}"), &borrowed)
            })
            .collect()
    }

    proptest! {
        fn degraded_merge_equals_surviving_subset(
            corpus in vec(vec(vec(0usize..12, 1..6), 1..4), 2..5),
            dead_raw in 0usize..16,
            query_words in vec(0usize..12, 1..4),
        ) {
            let dead = dead_raw % corpus.len();
            let survivors: Vec<usize> =
                (0..corpus.len()).filter(|&i| i != dead).collect();
            let query: Vec<&str> =
                query_words.iter().map(|&w| POOL[w]).collect();
            let query = query.join(" ");

            // Faulty receptionist: `dead` answers its CV setup request
            // (fault index 0) and then fails forever.
            let transports: Vec<_> = build_librarians(&corpus)
                .into_iter()
                .enumerate()
                .map(|(i, lib)| {
                    let plan = if i == dead {
                        FaultPlan::new().fail_from(1)
                    } else {
                        FaultPlan::new()
                    };
                    InProcTransport::new(FaultyService::new(lib, plan))
                })
                .collect();
            let mut faulty = Receptionist::new(transports, Analyzer::default());
            faulty.enable_cv().unwrap();

            // Healthy reference over the same corpus.
            let transports: Vec<_> = build_librarians(&corpus)
                .into_iter()
                .map(InProcTransport::new)
                .collect();
            let mut reference = Receptionist::new(transports, Analyzer::default());
            reference.enable_cv().unwrap();

            for methodology in [
                Methodology::CentralNothing,
                Methodology::CentralVocabulary,
            ] {
                let answer = faulty
                    .query_with_coverage(methodology, &query, 20)
                    .unwrap();
                prop_assert_eq!(&answer.coverage.failed, &vec![dead]);
                prop_assert!(
                    answer.hits.iter().all(|h| h.librarian != dead),
                    "phantom document from the dead librarian"
                );
                let subset = reference
                    .query_subset(methodology, &query, 20, &survivors)
                    .unwrap();
                prop_assert_eq!(
                    fingerprint(&answer.hits),
                    fingerprint(&subset)
                );
            }
        }
    }
}

#[test]
fn transport_disconnect_is_an_error_not_a_hang() {
    // A TCP transport whose server dies mid-session.
    use teraphim::net::tcp::{TcpServer, TcpTransport};
    let server = TcpServer::spawn(
        Librarian::from_texts("A", &[("A-1", "cats")]),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.addr();
    let mut transport = TcpTransport::connect(addr).unwrap();
    // First request succeeds.
    let ok = transport.request(&Message::StatsRequest);
    assert!(ok.is_ok());
    // Kill the server, then the next request must error.
    server.shutdown();
    std::thread::sleep(std::time::Duration::from_millis(100));
    let result = transport.request(&Message::StatsRequest);
    match result {
        Err(NetError::Io(_)) | Err(NetError::Disconnected) => {}
        other => {
            // Depending on socket timing the first write can still be
            // buffered; a second request must then fail.
            if other.is_ok() {
                let second = transport.request(&Message::StatsRequest);
                assert!(second.is_err(), "request after shutdown succeeded twice");
            }
        }
    }
}
