//! Fleet health end to end: the `Stats` admin protocol, the metrics
//! registry teed from the trace path, and `HealthReport` classification
//! under injected faults — the same answers over in-process and TCP
//! transports.

use std::sync::Arc;

use teraphim::core::health::{poll_fleet, HealthPolicy, HealthState};
use teraphim::core::{CiParams, Librarian, Methodology, Receptionist};
use teraphim::net::tcp::{TcpServer, TcpTransport};
use teraphim::net::{FaultPlan, FaultyService, InProcTransport};
use teraphim::obs::MetricsRegistry;
use teraphim::text::Analyzer;

/// Four librarians with overlapping vocabulary (every one participates
/// in a "cats" fan-out) — the same fixture shape `tests/failures.rs`
/// uses.
fn four_librarians() -> Vec<Librarian> {
    vec![
        Librarian::from_texts("A", &[("A-1", "cats and dogs"), ("A-2", "just cats")]),
        Librarian::from_texts("B", &[("B-1", "dogs alone"), ("B-2", "cats dogs birds")]),
        Librarian::from_texts("C", &[("C-1", "cats chasing birds"), ("C-2", "quiet cats")]),
        Librarian::from_texts("D", &[("D-1", "birds and cats"), ("D-2", "sleeping dogs")]),
    ]
}

fn faulty_receptionist(
    plans: Vec<FaultPlan>,
) -> Receptionist<InProcTransport<FaultyService<Librarian>>> {
    let transports = four_librarians()
        .into_iter()
        .zip(plans)
        .map(|(lib, plan)| InProcTransport::new(FaultyService::new(lib, plan)))
        .collect();
    Receptionist::new(transports, Analyzer::default())
}

fn plans_with(lib: usize, plan: FaultPlan) -> Vec<FaultPlan> {
    let mut plans = vec![FaultPlan::new(); 4];
    plans[lib] = plan;
    plans
}

/// The tentpole's acceptance shape: enable tracing, tee a registry, run
/// an ordinary query — per-librarian latency histograms and counters
/// light up from the existing trace events alone.
#[test]
fn any_traced_query_populates_per_librarian_metrics() {
    let transports: Vec<InProcTransport<Librarian>> = four_librarians()
        .into_iter()
        .map(InProcTransport::new)
        .collect();
    let mut receptionist = Receptionist::new(transports, Analyzer::default());
    receptionist.enable_tracing();
    let registry = receptionist.enable_metrics();
    receptionist.enable_cv().unwrap();
    receptionist
        .query(Methodology::CentralVocabulary, "cats and birds", 8)
        .unwrap();

    let snapshot = registry.snapshot();
    assert_eq!(snapshot.queries, 1);
    assert!(snapshot.messages_sent >= 4, "setup + rank fan-out");
    assert_eq!(snapshot.per_librarian.len(), 4);
    for lib in &snapshot.per_librarian {
        assert!(lib.sent > 0, "lib {} never contacted", lib.librarian);
        assert!(
            !lib.latency.is_empty(),
            "lib {} has no latency samples",
            lib.librarian
        );
        assert!(lib.latency.p99() >= lib.latency.p50());
    }
    let cv = snapshot
        .per_methodology
        .iter()
        .find(|m| m.code == "CV")
        .unwrap();
    assert_eq!(cv.queries, 1);
    assert!(!cv.latency.is_empty());
    // The exposition renders and lints clean straight off a live run.
    teraphim::obs::lint_prometheus(&snapshot.render_prometheus()).unwrap();
}

/// The satellite scenario: one permanently-failed librarian. The health
/// report marks exactly that librarian down, the stats table reflects
/// it, and the registry's failure counters agree with the `Coverage`
/// metadata the degraded queries returned.
#[test]
fn permanently_failed_librarian_is_down_and_counters_match_coverage() {
    let mut receptionist = faulty_receptionist(plans_with(2, FaultPlan::new().fail_from(0)));
    let registry = receptionist.enable_metrics();

    let mut degraded = 0u64;
    let mut failed_exchanges = 0u64;
    for _ in 0..3 {
        let answer = receptionist
            .query_with_coverage(Methodology::CentralNothing, "cats", 8)
            .unwrap();
        assert_eq!(answer.coverage.failed, vec![2], "only librarian 2 fails");
        if answer.coverage.is_degraded() {
            degraded += 1;
        }
        failed_exchanges += answer.coverage.failed.len() as u64;
    }

    let snapshot = registry.snapshot();
    assert_eq!(snapshot.degraded_queries, degraded);
    assert_eq!(snapshot.lib_failures, failed_exchanges);
    assert_eq!(snapshot.per_librarian[2].failures, failed_exchanges);
    for lib in [0usize, 1, 3] {
        assert_eq!(snapshot.per_librarian[lib].failures, 0);
    }

    let report = receptionist.fleet_health();
    assert_eq!(report.librarians.len(), 4);
    for row in &report.librarians {
        let expected = if row.librarian == 2 {
            HealthState::Down
        } else {
            HealthState::Up
        };
        assert_eq!(row.state, expected, "librarian {}", row.librarian);
    }
    assert_eq!(report.summary(), "4 librarians: 3 up, 0 degraded, 1 down");

    // The rendered table (what `teraphim stats` prints) reflects it.
    let table = report.render_table();
    let lines: Vec<&str> = table.lines().collect();
    assert_eq!(lines.len(), 5, "header + 4 rows");
    assert!(
        lines[3].contains("down"),
        "row for librarian 2: {}",
        lines[3]
    );
    for &healthy in &[1usize, 2, 4] {
        assert!(lines[healthy].contains("up"), "{}", lines[healthy]);
    }
}

/// A librarian that failed once but recovered answers its own poll
/// cleanly — the *client-side* ledger is what degrades it.
#[test]
fn transient_failure_degrades_via_client_observations() {
    // fail_nth(0): the first request librarian 1 receives fails, all
    // later ones (including the Stats poll) succeed.
    let mut receptionist = faulty_receptionist(plans_with(1, FaultPlan::new().fail_nth(0)));
    let registry = receptionist.enable_metrics();
    let answer = receptionist
        .query_with_coverage(Methodology::CentralNothing, "cats", 8)
        .unwrap();
    assert_eq!(answer.coverage.failed, vec![1]);
    // A second query succeeds everywhere: librarian 1's client-side
    // error rate settles at 1 failure / 2 sends = 0.5.
    let answer = receptionist
        .query_with_coverage(Methodology::CentralNothing, "dogs", 8)
        .unwrap();
    assert!(answer.coverage.failed.is_empty());
    assert_eq!(registry.snapshot().per_librarian[1].failures, 1);

    let report = receptionist.fleet_health();
    assert_eq!(report.librarians[1].state, HealthState::Degraded);
    for lib in [0usize, 2, 3] {
        assert_eq!(report.librarians[lib].state, HealthState::Up);
    }

    // With a permissive policy the same fleet reads fully up.
    let lenient = receptionist.fleet_health_with(HealthPolicy {
        degraded_error_rate: 0.9,
    });
    assert!(lenient.all_up());
}

/// A result-cache hit answers without touching the fleet: the metrics
/// registry's query count advances while its traffic ledger stands
/// still, and the health report's server-side request counters show the
/// librarians never saw the repeat.
#[test]
fn cache_hits_leave_the_fleet_ledger_untouched() {
    let transports: Vec<InProcTransport<Librarian>> = four_librarians()
        .into_iter()
        .map(InProcTransport::new)
        .collect();
    let mut receptionist = Receptionist::new(transports, Analyzer::default());
    receptionist.enable_tracing();
    let registry = receptionist.enable_metrics();
    receptionist.enable_cv().unwrap();
    receptionist.enable_cache(teraphim::core::CacheConfig::default());

    receptionist
        .query(Methodology::CentralVocabulary, "cats and birds", 8)
        .unwrap();
    let cold = registry.snapshot();
    receptionist
        .query(Methodology::CentralVocabulary, "cats and birds", 8)
        .unwrap();
    let warm = registry.snapshot();

    assert_eq!(
        warm.queries,
        cold.queries + 1,
        "the hit still counts as a query"
    );
    assert_eq!(
        warm.messages_sent, cold.messages_sent,
        "a hit sends nothing"
    );
    assert_eq!(warm.bytes_sent, cold.bytes_sent);
    let results = warm
        .per_cache
        .iter()
        .find(|c| c.cache == "results")
        .unwrap();
    assert_eq!((results.hits, results.misses), (1, 1));

    // The librarians' own ledgers agree: one rank request each, ever.
    let report = receptionist.fleet_health();
    assert!(report.all_up());
    for row in &report.librarians {
        assert_eq!(row.rank_requests, 1, "librarian {}", row.librarian);
        assert_eq!(row.epoch, 0, "no librarian re-indexed");
    }
}

/// The health poll doubles as the cache's epoch watcher: a fleet whose
/// health degrades, or whose poll reports a moved index epoch, bumps
/// the receptionist's cache generation so stale results never serve.
#[test]
fn health_polls_drive_cache_invalidation() {
    // Librarian 2 dies permanently. With the cache on, the first
    // coverage query observes the degraded fleet (one generation bump)
    // and later repeats replay the flagged degraded entry.
    let mut receptionist = faulty_receptionist(plans_with(2, FaultPlan::new().fail_from(0)));
    receptionist.enable_cache(teraphim::core::CacheConfig::default());
    let g0 = receptionist.cache_stats().unwrap().generation;
    let first = receptionist
        .query_with_coverage(Methodology::CentralNothing, "cats", 8)
        .unwrap();
    assert!(first.coverage.is_degraded());
    let g1 = receptionist.cache_stats().unwrap().generation;
    assert!(g1 > g0, "degradation must bump the generation");

    let again = receptionist
        .query_with_coverage(Methodology::CentralNothing, "cats", 8)
        .unwrap();
    assert_eq!(again.hits, first.hits);
    assert_eq!(again.coverage, first.coverage);
    let stats = receptionist.cache_stats().unwrap();
    assert_eq!(
        stats.results.hits, 1,
        "the degraded entry served the repeat"
    );
    assert_eq!(
        stats.generation, g1,
        "an unchanged failed set does not re-bump"
    );

    // Polling health confirms the same picture the cache acted on: the
    // report marks librarian 2 down, and folding that report into the
    // cache state is idempotent — no further generation churn.
    let report = receptionist.fleet_health();
    assert_eq!(report.librarians[2].state, HealthState::Down);
    assert_eq!(receptionist.cache_stats().unwrap().generation, g1);
}

/// The same report shape over TCP and in-process transports: a live TCP
/// fleet serves `Stats` end to end, and the rendered table is identical
/// to the in-process one over the same (healthy) librarians.
#[test]
fn tcp_and_in_process_stats_produce_the_same_table_shape() {
    let servers: Vec<TcpServer> = four_librarians()
        .into_iter()
        .map(|lib| TcpServer::spawn(lib, "127.0.0.1:0").unwrap())
        .collect();
    let mut tcp_transports: Vec<TcpTransport> = servers
        .iter()
        .map(|s| TcpTransport::connect(s.addr()).unwrap())
        .collect();
    let tcp_report = poll_fleet(&mut tcp_transports, HealthPolicy::default());

    let mut inproc_transports: Vec<InProcTransport<Librarian>> = four_librarians()
        .into_iter()
        .map(InProcTransport::new)
        .collect();
    let inproc_report = poll_fleet(&mut inproc_transports, HealthPolicy::default());

    // Fresh librarians on both sides: no requests served yet, so the
    // ledgers — and therefore the rendered tables — are identical.
    assert_eq!(tcp_report, inproc_report);
    assert_eq!(tcp_report.render_table(), inproc_report.render_table());
    assert!(tcp_report.all_up());
    for row in &tcp_report.librarians {
        assert!(row.num_docs == 2, "self-reported index stats over TCP");
        assert!(row.index_bytes > 0);
    }
    for server in servers {
        server.shutdown();
    }
}

/// CI preprocessing plus queries through a teed registry: per-phase
/// histograms fill in and the per-methodology slot sees CI latency.
#[test]
fn ci_queries_meter_phases_and_methodology_slots() {
    let transports: Vec<InProcTransport<Librarian>> = four_librarians()
        .into_iter()
        .map(InProcTransport::new)
        .collect();
    let mut receptionist = Receptionist::new(transports, Analyzer::default());
    let registry = Arc::new(MetricsRegistry::new());
    receptionist
        .enable_tracing()
        .tee_metrics(Arc::clone(&registry));
    receptionist
        .enable_ci(CiParams {
            group_size: 2,
            k_prime: 4,
        })
        .unwrap();
    receptionist
        .query(Methodology::CentralIndex, "cats birds", 4)
        .unwrap();
    let snapshot = registry.snapshot();
    let ci = snapshot
        .per_methodology
        .iter()
        .find(|m| m.code == "CI")
        .unwrap();
    assert_eq!(ci.queries, 1);
    assert!(snapshot.scored_candidates > 0, "Scored events tee through");
    assert!(
        snapshot.per_phase.iter().any(|(_, h)| !h.is_empty()),
        "phase brackets tee through"
    );
}
