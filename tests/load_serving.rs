//! High-concurrency serving-core stress tests: many client threads
//! pipelining queries through multiplexed connections and a `ServePool`
//! must produce byte-identical rankings to a sequential in-process
//! oracle, keep all three traffic-accounting views in agreement, and
//! preserve the fault/retry/deadline semantics of the per-call path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use teraphim::core::{
    CiParams, DistributedCollection, Librarian, Methodology, Receptionist, ServePool,
};
use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
use teraphim::net::mux::{MuxPool, MuxTransport};
use teraphim::net::tcp::{ServerOptions, TcpServer, TcpTransport};
use teraphim::net::{
    DispatchMode, FaultPlan, FaultyTransport, InProcTransport, RetryPolicy, RetryTransport,
    TcpOptions,
};
use teraphim::obs::{MetricsRegistry, TraceSink};
use teraphim::text::Analyzer;

const CI: CiParams = CiParams {
    group_size: 10,
    k_prime: 50,
};

/// Spawns one multiplexing-capable server per subcollection.
fn spawn_fleet(corpus: &SyntheticCorpus) -> Vec<TcpServer> {
    corpus
        .subcollections()
        .iter()
        .map(|s| {
            TcpServer::spawn_with(
                vec![Librarian::build(&s.name, Analyzer::default(), &s.docs)],
                "127.0.0.1:0",
                ServerOptions {
                    workers: 2,
                    queue_depth: 64,
                },
            )
            .unwrap()
        })
        .collect()
}

/// N client threads race through a shared job list, each checking a
/// pipelined multiplexed session out of a `ServePool` per query. Every
/// ranking must be byte-identical to the sequential in-process oracle —
/// for all four methodologies, repeated so the same query runs on
/// several different sessions.
#[test]
fn concurrent_pipelined_sessions_match_the_sequential_oracle() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(77));
    let parts: Vec<(&str, &[teraphim::text::sgml::TrecDoc])> = corpus
        .subcollections()
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect();
    let oracle = DistributedCollection::build_with(&parts, Analyzer::default(), CI).unwrap();

    let servers = spawn_fleet(&corpus);
    let mut prototype = Receptionist::new(
        servers
            .iter()
            .map(|s| TcpTransport::connect(s.addr()).unwrap())
            .collect::<Vec<_>>(),
        Analyzer::default(),
    );
    prototype.enable_cv().unwrap();
    prototype.enable_ci(CI).unwrap();

    let pools: Vec<Arc<MuxPool>> = servers
        .iter()
        .map(|s| MuxPool::connect(s.addr(), 2, TcpOptions::default()).unwrap())
        .collect();
    // Fewer sessions than client threads: some checkouts must block on
    // the pool's admission control and still come back correct.
    let serve_pool = ServePool::new(
        (0..6)
            .map(|_| {
                let mut session = prototype.fork(
                    pools
                        .iter()
                        .map(|p| MuxTransport::new(Arc::clone(p)))
                        .collect::<Vec<_>>(),
                );
                session.set_dispatch_mode(DispatchMode::Pipelined);
                session
            })
            .collect(),
    );

    // (methodology, query, expected docnos), each run three times so it
    // lands on different sessions interleaved with other queries.
    let mut jobs = Vec::new();
    for methodology in Methodology::ALL {
        for query in corpus.short_queries().iter().take(4) {
            let expected = oracle.ranked_docnos(methodology, &query.text, 12).unwrap();
            jobs.push((methodology, query.text.clone(), expected));
        }
    }
    let reps = 3;
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let next = &next;
            let jobs = &jobs;
            let serve_pool = serve_pool.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() * reps {
                    break;
                }
                let (methodology, query, expected) = &jobs[i % jobs.len()];
                let mut session = serve_pool.session();
                let got = session.ranked_docnos(*methodology, query, 12).unwrap();
                assert_eq!(&got, expected, "{methodology} query {query:?}");
            });
        }
    });
    assert_eq!(serve_pool.in_flight(), 0, "all sessions returned");

    for server in servers {
        server.shutdown();
    }
}

/// Traffic accounting must agree three ways under concurrency, per
/// session and in aggregate:
///
/// 1. the session's own transport counters ([`Receptionist::traffic`]);
/// 2. the sums over that session's trace events;
/// 3. a metrics registry shared by *all* sessions' sinks.
///
/// And the fleet's server-side counters must equal the client-side sum —
/// no request is double-counted or lost in the multiplexed pipeline.
#[test]
fn session_accounting_agrees_three_ways_under_concurrency() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(31));
    let servers = spawn_fleet(&corpus);
    let prototype = Receptionist::new(
        servers
            .iter()
            .map(|s| TcpTransport::connect(s.addr()).unwrap())
            .collect::<Vec<_>>(),
        Analyzer::default(),
    );
    let pools: Vec<Arc<MuxPool>> = servers
        .iter()
        .map(|s| MuxPool::connect(s.addr(), 2, TcpOptions::default()).unwrap())
        .collect();
    // Setup consumed some round trips on the prototype's transports;
    // only the forked sessions' traffic goes through the mux pools, so
    // server counters are compared against the pools' counters.
    let registry = Arc::new(MetricsRegistry::new());

    let queries: Vec<String> = corpus
        .short_queries()
        .iter()
        .map(|q| q.text.clone())
        .collect();
    let sessions: Vec<(Receptionist<MuxTransport>, TraceSink)> = (0..4)
        .map(|_| {
            let sink = TraceSink::new();
            sink.tee_metrics(Arc::clone(&registry));
            let mut session = prototype.fork(
                pools
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        MuxTransport::new(Arc::clone(p)).with_trace(sink.clone(), i as u32)
                    })
                    .collect::<Vec<_>>(),
            );
            session.set_dispatch_mode(DispatchMode::Pipelined);
            session.set_trace_sink(sink.clone());
            (session, sink)
        })
        .collect();

    let finished: Vec<(Receptionist<MuxTransport>, TraceSink)> = std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .into_iter()
            .map(|(mut session, sink)| {
                let queries = &queries;
                scope.spawn(move || {
                    for (i, query) in queries.iter().cycle().take(10).enumerate() {
                        let k = 5 + (i % 3);
                        session
                            .query(Methodology::CentralNothing, query, k)
                            .unwrap();
                    }
                    (session, sink)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut client_total = teraphim::net::TrafficStats::default();
    for (session, sink) in &finished {
        let transports = session.per_librarian_traffic();
        client_total.absorb(&session.traffic());

        // Way 2: this session's trace sums equal its transport counters.
        let traces = sink.take_traces();
        assert_eq!(traces.len(), 10);
        let mut trace_rows = vec![teraphim::net::TrafficStats::default(); transports.len()];
        for trace in &traces {
            for row in trace.per_librarian_traffic() {
                let entry = &mut trace_rows[row.librarian as usize];
                entry.bytes_sent += row.bytes_sent;
                entry.bytes_received += row.bytes_received;
                entry.round_trips += row.messages / 2;
            }
        }
        assert_eq!(trace_rows, transports, "trace sums vs transport counters");
    }

    // Way 3: the shared registry saw every session's traffic, exactly.
    let totals = registry.snapshot().traffic_totals();
    assert_eq!(totals.round_trips, client_total.round_trips);
    assert_eq!(totals.bytes_sent, client_total.bytes_sent);
    assert_eq!(totals.bytes_received, client_total.bytes_received);

    // Server side: the fleet answered exactly the exchanges the mux
    // pools carried (sessions are the pools' only users).
    let pool_trips: u64 = pools.iter().map(|p| p.traffic().round_trips).sum();
    let server_trips: u64 = servers.iter().map(|s| s.traffic().round_trips).sum();
    let prototype_trips = prototype.traffic().round_trips;
    assert_eq!(pool_trips, client_total.round_trips);
    assert_eq!(server_trips, pool_trips + prototype_trips);

    for server in servers {
        server.shutdown();
    }
}

/// Deterministic faults injected on the multiplexed path must produce
/// exactly the coverage and rankings of the same plans on the in-process
/// path: a transient failure is retried transparently, a permanent one
/// degrades the same librarian out of the answer.
#[test]
fn mux_faults_and_retries_match_the_inproc_oracle() {
    let texts: [(&str, &[(&str, &str)]); 4] = [
        ("A", &[("A-1", "cats and dogs"), ("A-2", "just cats")]),
        ("B", &[("B-1", "dogs alone"), ("B-2", "cats dogs birds")]),
        ("C", &[("C-1", "cats chasing birds"), ("C-2", "quiet cats")]),
        ("D", &[("D-1", "birds and cats"), ("D-2", "sleeping dogs")]),
    ];
    // Librarian 1 fails once (retried), librarian 2 fails permanently
    // (degraded out). Faults are client-side, so server traffic and the
    // librarians themselves stay identical between the two runs.
    let plans = |lib: usize| -> FaultPlan {
        match lib {
            1 => FaultPlan::new().fail_nth(0),
            2 => FaultPlan::new().fail_from(0),
            _ => FaultPlan::new(),
        }
    };
    let policy = RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
    };

    let mut oracle = Receptionist::new(
        texts
            .iter()
            .enumerate()
            .map(|(i, (name, docs))| {
                RetryTransport::new(
                    FaultyTransport::new(
                        InProcTransport::new(Librarian::from_texts(name, docs)),
                        plans(i),
                    ),
                    policy,
                )
            })
            .collect::<Vec<_>>(),
        Analyzer::default(),
    );
    oracle.set_dispatch_mode(DispatchMode::Sequential);

    let servers: Vec<TcpServer> = texts
        .iter()
        .map(|(name, docs)| {
            TcpServer::spawn_with(
                vec![Librarian::from_texts(name, docs)],
                "127.0.0.1:0",
                ServerOptions::default(),
            )
            .unwrap()
        })
        .collect();
    let mut mux = Receptionist::new(
        servers
            .iter()
            .enumerate()
            .map(|(i, s)| {
                RetryTransport::new(
                    FaultyTransport::new(MuxTransport::connect(s.addr()).unwrap(), plans(i)),
                    policy,
                )
            })
            .collect::<Vec<_>>(),
        Analyzer::default(),
    );
    mux.set_dispatch_mode(DispatchMode::Pipelined);

    let fingerprint = |hits: &[teraphim::core::GlobalHit]| -> Vec<(usize, u32, u64)> {
        hits.iter()
            .map(|h| (h.librarian, h.doc, h.score.to_bits()))
            .collect()
    };
    for query in ["cats dogs", "birds", "quiet sleeping cats"] {
        let expected = oracle
            .query_with_coverage(Methodology::CentralNothing, query, 8)
            .unwrap();
        let got = mux
            .query_with_coverage(Methodology::CentralNothing, query, 8)
            .unwrap();
        assert_eq!(got.coverage.answered, expected.coverage.answered, "{query}");
        assert_eq!(got.coverage.failed, expected.coverage.failed, "{query}");
        assert_eq!(
            fingerprint(&got.hits),
            fingerprint(&expected.hits),
            "{query}"
        );
    }

    for server in servers {
        server.shutdown();
    }
}

/// A librarian that accepts the multiplexed connection but never replies
/// must trip the per-request deadline (once per retry attempt) and be
/// degraded out — same contract the per-call TCP path proved in
/// `tcp_e2e`, now with the reply awaited through the reactor thread.
#[test]
fn silent_librarian_times_out_over_mux_and_degrades() {
    let texts: [(&str, &[(&str, &str)]); 3] = [
        ("A", &[("A-1", "cats and dogs"), ("A-2", "just cats")]),
        ("B", &[("B-1", "dogs alone"), ("B-2", "cats dogs birds")]),
        ("C", &[("C-1", "cats chasing birds"), ("C-2", "quiet cats")]),
    ];
    let servers: Vec<TcpServer> = texts
        .iter()
        .map(|(name, docs)| {
            TcpServer::spawn_with(
                vec![Librarian::from_texts(name, docs)],
                "127.0.0.1:0",
                ServerOptions::default(),
            )
            .unwrap()
        })
        .collect();
    // Connections land in the backlog, so connect succeeds but no
    // reply ever comes back through the reactor.
    let silent = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let silent_addr = silent.local_addr().unwrap();

    let deadline = Duration::from_millis(250);
    let policy = RetryPolicy {
        max_retries: 1,
        backoff: Duration::ZERO,
    };
    let connect = |addr: std::net::SocketAddr| {
        RetryTransport::new(
            MuxTransport::connect(addr).unwrap().with_deadline(deadline),
            policy,
        )
    };
    let mut r = Receptionist::new(
        vec![
            connect(servers[0].addr()),
            connect(servers[1].addr()),
            connect(silent_addr),
            connect(servers[2].addr()),
        ],
        Analyzer::default(),
    );
    r.set_dispatch_mode(DispatchMode::Pipelined);

    let started = Instant::now();
    let answer = r
        .query_with_coverage(Methodology::CentralNothing, "cats dogs", 8)
        .unwrap();
    let elapsed = started.elapsed();

    assert_eq!(answer.coverage.answered, vec![0, 1, 3]);
    assert_eq!(answer.coverage.failed, vec![2]);
    assert!(!answer.hits.is_empty());
    assert!(answer.hits.iter().all(|h| h.librarian != 2));
    // Two deadline waits (initial + one retry) plus slack — not a hang.
    assert!(
        elapsed < deadline * 5,
        "degraded query took {elapsed:?} against a {deadline:?} deadline"
    );

    // The degraded answer matches a fan-out to only the healthy subset.
    let subset = r
        .query_subset(Methodology::CentralNothing, "cats dogs", 8, &[0, 1, 3])
        .unwrap();
    let key = |hits: &[teraphim::core::GlobalHit]| -> Vec<(usize, u32, u64)> {
        hits.iter()
            .map(|h| (h.librarian, h.doc, h.score.to_bits()))
            .collect()
    };
    assert_eq!(key(&answer.hits), key(&subset));

    for server in servers {
        server.shutdown();
    }
}
