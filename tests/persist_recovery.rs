//! Crash-recovery properties of the persistent index store (tentpole
//! satellite suite):
//!
//! * the crash-point sweep — a simulated process death at *every* byte
//!   offset of a WAL commit, in both torn-write and garbled-sector
//!   modes, must always reopen onto a durable epoch whose rankings are
//!   byte-identical to an in-memory oracle at that epoch;
//! * codec round-trips — arbitrary documents through the WAL batch
//!   codec and the segment codec come back identical;
//! * corruption anywhere but the WAL tail fails `open` with a typed
//!   [`StoreError`] — no panic, no partially-applied state;
//! * as-of queries replay any durable epoch deterministically, and the
//!   store-backed [`Librarian`] recovers epoch and rankings end-to-end.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::test_runner::TestRng;

use teraphim::core::Librarian;
use teraphim::engine::Collection;
use teraphim::store::{wal, CrashMode, CrashPoint, IndexStore, StoreError, StoreOptions, TempDir};
use teraphim::text::sgml::TrecDoc;
use teraphim::text::Analyzer;

/// Probe queries for ranking fingerprints: overlapping vocabulary so
/// churn batches actually move scores.
const QUERIES: &[&str] = &[
    "cat dog",
    "penguin colony",
    "tides rising",
    "batch volume cat",
    "mat yard dog",
];

/// Exact ranking fingerprint: every `(doc, score-bit)` pair over the
/// probe queries. Two collections with equal fingerprints rank
/// identically to the last bit of every score.
fn fingerprint(c: &Collection) -> Vec<(u32, u64)> {
    QUERIES
        .iter()
        .flat_map(|q| {
            c.ranked_query(q, 10)
                .into_iter()
                .map(|h| (h.doc, h.score.to_bits()))
        })
        .collect()
}

/// Keep every WAL batch pending (no auto-checkpoint), so crash sweeps
/// exercise replay of the full log.
fn manual() -> StoreOptions {
    StoreOptions {
        checkpoint_batches: 0,
        merge_threshold: 0,
    }
}

const VOCAB: &[&str] = &[
    "cat",
    "dog",
    "mat",
    "yard",
    "penguin",
    "colony",
    "tides",
    "rising",
    "batch",
    "volume",
    "compression",
    "inverted",
    "files",
    "sat",
    "ran",
];

fn doc(tag: &str, i: usize, words: &[usize]) -> TrecDoc {
    TrecDoc {
        docno: format!("{tag}-{i}"),
        text: words
            .iter()
            .map(|&w| VOCAB[w % VOCAB.len()])
            .collect::<Vec<_>>()
            .join(" "),
    }
}

fn base_docs() -> Vec<TrecDoc> {
    (0..4)
        .map(|i| doc("BASE", i, &[i, i + 1, i + 5, 2]))
        .collect()
}

/// One arbitrary document batch: 1..=3 docs of 1..=6 vocabulary words.
struct ArbBatch {
    tag: &'static str,
}

impl Strategy for ArbBatch {
    type Value = Vec<TrecDoc>;

    fn generate(&self, rng: &mut TestRng) -> Vec<TrecDoc> {
        let n = 1 + rng.index(3);
        (0..n)
            .map(|i| {
                let len = 1 + rng.index(6);
                let words: Vec<usize> = (0..len).map(|_| rng.index(VOCAB.len())).collect();
                doc(self.tag, i, &words)
            })
            .collect()
    }
}

/// Builds a store with `batches` committed (WAL-only, manual
/// checkpointing) alongside the in-memory oracle collection.
fn store_with_batches(dir: &TempDir, batches: &[Vec<TrecDoc>]) -> (IndexStore, Collection) {
    let (mut store, mut oracle) = IndexStore::create_with(
        dir.path(),
        "CRASH",
        &Analyzer::default(),
        &base_docs(),
        manual(),
    )
    .expect("fresh store creates");
    for batch in batches {
        store.log_batch(batch).expect("batch commits");
        oracle.append_documents(batch).expect("oracle appends");
    }
    (store, oracle)
}

/// The oracle collection at `epoch`: base plus the first `epoch`
/// batches, applied exactly like the live path applies them.
fn oracle_at(batches: &[&[TrecDoc]], epoch: u64) -> Collection {
    let mut c = Collection::build("CRASH", Analyzer::default(), &base_docs());
    for batch in batches.iter().take(epoch as usize) {
        c.append_documents(batch).expect("oracle appends");
    }
    c
}

/// Runs one crash case: `committed` batches are durable, then a crash
/// strikes at byte `offset` of the record carrying `next`. Asserts the
/// reopened store lands on exactly the expected durable epoch with
/// oracle-identical rankings.
fn run_crash_case(committed: &[Vec<TrecDoc>], next: &[TrecDoc], offset: u64, mode: CrashMode) {
    let dir = TempDir::new("crash-case").expect("tempdir");
    let (mut store, _) = store_with_batches(&dir, committed);
    let k = committed.len() as u64;
    let record_len = wal::encode_record(k + 1, next).len() as u64;

    store.inject_crash(CrashPoint { offset, mode });
    let err = store.log_batch(next).expect_err("armed crash point fires");
    assert_eq!(err, StoreError::Crashed);
    // The "process" is dead: every further operation is refused.
    assert_eq!(store.log_batch(next), Err(StoreError::Poisoned));
    drop(store);

    // The record survives only if every one of its bytes did.
    let expected = if offset >= record_len { k + 1 } else { k };
    let (reopened, collection) = IndexStore::open_with(dir.path(), manual())
        .unwrap_or_else(|e| panic!("reopen after crash at {offset}/{record_len} {mode:?}: {e}"));
    assert_eq!(
        reopened.epoch(),
        expected,
        "durable epoch after crash at {offset}/{record_len} {mode:?}"
    );
    reopened.verify().expect("recovered store verifies");

    let mut all: Vec<&[TrecDoc]> = committed.iter().map(Vec::as_slice).collect();
    all.push(next);
    let oracle = oracle_at(&all, expected);
    assert_eq!(
        fingerprint(&collection),
        fingerprint(&oracle),
        "rankings at epoch {expected} after crash at {offset}/{record_len} {mode:?}"
    );
}

/// Deterministic exhaustive sweep: every byte offset of one commit, in
/// both crash modes, on a store that already has two durable batches.
#[test]
fn every_crash_offset_recovers_to_a_durable_epoch() {
    let committed = vec![
        vec![doc("B1", 0, &[0, 1, 8]), doc("B1", 1, &[4, 5])],
        vec![doc("B2", 0, &[6, 7, 0])],
    ];
    let next = vec![doc("B3", 0, &[2, 3, 9]), doc("B3", 1, &[10, 11, 12])];
    let record_len = wal::encode_record(3, &next).len() as u64;
    for mode in [CrashMode::Truncate, CrashMode::Garble] {
        // `record_len + 1` also covers the fully-durable "crashed just
        // after the sync" case.
        for offset in 0..=record_len {
            run_crash_case(&committed, &next, offset, mode);
        }
    }
}

proptest! {
    /// The same property under arbitrary batches and crash points —
    /// run with `PROPTEST_CASES=64` (or more) in CI.
    fn crash_points_always_recover(
        committed in vec(ArbBatch { tag: "C" }, 0..=3),
        next in ArbBatch { tag: "N" },
        offset_pick in 0u64..4096,
        mode_pick in 0u64..2,
    ) {
        let mode = if mode_pick == 0 { CrashMode::Truncate } else { CrashMode::Garble };
        let record_len = wal::encode_record(committed.len() as u64 + 1, &next).len() as u64;
        let offset = offset_pick % (record_len + 2);
        run_crash_case(&committed, &next, offset, mode);
    }

    /// WAL batch codec: arbitrary documents encode and decode to the
    /// identical batch, and the encoding has no slack bytes.
    fn wal_batch_codec_round_trips(docs in vec(ArbBatch { tag: "W" }, 1..=1)) {
        let docs = docs.into_iter().next().unwrap();
        let bytes = wal::encode_batch(&docs);
        let back = wal::decode_batch(&bytes).expect("decode");
        prop_assert_eq!(back, docs);
        // Truncating by one byte must be detected, never mis-decoded.
        let truncated = wal::decode_batch(&bytes[..bytes.len() - 1]);
        prop_assert!(truncated.is_err());
    }

    /// Full WAL records round-trip through the scanner.
    fn wal_record_codec_round_trips(
        batches in vec(ArbBatch { tag: "R" }, 1..=4),
    ) {
        let mut log = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            log.extend_from_slice(&wal::encode_record(i as u64 + 1, batch));
        }
        let scan = wal::scan(&log).expect("clean log scans");
        prop_assert_eq!(scan.records.len(), batches.len());
        prop_assert_eq!(scan.valid_len as usize, log.len());
        for (i, (record, batch)) in scan.records.iter().zip(&batches).enumerate() {
            prop_assert_eq!(record.epoch, i as u64 + 1);
            prop_assert_eq!(&record.docs, batch);
        }
    }

    /// Segment codec: an arbitrary collection survives the segment
    /// file format with rankings and stored documents intact.
    fn segment_codec_round_trips(batch in ArbBatch { tag: "S" }) {
        let collection = Collection::build("SEG", Analyzer::default(), &batch);
        let segment = teraphim::store::Segment {
            collection: collection.to_bytes(),
            batches: vec![teraphim::store::SegmentBatch {
                epoch: 0,
                docs: batch.len() as u64,
            }],
        };
        let encoded = segment.encode();
        let back = teraphim::store::Segment::decode(&encoded).expect("segment decodes");
        prop_assert_eq!(&back, &segment);
        let reloaded = Collection::from_bytes(&back.collection).expect("collection decodes");
        prop_assert_eq!(fingerprint(&reloaded), fingerprint(&collection));
        prop_assert_eq!(reloaded.export_docs().expect("docs"), batch);
    }
}

/// Corruption *behind* the WAL tail — a segment file, the manifest, or
/// a mid-log record — is damage no crash can explain, and open must
/// refuse with a typed error instead of serving partial data.
#[test]
fn corruption_beyond_the_tail_is_a_typed_open_failure() {
    // Segment corruption: flip one byte in the middle of the segment.
    let dir = TempDir::new("corrupt-seg").expect("tempdir");
    let (mut store, _) = store_with_batches(&dir, &[vec![doc("B", 0, &[0, 1])]]);
    store.checkpoint().expect("checkpoint");
    drop(store);
    let seg_path = std::fs::read_dir(dir.path())
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "seg"))
        .expect("a segment file exists");
    let mut bytes = std::fs::read(&seg_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xA5;
    std::fs::write(&seg_path, &bytes).unwrap();
    match IndexStore::open(dir.path()) {
        Err(StoreError::Corrupt { .. }) => {}
        other => panic!("corrupt segment must fail typed, got {other:?}"),
    }

    // Manifest corruption: same treatment for the root pointer.
    let dir = TempDir::new("corrupt-man").expect("tempdir");
    let (store, _) = store_with_batches(&dir, &[]);
    drop(store);
    let man_path = dir.path().join("MANIFEST");
    let mut bytes = std::fs::read(&man_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xA5;
    std::fs::write(&man_path, &bytes).unwrap();
    match IndexStore::open(dir.path()) {
        Err(StoreError::Corrupt { .. }) => {}
        other => panic!("corrupt manifest must fail typed, got {other:?}"),
    }

    // Mid-log garbling: two records, first one damaged. A crash cannot
    // produce this (each record is synced before the next is written),
    // so recovery must refuse rather than silently drop epoch 1.
    let dir = TempDir::new("corrupt-wal").expect("tempdir");
    let (mut store, _) = store_with_batches(&dir, &[]);
    store.log_batch(&[doc("B1", 0, &[0])]).unwrap();
    store.log_batch(&[doc("B2", 0, &[1])]).unwrap();
    drop(store);
    let wal_path = dir.path().join("wal.log");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes[8] ^= 0xA5; // inside the first record's header
    std::fs::write(&wal_path, &bytes).unwrap();
    match IndexStore::open(dir.path()) {
        Err(StoreError::Corrupt { .. }) => {}
        other => panic!("mid-log corruption must fail typed, got {other:?}"),
    }

    // And a missing manifest is `Missing`, not a panic or a fresh store.
    let dir = TempDir::new("no-store").expect("tempdir");
    assert_eq!(
        IndexStore::open(dir.path()).map(|_| ()),
        Err(StoreError::Missing)
    );
}

/// As-of queries: every durable epoch replays to oracle-identical
/// rankings, before and after checkpoint/compaction reshuffle the
/// batches into segments; asking beyond the durable epoch is typed.
#[test]
fn as_of_replay_matches_the_oracle_at_every_epoch() {
    let batches = vec![
        vec![doc("B1", 0, &[0, 1, 8]), doc("B1", 1, &[4, 5])],
        vec![doc("B2", 0, &[6, 7, 0])],
        vec![doc("B3", 0, &[2, 3, 9])],
    ];
    let dir = TempDir::new("asof").expect("tempdir");
    let (mut store, _) = store_with_batches(&dir, &batches);
    let refs: Vec<&[TrecDoc]> = batches.iter().map(Vec::as_slice).collect();

    for phase in ["pending", "checkpointed", "compacted"] {
        for epoch in 0..=batches.len() as u64 {
            let as_of = store
                .collection_at(epoch)
                .unwrap_or_else(|e| panic!("{phase}: as-of {epoch}: {e}"));
            assert_eq!(
                fingerprint(&as_of),
                fingerprint(&oracle_at(&refs, epoch)),
                "{phase}: rankings pinned to epoch {epoch}"
            );
        }
        assert_eq!(
            store
                .collection_at(batches.len() as u64 + 1)
                .map(|_| ())
                .unwrap_err(),
            StoreError::NoSuchEpoch {
                requested: batches.len() as u64 + 1,
                durable: batches.len() as u64,
            },
            "{phase}: beyond-durable epoch is typed"
        );
        match phase {
            "pending" => store.checkpoint().expect("checkpoint"),
            "checkpointed" => store.compact().expect("compact"),
            _ => {}
        }
    }
    assert_eq!(store.num_segments(), 1, "compaction left one segment");
}

/// End-to-end: a store-backed librarian adds documents durably,
/// "dies", and a fresh librarian opened from the directory answers
/// with the same epoch and bit-identical rankings.
#[test]
fn librarian_reopens_with_identical_rankings() {
    let dir = TempDir::new("librarian").expect("tempdir");
    let mut librarian =
        Librarian::create_store(dir.path(), "LIB", &Analyzer::default(), &base_docs())
            .expect("store-backed librarian");
    let epoch = librarian
        .add_documents(&[doc("B1", 0, &[0, 1, 2]), doc("B1", 1, &[8, 9])])
        .expect("durable add");
    assert_eq!(epoch, 1);
    let before = fingerprint(librarian.collection());
    drop(librarian);

    let recovered = Librarian::open(dir.path()).expect("reopen");
    assert_eq!(recovered.epoch(), 1, "epoch recovered from the manifest");
    assert_eq!(
        fingerprint(recovered.collection()),
        before,
        "recovered rankings are bit-identical"
    );
}
