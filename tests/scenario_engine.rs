//! The scenario engine end-to-end: seeded generation, doublecheck and
//! differential modes across all three backends, the mutation check
//! (an injected ranking bug must be caught and shrunk to a tiny
//! committed reproducer), fixture replay, and the mux poison-on-EOF
//! regression.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use teraphim::core::{Librarian, Receptionist};
use teraphim::net::mux::MuxTransport;
use teraphim::net::tcp::{TcpServer, TcpTransport};
use teraphim::net::{DispatchMode, ServerOptions};
use teraphim::scenario::{
    compare_reports, differential, doublecheck, generate_plan, run_plan, shrink_plan,
    write_bugbase, Backend, FaultSpec, Fixture, GenOptions, InProcBackend, Plan, QueryOutcome,
    RunMode, SimBackend, Step, TcpBackend,
};
use teraphim::text::sgml::TrecDoc;
use teraphim::text::Analyzer;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/plans")
}

fn load_fixture(name: &str) -> Plan {
    let path = fixtures_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    Plan::from_json(&text).unwrap_or_else(|e| panic!("fixture {name} malformed: {e}"))
}

#[test]
fn doublecheck_sim_and_inproc_backends() {
    let plan = generate_plan(
        "dc-40",
        42,
        GenOptions {
            steps: 40,
            clients: 2,
            allow_kills: false,
            replicas: 1,
            crashes: false,
        },
    );
    doublecheck(&plan, SimBackend::new).expect("sim must repeat itself");
    doublecheck(&plan, InProcBackend::new).expect("inproc must repeat itself");
}

#[test]
fn doublecheck_tcp_backend() {
    let plan = generate_plan(
        "dc-tcp-24",
        42,
        GenOptions {
            steps: 24,
            clients: 2,
            allow_kills: false,
            replicas: 1,
            crashes: false,
        },
    );
    doublecheck(&plan, TcpBackend::new).expect("tcp must repeat itself");
}

#[test]
fn differential_generated_plan() {
    let plan = generate_plan(
        "diff-60",
        42,
        GenOptions {
            steps: 60,
            clients: 2,
            allow_kills: false,
            replicas: 1,
            crashes: false,
        },
    );
    assert!(plan.query_steps() > 20, "workload is query-dominated");
    let report = differential(&plan).unwrap_or_else(|f| panic!("differential failed: {f}"));
    assert_eq!(report.sim.outcomes.len(), report.tcp.outcomes.len());
}

/// The acceptance-gate run: a seeded 500-step *elastic* plan — two
/// replicas per shard, membership churn mixed into the workload, with
/// a `remove_lib` of a primary and a later healing `add_lib` — must
/// survive doublecheck and the three-way differential.
#[test]
fn five_hundred_step_plan_doublechecks_and_differentials() {
    let plan = generate_plan(
        "gate-500",
        42,
        GenOptions {
            steps: 500,
            clients: 3,
            allow_kills: false,
            replicas: 2,
            crashes: false,
        },
    );
    assert_eq!(plan.steps.len(), 500);
    doublecheck(&plan, SimBackend::new).expect("sim doublecheck");
    let report = differential(&plan).unwrap_or_else(|f| panic!("differential failed: {f}"));
    // The plan actually exercised faults, churn and membership — not
    // just queries.
    assert!(
        plan.steps
            .iter()
            .any(|s| matches!(s, Step::SetFault { .. })),
        "fault windows present"
    );
    assert!(
        plan.steps.iter().any(|s| matches!(s, Step::AddDocs { .. })),
        "churn present"
    );
    let first_remove = plan
        .steps
        .iter()
        .position(|s| matches!(s, Step::RemoveLib { .. }))
        .expect("a primary leaves mid-plan");
    assert!(
        plan.steps[first_remove..]
            .iter()
            .any(|s| matches!(s, Step::AddLib { .. })),
        "a later add_lib joins a replica back"
    );
    assert!(
        report
            .sim
            .outcomes
            .iter()
            .any(|o: &QueryOutcome| !o.failed.is_empty()),
        "at least one degraded query observed"
    );
}

/// Crash-churn gate: a generated plan that crashes shards mid-workload
/// (volatile state genuinely lost on the real backends) and reopens
/// them from their persistent stores must stay differential — the
/// simulator, which never loses state, is the recovery oracle.
#[test]
fn crash_churn_plan_differentials_and_recovers() {
    let plan = generate_plan(
        "crash-120",
        42,
        GenOptions {
            steps: 120,
            clients: 2,
            allow_kills: false,
            replicas: 1,
            crashes: true,
        },
    );
    assert!(
        plan.steps
            .iter()
            .any(|s| matches!(s, Step::CrashLib { .. })),
        "crashes present in the generated workload"
    );
    assert!(
        plan.steps
            .iter()
            .any(|s| matches!(s, Step::ReopenLib { .. })),
        "reopens present too"
    );
    assert!(
        plan.steps.iter().any(|s| matches!(s, Step::AddDocs { .. })),
        "churn present, so recovery must replay WAL batches"
    );
    doublecheck(&plan, SimBackend::new).expect("sim doublecheck under crash churn");
    let report = differential(&plan).unwrap_or_else(|f| panic!("crash differential failed: {f}"));
    assert!(
        report
            .sim
            .outcomes
            .iter()
            .any(|o: &QueryOutcome| !o.failed.is_empty()),
        "some query observed a crashed shard"
    );
}

/// Nightly-style deeper sweep: several seeds, longer plans. Run with
/// `cargo test -- --ignored`.
#[test]
#[ignore = "long sweep; run explicitly or nightly"]
fn long_seed_sweep() {
    for seed in [7, 1009, 90210] {
        let plan = generate_plan(
            &format!("sweep-{seed}"),
            seed,
            GenOptions {
                steps: 300,
                clients: 3,
                allow_kills: false,
                replicas: 1,
                crashes: false,
            },
        );
        doublecheck(&plan, SimBackend::new)
            .unwrap_or_else(|f| panic!("seed {seed} doublecheck: {f}"));
        differential(&plan).unwrap_or_else(|f| panic!("seed {seed} differential: {f}"));
    }
}

/// An intentionally buggy backend: after the first reindexing cycle it
/// truncates every Central Vocabulary ranking to a single hit —
/// modeling a stale-derived-state bug where churn corrupts one
/// methodology's merge.
struct MutantBackend {
    inner: SimBackend,
    churned: bool,
}

impl MutantBackend {
    fn new(plan: &Plan) -> MutantBackend {
        MutantBackend {
            inner: SimBackend::new(plan),
            churned: false,
        }
    }
}

impl Backend for MutantBackend {
    fn name(&self) -> &'static str {
        "mutant"
    }
    fn num_libs(&self) -> usize {
        self.inner.num_libs()
    }
    fn query(&mut self, client: u64, mode: RunMode, query: &str, k: usize) -> QueryOutcome {
        let mut outcome = self.inner.query(client, mode, query, k);
        if self.churned && mode == RunMode::Cv {
            outcome.hits.truncate(1);
        }
        outcome
    }
    fn add_docs(&mut self, lib: usize, docs: &[TrecDoc]) -> Result<(), String> {
        self.churned = true;
        self.inner.add_docs(lib, docs)
    }
    fn apply_fault(&mut self, lib: usize, fault: Option<FaultSpec>) {
        self.inner.apply_fault(lib, fault);
    }
    fn kill(&mut self, lib: usize) {
        self.inner.kill(lib);
    }
    fn add_lib(&mut self, lib: usize) {
        self.inner.add_lib(lib);
    }
    fn remove_lib(&mut self, lib: usize) {
        self.inner.remove_lib(lib);
    }
    fn promote_replica(&mut self, lib: usize) {
        self.inner.promote_replica(lib);
    }
    fn crash(&mut self, lib: usize) {
        self.inner.crash(lib);
    }
    fn reopen(&mut self, lib: usize) {
        self.inner.reopen(lib);
    }
    fn set_cache(&mut self, spec: Option<teraphim::scenario::CacheSpec>) {
        self.inner.set_cache(spec);
    }
    fn set_dispatch(&mut self, mode: teraphim::scenario::DispatchChoice) {
        self.inner.set_dispatch(mode);
    }
    fn health_poll(&mut self) {
        self.inner.health_poll();
    }
    fn accounting(&mut self) -> teraphim::scenario::Accounting {
        self.inner.accounting()
    }
}

fn check_mutant(plan: &Plan) -> Option<teraphim::scenario::Failure> {
    let reference = run_plan(plan, &mut SimBackend::new(plan));
    let mutant = run_plan(plan, &mut MutantBackend::new(plan));
    compare_reports("sim", &reference, "mutant", &mutant, false).err()
}

#[test]
fn mutation_check_catches_and_shrinks_the_injected_bug() {
    let plan = generate_plan(
        "mutant-ranking",
        42,
        GenOptions {
            steps: 60,
            clients: 2,
            allow_kills: false,
            replicas: 1,
            crashes: false,
        },
    );
    let failure = check_mutant(&plan).expect("the injected CV bug must be caught");
    assert_eq!(failure.property, "diff:sim~mutant:ranking");

    let result = shrink_plan(&plan, &failure, check_mutant, 5_000);
    assert!(
        result.plan.steps.len() <= 10,
        "shrunk to {} steps, want <= 10: {:?}",
        result.plan.steps.len(),
        result.plan.steps
    );
    assert!(result.failure.same_property(&failure));
    // The minimal reproducer needs churn (arms the bug) and a CV query
    // wide enough to observe the truncation.
    assert!(result
        .plan
        .steps
        .iter()
        .any(|s| matches!(s, Step::AddDocs { .. })));
    assert!(result
        .plan
        .steps
        .iter()
        .any(|s| matches!(s, Step::Query { mode, .. } if *mode == RunMode::Cv)));
}

#[test]
fn committed_mutant_fixture_still_reproduces() {
    let plan = load_fixture("mutant_ranking_min.json");
    assert!(
        plan.steps.len() <= 10,
        "the committed reproducer is minimal"
    );
    let failure = check_mutant(&plan).expect("fixture must still trip the mutant");
    assert_eq!(failure.property, "diff:sim~mutant:ranking");
    // And the real system passes the very same plan: the fixture
    // documents the bug shape, not a real divergence.
    differential(&plan).unwrap_or_else(|f| panic!("real backends diverged: {f}"));
}

/// Satellite: the hand-written sim-vs-real fault differential migrated
/// onto the engine as a committed fixture plan.
#[test]
fn committed_fault_differential_fixture_replays() {
    let plan = load_fixture("fault_differential.json");
    assert!(
        plan.steps.iter().any(|s| matches!(
            s,
            Step::SetFault {
                fault: FaultSpec::Down,
                ..
            }
        )),
        "the fixture exercises a fault window"
    );
    let report = differential(&plan).unwrap_or_else(|f| panic!("fixture diverged: {f}"));
    // The fault window actually degraded queries on every backend.
    assert!(
        report.sim.outcomes.iter().any(|o| !o.failed.is_empty()),
        "degraded coverage observed"
    );
    // Doublecheck all three backends on the same fixture.
    doublecheck(&plan, SimBackend::new).expect("sim doublecheck");
    doublecheck(&plan, InProcBackend::new).expect("inproc doublecheck");
    doublecheck(&plan, TcpBackend::new).expect("tcp doublecheck");
}

/// Satellite: the committed crash-recovery regression plan — churn a
/// shard, crash it (memory lost), reopen from the persistent store,
/// and prove by differential that the recovered shard answers exactly
/// like the sim backend that never crashed.
#[test]
fn committed_persist_recover_fixture_replays() {
    let plan = load_fixture("persist_recover_min.json");
    assert!(
        plan.steps
            .iter()
            .any(|s| matches!(s, Step::CrashLib { .. })),
        "the fixture crashes a shard"
    );
    assert!(
        plan.steps
            .iter()
            .any(|s| matches!(s, Step::ReopenLib { .. })),
        "and recovers it"
    );
    assert!(
        plan.steps.iter().any(|s| matches!(s, Step::AddDocs { .. })),
        "with churn logged to the WAL before the crash"
    );
    let report = differential(&plan).unwrap_or_else(|f| panic!("recovery fixture diverged: {f}"));
    // The crash window degraded at least one query...
    assert!(
        report.sim.outcomes.iter().any(|o| !o.failed.is_empty()),
        "a query observed the crashed shard"
    );
    // ...and the post-reopen queries recovered full coverage.
    assert!(
        report.sim.outcomes.last().unwrap().failed.is_empty(),
        "full coverage after recovery"
    );
    doublecheck(&plan, InProcBackend::new).expect("inproc doublecheck");
    doublecheck(&plan, TcpBackend::new).expect("tcp doublecheck");
}

/// Regenerates the committed fixture plans. Run explicitly after
/// changing the plan schema or generator:
/// `cargo test --test scenario_engine -- --ignored regenerate`
#[test]
#[ignore = "writes tests/fixtures/plans; run explicitly to regenerate"]
fn regenerate_fixture_plans() {
    // 1. The migrated fault differential: healthy baseline across all
    //    four systems, a Down window on librarian 1, degraded queries,
    //    recovery, and a post-recovery re-check.
    let mut plan = Plan::named("fault_differential", 7);
    let fixture = Fixture::for_plan(&plan);
    let queries: Vec<String> = fixture
        .corpus()
        .short_queries()
        .iter()
        .take(3)
        .map(|q| q.text.clone())
        .collect();
    let all_modes = [RunMode::Ms, RunMode::Cn, RunMode::Cv, RunMode::Ci];
    for mode in all_modes {
        plan.steps.push(Step::Query {
            client: 0,
            mode,
            query: queries[0].clone(),
            k: 10,
        });
    }
    plan.steps.push(Step::SetFault {
        lib: 1,
        fault: FaultSpec::Down,
    });
    for mode in [RunMode::Cn, RunMode::Cv, RunMode::Ci] {
        plan.steps.push(Step::Query {
            client: 1,
            mode,
            query: queries[1].clone(),
            k: 10,
        });
    }
    plan.steps.push(Step::ClearFaults);
    for mode in [RunMode::Cn, RunMode::Cv] {
        plan.steps.push(Step::Query {
            client: 0,
            mode,
            query: queries[2].clone(),
            k: 10,
        });
    }
    let path = write_bugbase(&fixtures_dir(), &plan).unwrap();
    println!("wrote {}", path.display());

    // 2. The shrunken mutant reproducer.
    let generated = generate_plan(
        "mutant_ranking_min",
        42,
        GenOptions {
            steps: 60,
            clients: 2,
            allow_kills: false,
            replicas: 1,
            crashes: false,
        },
    );
    let failure = check_mutant(&generated).expect("mutant must fail the generated plan");
    let shrunk = shrink_plan(&generated, &failure, check_mutant, 5_000);
    assert!(shrunk.plan.steps.len() <= 10);
    let path = write_bugbase(&fixtures_dir(), &shrunk.plan).unwrap();
    println!(
        "wrote {} ({} steps)",
        path.display(),
        shrunk.plan.steps.len()
    );

    // 3. The crash-recovery regression plan: baseline, churn into the
    //    WAL, probe the churned docs, crash the shard (degraded
    //    coverage), reopen from the store, re-probe — recovery must
    //    reproduce the pre-crash answers exactly. Generated-then-shrunk
    //    plans from the crash sweep found no real divergence, so this
    //    hand-shaped minimal plan documents the contract instead.
    let mut plan = Plan::named("persist_recover_min", 13);
    let fixture = Fixture::for_plan(&plan);
    let q: Vec<String> = fixture
        .corpus()
        .short_queries()
        .iter()
        .take(2)
        .map(|s| s.text.clone())
        .collect();
    let cv_query = |client: u64, query: &str| Step::Query {
        client,
        mode: RunMode::Cv,
        query: query.to_string(),
        k: 10,
    };
    plan.steps = vec![
        cv_query(0, &q[0]),
        Step::AddDocs {
            lib: 1,
            count: 2,
            batch: 0,
        },
        cv_query(0, "churn"),
        Step::CrashLib { lib: 1 },
        cv_query(1, &q[0]),
        Step::ReopenLib { lib: 1 },
        cv_query(0, "churn"),
        cv_query(1, &q[1]),
    ];
    let path = write_bugbase(&fixtures_dir(), &plan).unwrap();
    println!("wrote {}", path.display());
}

/// Satellite regression: a connection killed mid-pipelined-batch must
/// surface as degraded coverage via the mux reader's poison-on-EOF
/// path — never as a hang and never as a wrong answer.
#[test]
fn killed_connection_mid_pipelined_batch_degrades_not_hangs() {
    let libs: Vec<(&str, Vec<(&str, &str)>)> = vec![
        ("A", vec![("A-1", "cats and dogs"), ("A-2", "just cats")]),
        ("B", vec![("B-1", "dogs alone"), ("B-2", "cats dogs birds")]),
        (
            "C",
            vec![("C-1", "cats chasing birds"), ("C-2", "quiet cats")],
        ),
        (
            "D",
            vec![("D-1", "birds and cats"), ("D-2", "sleeping dogs")],
        ),
    ];
    let servers: Vec<TcpServer> = libs
        .iter()
        .map(|(name, docs)| {
            TcpServer::spawn_with(
                vec![Librarian::from_texts(name, docs)],
                "127.0.0.1:0",
                ServerOptions {
                    workers: 1,
                    queue_depth: 16,
                },
            )
            .unwrap()
        })
        .collect();

    // Preprocess CV over the healthy fleet.
    let mut prototype = Receptionist::new(
        servers
            .iter()
            .map(|s| TcpTransport::connect(s.addr()).unwrap())
            .collect::<Vec<_>>(),
        Analyzer::default(),
    );
    prototype.enable_cv().unwrap();

    // A saboteur stands in for librarian 1's server: it accepts the
    // mux connection, waits for the first request bytes of the
    // pipelined batch, then closes the socket without replying — the
    // client's connection reader hits EOF with a ticket in flight.
    let saboteur = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let saboteur_addr = saboteur.local_addr().unwrap();
    let accepted = Arc::new(AtomicBool::new(false));
    let accepted_flag = Arc::clone(&accepted);
    let saboteur_thread = std::thread::spawn(move || {
        if let Ok((mut stream, _)) = saboteur.accept() {
            accepted_flag.store(true, Ordering::SeqCst);
            let mut first = [0u8; 1];
            use std::io::Read;
            let _ = stream.read(&mut first); // a batch request arrived
                                             // Dropping the stream here closes the connection with the
                                             // request unanswered.
        }
    });

    let deadline = Duration::from_secs(5);
    let transports: Vec<MuxTransport> = servers
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let addr = if i == 1 { saboteur_addr } else { s.addr() };
            MuxTransport::connect_with_deadline(addr, deadline).unwrap()
        })
        .collect();
    let mut session = prototype.fork(transports);
    session.set_dispatch_mode(DispatchMode::Pipelined);

    // Watchdog: the query must finish well before the 30s hang budget.
    let (tx, rx) = std::sync::mpsc::channel();
    let runner = std::thread::spawn(move || {
        let answer =
            session.query_with_coverage(teraphim::core::Methodology::CentralVocabulary, "cats", 8);
        tx.send(answer).unwrap();
    });
    let answer = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("poison-on-EOF must not hang the pipelined batch")
        .expect("three healthy librarians satisfy the degrade policy");
    runner.join().unwrap();
    assert!(accepted.load(Ordering::SeqCst), "saboteur saw the batch");

    assert_eq!(answer.coverage.failed, vec![1], "only librarian 1 dropped");
    assert_eq!(answer.coverage.answered, vec![0, 2, 3]);
    assert!(
        answer.hits.iter().any(|h| h.librarian != 1),
        "survivors' hits present"
    );
    assert!(
        answer.hits.iter().all(|h| h.librarian != 1),
        "no partial results from the dead librarian"
    );
    saboteur_thread.join().unwrap();
}

/// A plan-level variant of the same regression: `kill_lib` inside a
/// pipelined-dispatch plan degrades coverage identically on every
/// backend instead of hanging any of them.
#[test]
fn plan_level_kill_under_pipelined_dispatch_stays_differential() {
    let mut plan = Plan::named("kill-pipelined", 11);
    let fixture = Fixture::for_plan(&plan);
    let query = fixture.corpus().short_queries()[0].text.clone();
    plan.steps = vec![
        Step::Dispatch {
            mode: teraphim::scenario::DispatchChoice::Pipelined,
        },
        Step::Query {
            client: 0,
            mode: RunMode::Cv,
            query: query.clone(),
            k: 10,
        },
        Step::KillLib { lib: 1 },
        Step::Query {
            client: 0,
            mode: RunMode::Cv,
            query: query.clone(),
            k: 10,
        },
        Step::Query {
            client: 1,
            mode: RunMode::Cn,
            query,
            k: 10,
        },
    ];
    let report = differential(&plan).unwrap_or_else(|f| panic!("kill plan diverged: {f}"));
    assert_eq!(report.tcp.outcomes[1].failed, vec![1]);
    assert_eq!(report.tcp.outcomes[2].failed, vec![1]);
}
