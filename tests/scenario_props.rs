//! Property tests for the scenario engine's own machinery (satellite
//! of the scenario-engine PR): the plan JSON codec must round-trip any
//! representable plan, and the ddmin plan shrinker must preserve the
//! failing property, terminate within its check budget, only ever emit
//! subsequences of the input, and — for monotone "count the relevant
//! steps" properties — reach an exactly-minimal reproducer.
//!
//! Uses the vendored proptest subset: strategies are plain samplers
//! (no value trees), so all shrinking under test here is the scenario
//! engine's, not proptest's.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::test_runner::TestRng;

use teraphim::scenario::{
    shrink_plan, CacheSpec, DispatchChoice, Failure, FaultSpec, Plan, RunMode, Step,
};

/// Samples one arbitrary plan step, covering every variant.
struct ArbStep;

impl Strategy for ArbStep {
    type Value = Step;

    fn generate(&self, rng: &mut TestRng) -> Step {
        match rng.index(14) {
            0 => Step::Query {
                client: (0u64..4).generate(rng),
                mode: RunMode::ALL[rng.index(RunMode::ALL.len())],
                query: "[a-z ]{1,16}".generate(rng),
                k: (1u64..=30).generate(rng),
            },
            1 => Step::AddDocs {
                lib: (0u64..4).generate(rng),
                count: (1u64..=8).generate(rng),
                batch: (0u64..16).generate(rng),
            },
            2 => Step::SetFault {
                lib: (0u64..4).generate(rng),
                fault: if rng.index(2) == 0 {
                    FaultSpec::Down
                } else {
                    FaultSpec::Delay {
                        ms: (1u64..=5).generate(rng),
                    }
                },
            },
            3 => Step::ClearFaults,
            4 => Step::KillLib {
                lib: (0u64..4).generate(rng),
            },
            5 => Step::CacheOn {
                spec: CacheSpec {
                    results: (1u64..=64).generate(rng),
                    shards: (1u64..=4).generate(rng),
                    terms: (1u64..=256).generate(rng),
                    doc_bytes: (1u64..=1 << 20).generate(rng),
                },
            },
            6 => Step::CacheOff,
            7 => Step::Dispatch {
                mode: [
                    DispatchChoice::Sequential,
                    DispatchChoice::Concurrent,
                    DispatchChoice::Pipelined,
                ][rng.index(3)],
            },
            8 => Step::AddLib {
                lib: (0u64..4).generate(rng),
            },
            9 => Step::RemoveLib {
                lib: (0u64..4).generate(rng),
            },
            10 => Step::PromoteReplica {
                lib: (0u64..4).generate(rng),
            },
            11 => Step::CrashLib {
                lib: (0u64..4).generate(rng),
            },
            12 => Step::ReopenLib {
                lib: (0u64..4).generate(rng),
            },
            _ => Step::HealthPoll,
        }
    }
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    (
        "[a-z][a-z0-9_-]{0,11}",
        0u64..u64::MAX,
        1u64..5,
        1u64..5,
        vec(ArbStep, 0..=24),
    )
        .prop_map(|(name, seed, clients, replicas, steps)| {
            let mut plan = Plan::named(&name, seed);
            plan.corpus_seed = seed.rotate_left(17) ^ 0x9e37_79b9;
            plan.clients = clients;
            plan.replicas = replicas;
            plan.steps = steps;
            plan
        })
}

/// True when `small` is a subsequence of `big` (order-preserving; the
/// shrinker promises it only removes steps).
fn is_subsequence(small: &[Step], big: &[Step]) -> bool {
    let mut it = big.iter();
    small.iter().all(|s| it.any(|b| b == s))
}

/// The "relevant step" predicate used by the monotone shrinker
/// properties: arbitrary but deterministic over step content.
fn relevant(step: &Step) -> bool {
    match step {
        Step::Query { k, .. } => k % 3 == 0,
        Step::AddDocs { batch, .. } => batch % 2 == 0,
        Step::HealthPoll => true,
        _ => false,
    }
}

fn relevant_count(plan: &Plan) -> usize {
    plan.steps.iter().filter(|s| relevant(s)).count()
}

/// A monotone checker: fails iff at least `need` relevant steps remain.
fn counting_checker(need: usize) -> impl FnMut(&Plan) -> Option<Failure> {
    move |plan: &Plan| {
        let count = relevant_count(plan);
        if count >= need {
            Some(Failure {
                property: "prop:relevant-count".to_string(),
                step: None,
                message: format!("{count} relevant steps (need {need})"),
            })
        } else {
            None
        }
    }
}

proptest! {
    /// Any representable plan survives JSON round-tripping, and the
    /// rendering is stable (render → parse → render is a fixed point).
    fn plan_json_round_trips(plan in arb_plan()) {
        let text = plan.to_json();
        let back = Plan::from_json(&text);
        prop_assert!(back.is_ok(), "parse failed: {:?}", back.err());
        let back = back.unwrap();
        prop_assert_eq!(&back, &plan);
        prop_assert_eq!(back.to_json(), text);
    }

    /// For a monotone failing property, the shrinker (a) keeps the same
    /// failure property, (b) emits a subsequence of the input, (c) stays
    /// within its check budget, and (d) lands on an exactly-minimal
    /// plan: `need` steps, all relevant.
    fn shrinker_minimizes_monotone_failures(
        plan in arb_plan(),
        need_pick in 0u64..64,
    ) {
        let count = relevant_count(&plan);
        prop_assume!(count > 0);
        let need = (need_pick as usize % count) + 1;
        let max_checks = 20_000;

        let target = counting_checker(need)(&plan).expect("initial plan must fail");
        let result = shrink_plan(&plan, &target, counting_checker(need), max_checks);

        prop_assert!(result.failure.same_property(&target));
        prop_assert!(
            counting_checker(need)(&result.plan).is_some(),
            "shrunken plan no longer fails"
        );
        prop_assert!(
            is_subsequence(&result.plan.steps, &plan.steps),
            "shrunken steps are not a subsequence of the original"
        );
        prop_assert!(result.checks <= max_checks);
        // The budget is generous enough that ddmin always reaches
        // 1-minimality here, and for a monotone counting property a
        // 1-minimal plan is exactly the `need` relevant steps.
        prop_assert!(result.checks < max_checks, "check budget exhausted");
        prop_assert_eq!(result.plan.steps.len(), need);
        prop_assert!(result.plan.steps.iter().all(relevant));
    }

    /// Even against an adversarial checker that fails on *every*
    /// candidate, shrinking terminates within the budget and collapses
    /// to a single step.
    fn shrinker_terminates_when_everything_fails(plan in arb_plan()) {
        prop_assume!(!plan.steps.is_empty());
        let target = Failure {
            property: "prop:always".to_string(),
            step: None,
            message: String::new(),
        };
        let always = |_: &Plan| {
            Some(Failure {
                property: "prop:always".to_string(),
                step: None,
                message: String::new(),
            })
        };
        let result = shrink_plan(&plan, &target, always, 20_000);
        prop_assert!(result.checks <= 20_000);
        prop_assert_eq!(result.plan.steps.len(), 1);
        prop_assert!(is_subsequence(&result.plan.steps, &plan.steps));
    }

    /// A checker whose failure property changes on small plans never
    /// gets its differently-failing candidates accepted: the result
    /// still fails with the original property.
    fn shrinker_never_switches_property(plan in arb_plan()) {
        prop_assume!(plan.steps.len() >= 6);
        let boundary = plan.steps.len() / 2;
        let flaky = move |p: &Plan| {
            Some(Failure {
                property: if p.steps.len() >= boundary {
                    "prop:big".to_string()
                } else {
                    "prop:small".to_string()
                },
                step: None,
                message: String::new(),
            })
        };
        let target = Failure {
            property: "prop:big".to_string(),
            step: None,
            message: String::new(),
        };
        let result = shrink_plan(&plan, &target, flaky, 20_000);
        prop_assert_eq!(result.failure.property.as_str(), "prop:big");
        prop_assert!(result.plan.steps.len() >= boundary);
        prop_assert!(is_subsequence(&result.plan.steps, &plan.steps));
    }
}
