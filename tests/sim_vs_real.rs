//! The simulation driver must be *behaviourally* identical to the real
//! receptionist: same methodology logic, same rankings. Only the clock
//! is virtual.

use teraphim::core::sim::{SimDriver, SimMode};
use teraphim::core::{CiParams, DistributedCollection, Methodology};
use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
use teraphim::simnet::{CostModel, Topology};
use teraphim::text::sgml::TrecDoc;
use teraphim::text::Analyzer;

fn setup() -> (SyntheticCorpus, DistributedCollection, SimDriver) {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(33));
    let parts: Vec<(&str, &[TrecDoc])> = corpus
        .subcollections()
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect();
    let ci = CiParams {
        group_size: 10,
        k_prime: 100,
    };
    let system = DistributedCollection::build_with(&parts, Analyzer::default(), ci).unwrap();
    let driver = SimDriver::new(&parts, Analyzer::default(), ci).unwrap();
    (corpus, system, driver)
}

#[test]
fn simulated_rankings_equal_real_rankings() {
    let (corpus, system, mut driver) = setup();
    let topo = Topology::multi_disk(4);
    let cost = CostModel::default();
    for methodology in Methodology::ALL {
        for query in corpus.short_queries().iter().take(5) {
            let real = system.query(methodology, &query.text, 20).unwrap();
            let sim = driver
                .time_query(
                    &topo,
                    &cost,
                    SimMode::Distributed(methodology),
                    &query.text,
                    20,
                )
                .unwrap();
            let real_pairs: Vec<(usize, u32)> = real.iter().map(|h| (h.librarian, h.doc)).collect();
            assert_eq!(
                sim.hits, real_pairs,
                "{methodology} query {} diverged",
                query.id
            );
        }
    }
}

#[test]
fn simulated_times_are_invariant_across_repeats() {
    let (corpus, _system, mut driver) = setup();
    let topo = Topology::wan();
    let cost = CostModel::default();
    let q = &corpus.short_queries()[0].text;
    let mode = SimMode::Distributed(Methodology::CentralVocabulary);
    let a = driver.time_query(&topo, &cost, mode, q, 20).unwrap();
    let b = driver.time_query(&topo, &cost, mode, q, 20).unwrap();
    assert_eq!(a, b, "fresh resource state must make runs identical");
}

#[test]
fn table3_orderings_hold_on_the_synthetic_corpus() {
    let (corpus, _system, mut driver) = setup();
    let cost = CostModel::default();
    let queries: Vec<&str> = corpus
        .short_queries()
        .iter()
        .take(6)
        .map(|q| q.text.as_str())
        .collect();
    let k = 20;

    let mut time_for = |topo: &Topology, mode: SimMode| {
        driver
            .time_query_set(topo, &cost, mode, &queries, k)
            .unwrap()
    };

    let cn = Methodology::CentralNothing;
    let cv = Methodology::CentralVocabulary;
    let ci = Methodology::CentralIndex;

    // Multi-disk is no slower than mono-disk for every methodology.
    for m in [cn, cv, ci] {
        let (mono_idx, _) = time_for(&Topology::mono_disk(4), SimMode::Distributed(m));
        let (multi_idx, _) = time_for(&Topology::multi_disk(4), SimMode::Distributed(m));
        assert!(
            multi_idx <= mono_idx + 1e-9,
            "{m}: multi {multi_idx} vs mono {mono_idx}"
        );
    }

    // WAN is the slowest configuration for every methodology, by a wide
    // margin (network latency dominates).
    for m in [cn, cv, ci] {
        let (lan_idx, lan_tot) = time_for(&Topology::lan(), SimMode::Distributed(m));
        let (wan_idx, wan_tot) = time_for(&Topology::wan(), SimMode::Distributed(m));
        assert!(
            wan_idx > 2.0 * lan_idx,
            "{m}: wan {wan_idx} vs lan {lan_idx}"
        );
        assert!(wan_tot > lan_tot, "{m}: totals");
    }

    // CI's index phase is slower than CV's in every configuration
    // (sequential central-index processing), as in Table 3.
    for topo in [
        Topology::mono_disk(4),
        Topology::multi_disk(4),
        Topology::lan(),
        Topology::wan(),
    ] {
        let (cv_idx, _) = time_for(&topo, SimMode::Distributed(cv));
        let (ci_idx, _) = time_for(&topo, SimMode::Distributed(ci));
        assert!(
            ci_idx > cv_idx,
            "{}: CI {ci_idx} should exceed CV {cv_idx}",
            topo.name
        );
    }

    // Table 4's WAN crossover: CI total time beats CN/CV total time
    // because its document fetches are bundled.
    let (_, cn_tot) = time_for(&Topology::wan(), SimMode::Distributed(cn));
    let (_, cv_tot) = time_for(&Topology::wan(), SimMode::Distributed(cv));
    let (_, ci_tot) = time_for(&Topology::wan(), SimMode::Distributed(ci));
    assert!(ci_tot < cn_tot, "CI {ci_tot} vs CN {cn_tot}");
    assert!(ci_tot < cv_tot, "CI {ci_tot} vs CV {cv_tot}");
}

/// The paper's conclusion as an invariant: every distributed methodology
/// consumes more *total* CPU than the mono-server, even where its
/// response time is lower — "distributed information retrieval systems
/// can be fast and effective, but they are not efficient".
#[test]
fn distribution_is_fast_but_not_efficient() {
    let (corpus, _system, mut driver) = setup();
    let topo = Topology::multi_disk(4);
    let ms_topo = Topology::mono_disk(1);
    let cost = CostModel::default();
    let queries: Vec<&str> = corpus
        .short_queries()
        .iter()
        .take(6)
        .map(|q| q.text.as_str())
        .collect();
    let mut total_cpu = |topo: &Topology, mode: SimMode| -> f64 {
        queries
            .iter()
            .map(|q| {
                driver
                    .time_query(topo, &cost, mode, q, 20)
                    .expect("simulation")
                    .cpu_busy
            })
            .sum()
    };
    let ms_cpu = total_cpu(&ms_topo, SimMode::MonoServer);
    for m in Methodology::ALL {
        let cpu = total_cpu(&topo, SimMode::Distributed(m));
        assert!(
            cpu > ms_cpu,
            "{m}: distributed CPU {cpu} should exceed MS {ms_cpu}"
        );
    }
}

#[test]
fn ms_baseline_matches_mono_collection_ranking() {
    let (corpus, _system, mut driver) = setup();
    let topo = Topology::mono_disk(1);
    let cost = CostModel::default();
    let q = &corpus.short_queries()[2].text;
    let sim = driver
        .time_query(&topo, &cost, SimMode::MonoServer, q, 10)
        .unwrap();
    let ms_hits = driver.mono().ranked_query(q, 10);
    let expected: Vec<(usize, u32)> = ms_hits.iter().map(|h| (0usize, h.doc)).collect();
    assert_eq!(sim.hits, expected);
}
