//! The simulation driver must be *behaviourally* identical to the real
//! receptionist: same methodology logic, same rankings. Only the clock
//! is virtual.

use std::sync::Arc;
use teraphim::core::sim::{SimDriver, SimMode};
use teraphim::core::{CiParams, DistributedCollection, Librarian, Methodology, Receptionist};
use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
use teraphim::net::InProcTransport;
use teraphim::obs::MetricsRegistry;
use teraphim::simnet::{CostModel, Topology};
use teraphim::text::sgml::TrecDoc;
use teraphim::text::Analyzer;

fn setup() -> (SyntheticCorpus, DistributedCollection, SimDriver) {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(33));
    let parts: Vec<(&str, &[TrecDoc])> = corpus
        .subcollections()
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect();
    let ci = CiParams {
        group_size: 10,
        k_prime: 100,
    };
    let system = DistributedCollection::build_with(&parts, Analyzer::default(), ci).unwrap();
    let driver = SimDriver::new(&parts, Analyzer::default(), ci).unwrap();
    (corpus, system, driver)
}

#[test]
fn simulated_rankings_equal_real_rankings() {
    let (corpus, system, mut driver) = setup();
    let topo = Topology::multi_disk(4);
    let cost = CostModel::default();
    for methodology in Methodology::ALL {
        for query in corpus.short_queries().iter().take(5) {
            let real = system.query(methodology, &query.text, 20).unwrap();
            let sim = driver
                .time_query(
                    &topo,
                    &cost,
                    SimMode::Distributed(methodology),
                    &query.text,
                    20,
                )
                .unwrap();
            let real_pairs: Vec<(usize, u32)> = real.iter().map(|h| (h.librarian, h.doc)).collect();
            assert_eq!(
                sim.hits, real_pairs,
                "{methodology} query {} diverged",
                query.id
            );
        }
    }
}

#[test]
fn simulated_times_are_invariant_across_repeats() {
    let (corpus, _system, mut driver) = setup();
    let topo = Topology::wan();
    let cost = CostModel::default();
    let q = &corpus.short_queries()[0].text;
    let mode = SimMode::Distributed(Methodology::CentralVocabulary);
    let a = driver.time_query(&topo, &cost, mode, q, 20).unwrap();
    let b = driver.time_query(&topo, &cost, mode, q, 20).unwrap();
    assert_eq!(a, b, "fresh resource state must make runs identical");
}

#[test]
fn table3_orderings_hold_on_the_synthetic_corpus() {
    let (corpus, _system, mut driver) = setup();
    let cost = CostModel::default();
    let queries: Vec<&str> = corpus
        .short_queries()
        .iter()
        .take(6)
        .map(|q| q.text.as_str())
        .collect();
    let k = 20;

    let mut time_for = |topo: &Topology, mode: SimMode| {
        driver
            .time_query_set(topo, &cost, mode, &queries, k)
            .unwrap()
    };

    let cn = Methodology::CentralNothing;
    let cv = Methodology::CentralVocabulary;
    let ci = Methodology::CentralIndex;

    // Multi-disk is no slower than mono-disk for every methodology.
    for m in [cn, cv, ci] {
        let (mono_idx, _) = time_for(&Topology::mono_disk(4), SimMode::Distributed(m));
        let (multi_idx, _) = time_for(&Topology::multi_disk(4), SimMode::Distributed(m));
        assert!(
            multi_idx <= mono_idx + 1e-9,
            "{m}: multi {multi_idx} vs mono {mono_idx}"
        );
    }

    // WAN is the slowest configuration for every methodology, by a wide
    // margin (network latency dominates).
    for m in [cn, cv, ci] {
        let (lan_idx, lan_tot) = time_for(&Topology::lan(), SimMode::Distributed(m));
        let (wan_idx, wan_tot) = time_for(&Topology::wan(), SimMode::Distributed(m));
        assert!(
            wan_idx > 2.0 * lan_idx,
            "{m}: wan {wan_idx} vs lan {lan_idx}"
        );
        assert!(wan_tot > lan_tot, "{m}: totals");
    }

    // CI's index phase is slower than CV's in every configuration
    // (sequential central-index processing), as in Table 3.
    for topo in [
        Topology::mono_disk(4),
        Topology::multi_disk(4),
        Topology::lan(),
        Topology::wan(),
    ] {
        let (cv_idx, _) = time_for(&topo, SimMode::Distributed(cv));
        let (ci_idx, _) = time_for(&topo, SimMode::Distributed(ci));
        assert!(
            ci_idx > cv_idx,
            "{}: CI {ci_idx} should exceed CV {cv_idx}",
            topo.name
        );
    }

    // Table 4's WAN crossover: CI total time beats CN/CV total time
    // because its document fetches are bundled.
    let (_, cn_tot) = time_for(&Topology::wan(), SimMode::Distributed(cn));
    let (_, cv_tot) = time_for(&Topology::wan(), SimMode::Distributed(cv));
    let (_, ci_tot) = time_for(&Topology::wan(), SimMode::Distributed(ci));
    assert!(ci_tot < cn_tot, "CI {ci_tot} vs CN {cn_tot}");
    assert!(ci_tot < cv_tot, "CI {ci_tot} vs CV {cv_tot}");
}

/// The paper's conclusion as an invariant: every distributed methodology
/// consumes more *total* CPU than the mono-server, even where its
/// response time is lower — "distributed information retrieval systems
/// can be fast and effective, but they are not efficient".
#[test]
fn distribution_is_fast_but_not_efficient() {
    let (corpus, _system, mut driver) = setup();
    let topo = Topology::multi_disk(4);
    let ms_topo = Topology::mono_disk(1);
    let cost = CostModel::default();
    let queries: Vec<&str> = corpus
        .short_queries()
        .iter()
        .take(6)
        .map(|q| q.text.as_str())
        .collect();
    let mut total_cpu = |topo: &Topology, mode: SimMode| -> f64 {
        queries
            .iter()
            .map(|q| {
                driver
                    .time_query(topo, &cost, mode, q, 20)
                    .expect("simulation")
                    .cpu_busy
            })
            .sum()
    };
    let ms_cpu = total_cpu(&ms_topo, SimMode::MonoServer);
    for m in Methodology::ALL {
        let cpu = total_cpu(&topo, SimMode::Distributed(m));
        assert!(
            cpu > ms_cpu,
            "{m}: distributed CPU {cpu} should exceed MS {ms_cpu}"
        );
    }
}

/// The satellite guard against accounting drift: the system now counts
/// wire traffic three independent ways — transport `TrafficStats`
/// (counted at request time), `QueryTrace` sums (counted from buffered
/// `sent`/`reply` events), and the teed `MetricsRegistry` (counted as
/// the sink delivers those same events). On the real driver, where every
/// exchange goes through an instrumented transport, all three must agree
/// *exactly*, per fleet total and per librarian.
#[test]
fn three_accounting_paths_agree_on_the_real_driver() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(33));
    let parts: Vec<(&str, &[TrecDoc])> = corpus
        .subcollections()
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect();
    let transports: Vec<InProcTransport<Librarian>> = parts
        .iter()
        .map(|(name, docs)| InProcTransport::new(Librarian::build(name, Analyzer::default(), docs)))
        .collect();
    let mut receptionist = Receptionist::new(transports, Analyzer::default());
    // Tracing and metrics on *before* preprocessing, so the setup
    // fan-outs (CV vocabulary exchange, CI index exchange) are part of
    // the ledger on all three paths.
    let sink = receptionist.enable_tracing();
    let registry = receptionist.enable_metrics();
    receptionist.enable_cv().unwrap();
    receptionist
        .enable_ci(CiParams {
            group_size: 10,
            k_prime: 100,
        })
        .unwrap();
    for methodology in Methodology::ALL {
        for query in corpus.short_queries().iter().take(3) {
            let hits = receptionist.query(methodology, &query.text, 10).unwrap();
            receptionist.headers(&hits).unwrap();
        }
    }

    let traffic = receptionist.traffic();
    assert!(traffic.round_trips > 0, "fixture must generate traffic");

    // Path 1 vs path 2: transport counters vs metrics registry.
    let snapshot = registry.snapshot();
    let totals = snapshot.traffic_totals();
    assert_eq!(totals.round_trips, traffic.round_trips);
    assert_eq!(totals.bytes_sent, traffic.bytes_sent);
    assert_eq!(totals.bytes_received, traffic.bytes_received);

    // Per-librarian as well, not just the fleet roll-up.
    let per_lib = receptionist.per_librarian_traffic();
    assert_eq!(snapshot.per_librarian.len(), per_lib.len());
    for (metrics, stats) in snapshot.per_librarian.iter().zip(&per_lib) {
        assert_eq!(metrics.sent, stats.round_trips, "lib {}", metrics.librarian);
        assert_eq!(metrics.bytes_sent, stats.bytes_sent);
        assert_eq!(metrics.bytes_received, stats.bytes_received);
        assert_eq!(
            metrics.latency.count, metrics.replies,
            "every reply contributes one latency sample"
        );
    }

    // Path 3: sums over the buffered traces.
    let traces = sink.take_traces();
    let (mut messages, mut bytes_sent, mut bytes_received) = (0u64, 0u64, 0u64);
    for trace in &traces {
        let m = trace.metrics();
        messages += m.messages_sent;
        bytes_sent += m.bytes_sent;
        bytes_received += m.bytes_received;
    }
    assert_eq!(messages, traffic.round_trips);
    assert_eq!(bytes_sent, traffic.bytes_sent);
    assert_eq!(bytes_received, traffic.bytes_received);

    // Path 4: stitched span trees preserve the server-phase ledger.
    // The registry accumulated `server_phase` events into per-phase
    // histograms; stitching the same traces into span trees and summing
    // the server-side leaves must reproduce those sums exactly.
    let mut span_sums = [0u64; 4];
    for trace in &traces {
        let tree = teraphim::obs::SpanTree::from_trace(trace);
        for (slot, s) in span_sums.iter_mut().zip(tree.server_phase_sums()) {
            *slot += s;
        }
    }
    for ((phase, hist), sum) in snapshot.per_server_phase.iter().zip(span_sums) {
        assert_eq!(
            hist.sum, sum,
            "phase {phase}: registry histogram vs span-tree leaves"
        );
    }
}

/// The cache extends the accounting guard: cache activity is now
/// counted three independent ways — the receptionist's own
/// `CacheStats` mirrors, the `CacheHit`/`CacheMiss`/`CacheEvict` trace
/// events, and the teed `MetricsRegistry`'s per-cache slots. A repeated
/// query stream with fetches (so all three caches light up) must leave
/// all three ledgers in exact agreement.
#[test]
fn cache_accounting_paths_agree_on_the_real_driver() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(33));
    let parts: Vec<(&str, &[TrecDoc])> = corpus
        .subcollections()
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect();
    let transports: Vec<InProcTransport<Librarian>> = parts
        .iter()
        .map(|(name, docs)| InProcTransport::new(Librarian::build(name, Analyzer::default(), docs)))
        .collect();
    let mut receptionist = Receptionist::new(transports, Analyzer::default());
    let sink = receptionist.enable_tracing();
    let registry = receptionist.enable_metrics();
    receptionist.enable_cv().unwrap();
    // A deliberately tight configuration so the stream also evicts,
    // exercising the `CacheEvict` accounting, not just hits and misses.
    receptionist.enable_cache(teraphim::core::CacheConfig {
        result_entries: 2,
        result_shards: 1,
        term_entries: 4,
        doc_bytes: 4096,
    });
    for _ in 0..3 {
        for query in corpus.short_queries().iter().take(4) {
            let hits = receptionist
                .query(Methodology::CentralVocabulary, &query.text, 10)
                .unwrap();
            receptionist
                .fetch(&hits[..hits.len().min(3)], false)
                .unwrap();
        }
    }

    // Path 1: the receptionist's own mirrors.
    let stats = receptionist.cache_stats().unwrap();
    let local_hits = stats.results.hits + stats.terms.hits + stats.docs.hits;
    let local_misses = stats.results.misses + stats.terms.misses + stats.docs.misses;
    let local_stale = stats.results.stale + stats.terms.stale + stats.docs.stale;
    let local_evictions = stats.results.evictions + stats.terms.evictions + stats.docs.evictions;
    assert!(local_hits > 0, "repeats must hit");
    assert!(local_evictions > 0, "the tight config must evict");

    // Path 2: sums over the buffered trace events.
    let traces = sink.take_traces();
    let (mut hits, mut misses, mut stale, mut evictions) = (0u64, 0u64, 0u64, 0u64);
    for trace in &traces {
        let m = trace.metrics();
        hits += m.cache_hits;
        misses += m.cache_misses;
        stale += m.cache_stale;
        evictions += m.cache_evictions;
    }
    assert_eq!(hits, local_hits);
    assert_eq!(misses, local_misses);
    assert_eq!(stale, local_stale);
    assert_eq!(evictions, local_evictions);

    // Path 3: the registry's per-cache slots, keyed per cache kind.
    let snapshot = registry.snapshot();
    for (kind, counters) in [
        ("results", stats.results),
        ("stats", stats.terms),
        ("docs", stats.docs),
    ] {
        let slot = snapshot
            .per_cache
            .iter()
            .find(|c| c.cache == kind)
            .unwrap_or_else(|| panic!("no registry slot for cache {kind:?}"));
        assert_eq!(slot.hits, counters.hits, "{kind} hits");
        assert_eq!(slot.misses, counters.misses, "{kind} misses");
        assert_eq!(slot.stale, counters.stale, "{kind} stale");
        assert_eq!(slot.evictions, counters.evictions, "{kind} evictions");
    }
}

/// The simulator registry covers the rank fan-out (its `sent`/`reply`
/// events) while `QueryCost::bytes_on_wire` additionally charges the
/// document-fetch phase, which the sim does not emit exchange events
/// for. So the teed registry must see nonzero traffic bounded by the
/// cost model's total.
#[test]
fn sim_registry_traffic_is_bounded_by_query_cost() {
    let (corpus, _system, mut driver) = setup();
    let registry = Arc::new(MetricsRegistry::new());
    driver.enable_tracing().tee_metrics(Arc::clone(&registry));
    let topo = Topology::multi_disk(4);
    let cost = CostModel::default();
    let q = &corpus.short_queries()[0].text;
    let result = driver
        .time_query(
            &topo,
            &cost,
            SimMode::Distributed(Methodology::CentralVocabulary),
            q,
            20,
        )
        .unwrap();
    let snapshot = registry.snapshot();
    let totals = snapshot.traffic_totals();
    assert!(totals.round_trips > 0, "sim fan-out must be metered");
    assert!(
        totals.bytes_sent + totals.bytes_received <= result.bytes_on_wire,
        "registry {} + {} vs QueryCost {}",
        totals.bytes_sent,
        totals.bytes_received,
        result.bytes_on_wire
    );
    // Methodology latency lands in the CV slot, in *virtual* micros.
    let cv = snapshot
        .per_methodology
        .iter()
        .find(|m| m.code == "CV")
        .unwrap();
    assert_eq!(cv.queries, 1);
    assert!(!cv.latency.is_empty());
}

#[test]
fn ms_baseline_matches_mono_collection_ranking() {
    let (corpus, _system, mut driver) = setup();
    let topo = Topology::mono_disk(1);
    let cost = CostModel::default();
    let q = &corpus.short_queries()[2].text;
    let sim = driver
        .time_query(&topo, &cost, SimMode::MonoServer, q, 10)
        .unwrap();
    let ms_hits = driver.mono().ranked_query(q, 10);
    let expected: Vec<(usize, u32)> = ms_hits.iter().map(|h| (0usize, h.doc)).collect();
    assert_eq!(sim.hits, expected);
}
