//! End-to-end over real TCP on loopback: the same queries must produce
//! the same rankings as the in-process transport.

use teraphim::core::{CiParams, DistributedCollection, Librarian, Methodology, Receptionist};
use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
use teraphim::net::tcp::{TcpServer, TcpTransport};
use teraphim::text::sgml::TrecDoc;
use teraphim::text::Analyzer;

#[test]
fn tcp_and_inproc_agree_on_all_methodologies() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(55));
    let parts: Vec<(&str, &[TrecDoc])> = corpus
        .subcollections()
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect();

    // In-process reference.
    let reference = DistributedCollection::build_with(
        &parts,
        Analyzer::default(),
        CiParams {
            group_size: 10,
            k_prime: 50,
        },
    )
    .unwrap();

    // TCP cluster.
    let servers: Vec<TcpServer> = corpus
        .subcollections()
        .iter()
        .map(|s| {
            TcpServer::spawn(
                Librarian::build(&s.name, Analyzer::default(), &s.docs),
                "127.0.0.1:0",
            )
            .unwrap()
        })
        .collect();
    let transports: Vec<TcpTransport> = servers
        .iter()
        .map(|s| TcpTransport::connect(s.addr()).unwrap())
        .collect();
    let mut tcp = Receptionist::new(transports, Analyzer::default());
    tcp.enable_cv().unwrap();
    tcp.enable_ci(CiParams {
        group_size: 10,
        k_prime: 50,
    })
    .unwrap();

    for methodology in Methodology::ALL {
        for query in corpus.short_queries().iter().take(3) {
            let expected = reference
                .ranked_docnos(methodology, &query.text, 15)
                .unwrap();
            let got = tcp.ranked_docnos(methodology, &query.text, 15).unwrap();
            assert_eq!(got, expected, "{methodology} query {}", query.id);
        }
    }

    // Compressed document fetch over TCP round-trips.
    let hits = tcp
        .query(
            Methodology::CentralVocabulary,
            &corpus.short_queries()[0].text,
            3,
        )
        .unwrap();
    let docs = tcp.fetch(&hits, true).unwrap();
    assert_eq!(docs.len(), 3);
    assert!(docs.iter().all(|d| d.text.is_some()));

    for server in servers {
        server.shutdown();
    }
}

#[test]
fn tcp_traffic_is_counted() {
    let docs = [TrecDoc {
        docno: "X-1".into(),
        text: "a single document".into(),
    }];
    let server = TcpServer::spawn(
        Librarian::build("X", Analyzer::default(), &docs),
        "127.0.0.1:0",
    )
    .unwrap();
    let transport = TcpTransport::connect(server.addr()).unwrap();
    let mut r = Receptionist::new(vec![transport], Analyzer::default());
    r.query(Methodology::CentralNothing, "document", 5).unwrap();
    let traffic = r.traffic();
    assert_eq!(traffic.round_trips, 1);
    assert!(traffic.bytes_sent > 0 && traffic.bytes_received > 0);
    server.shutdown();
}
