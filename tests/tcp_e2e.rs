//! End-to-end over real TCP on loopback: the same queries must produce
//! the same rankings as the in-process transport.

use teraphim::core::{CiParams, DistributedCollection, Librarian, Methodology, Receptionist};
use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
use teraphim::net::tcp::{TcpServer, TcpTransport};
use teraphim::net::{InProcTransport, RetryPolicy, RetryTransport};
use teraphim::obs::{diff_json, EventKind, TraceSink};
use teraphim::text::sgml::TrecDoc;
use teraphim::text::Analyzer;

#[test]
fn tcp_and_inproc_agree_on_all_methodologies() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(55));
    let parts: Vec<(&str, &[TrecDoc])> = corpus
        .subcollections()
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect();

    // In-process reference.
    let reference = DistributedCollection::build_with(
        &parts,
        Analyzer::default(),
        CiParams {
            group_size: 10,
            k_prime: 50,
        },
    )
    .unwrap();

    // TCP cluster.
    let servers: Vec<TcpServer> = corpus
        .subcollections()
        .iter()
        .map(|s| {
            TcpServer::spawn(
                Librarian::build(&s.name, Analyzer::default(), &s.docs),
                "127.0.0.1:0",
            )
            .unwrap()
        })
        .collect();
    let transports: Vec<TcpTransport> = servers
        .iter()
        .map(|s| TcpTransport::connect(s.addr()).unwrap())
        .collect();
    let mut tcp = Receptionist::new(transports, Analyzer::default());
    tcp.enable_cv().unwrap();
    tcp.enable_ci(CiParams {
        group_size: 10,
        k_prime: 50,
    })
    .unwrap();

    for methodology in Methodology::ALL {
        for query in corpus.short_queries().iter().take(3) {
            let expected = reference
                .ranked_docnos(methodology, &query.text, 15)
                .unwrap();
            let got = tcp.ranked_docnos(methodology, &query.text, 15).unwrap();
            assert_eq!(got, expected, "{methodology} query {}", query.id);
        }
    }

    // Compressed document fetch over TCP round-trips.
    let hits = tcp
        .query(
            Methodology::CentralVocabulary,
            &corpus.short_queries()[0].text,
            3,
        )
        .unwrap();
    let docs = tcp.fetch(&hits, true).unwrap();
    assert_eq!(docs.len(), 3);
    assert!(docs.iter().all(|d| d.text.is_some()));

    for server in servers {
        server.shutdown();
    }
}

/// One librarian accepts the TCP connection but never replies: the
/// receptionist's read deadline must fire (once per retry attempt), the
/// query must degrade (not hang), the other librarians' results must
/// come through intact, and the trace must record the exact
/// timeout/retry sequence the deadline configuration implies.
#[test]
fn silent_librarian_degrades_within_the_deadline() {
    use std::time::{Duration, Instant};

    let texts: [&[(&str, &str)]; 3] = [
        &[("A-1", "cats and dogs"), ("A-2", "just cats")],
        &[("B-1", "dogs alone"), ("B-2", "cats dogs birds")],
        &[("C-1", "cats chasing birds"), ("C-2", "quiet cats")],
    ];
    let servers: Vec<TcpServer> = texts
        .iter()
        .enumerate()
        .map(|(i, docs)| {
            TcpServer::spawn(Librarian::from_texts(&format!("L{i}"), docs), "127.0.0.1:0").unwrap()
        })
        .collect();

    // The silent librarian: connections land in the listener's backlog
    // (so connect succeeds) but no reply is ever written.
    let silent = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let silent_addr = silent.local_addr().unwrap();

    let sink = TraceSink::new();
    let deadline = Duration::from_millis(300);
    let policy = RetryPolicy {
        max_retries: 2,
        backoff: Duration::ZERO,
    };
    let connect = |addr: std::net::SocketAddr, lib: u32| {
        RetryTransport::new(
            TcpTransport::connect_with_deadline(addr, deadline)
                .unwrap()
                .with_trace(sink.clone(), lib),
            policy,
        )
        .with_trace(sink.clone(), lib)
    };
    let transports = vec![
        connect(servers[0].addr(), 0),
        connect(servers[1].addr(), 1),
        connect(silent_addr, 2),
        connect(servers[2].addr(), 3),
    ];

    let mut r = Receptionist::new(transports, Analyzer::default());
    r.set_trace_sink(sink.clone());
    let started = Instant::now();
    let answer = r
        .query_with_coverage(Methodology::CentralNothing, "cats dogs", 8)
        .unwrap();
    let elapsed = started.elapsed();

    // The silent librarian (index 2) timed out; everyone else answered.
    assert_eq!(answer.coverage.answered, vec![0, 1, 3]);
    assert_eq!(answer.coverage.failed, vec![2]);
    assert!(!answer.hits.is_empty());
    assert!(answer.hits.iter().all(|h| h.librarian != 2));
    // Bounded by one deadline per attempt plus scheduling slack — not a
    // hang: max_retries = 2 means three deadline waits on the silent
    // librarian, overlapped with the healthy exchanges.
    assert!(
        elapsed < deadline * 5,
        "degraded query took {elapsed:?} against a {deadline:?} deadline"
    );

    // The trace records the failure as the deadline config dictates —
    // assert event counts and ordering, never wall-clock times.
    let traces = sink.take_traces();
    assert_eq!(traces.len(), 1);
    let trace = &traces[0];
    assert_eq!(trace.op, "query_with_coverage");
    assert!(trace.complete);

    let tags_for = |lib: u32| -> Vec<&'static str> {
        trace
            .events
            .iter()
            .filter(|e| e.kind.librarian() == Some(lib))
            .map(|e| e.kind.tag())
            .collect()
    };
    // One send; each attempt's deadline expiry records a timeout, each
    // re-issue a retry; the exhausted transport fails the librarian.
    assert_eq!(
        tags_for(2),
        [
            "sent",
            "timeout",
            "retry",
            "timeout",
            "retry",
            "timeout",
            "lib_failed"
        ],
        "silent librarian event sequence"
    );
    let timeouts = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Timeout { librarian: 2 }))
        .count();
    assert_eq!(timeouts as u32, policy.max_retries + 1);
    let retries: Vec<(u32, &str)> = trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Retry {
                librarian: 2,
                attempt,
                error,
            } => Some((attempt, error)),
            _ => None,
        })
        .collect();
    assert_eq!(retries, [(1, "timeout"), (2, "timeout")]);
    for lib in [0u32, 1, 3] {
        assert_eq!(
            tags_for(lib),
            [
                "sent",
                "reply",
                "server_phase",
                "server_phase",
                "server_phase",
                "server_phase"
            ],
            "healthy librarian {lib}: each reply carries its four server phases"
        );
    }
    let coverage = trace
        .events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::Coverage {
                answered, failed, ..
            } => Some((answered.clone(), failed.clone())),
            _ => None,
        })
        .expect("coverage decision must be traced");
    assert_eq!(coverage, (vec![0, 1, 3], vec![2]));

    // The surviving rankings are exactly what a fan-out to only the
    // healthy librarians produces.
    let subset = r
        .query_subset(Methodology::CentralNothing, "cats dogs", 8, &[0, 1, 3])
        .unwrap();
    let key = |hits: &[teraphim::core::GlobalHit]| -> Vec<(usize, u32, u64)> {
        hits.iter()
            .map(|h| (h.librarian, h.doc, h.score.to_bits()))
            .collect()
    };
    assert_eq!(key(&answer.hits), key(&subset));

    for server in servers {
        server.shutdown();
    }
}

/// The QueryTrace schema is transport-independent: the same query over
/// loopback TCP and over in-process calls yields byte-identical
/// normalized traces (both transports count payload bytes only, so even
/// the byte fields line up).
#[test]
fn tcp_and_inproc_emit_identical_normalized_traces() {
    let texts: [&[(&str, &str)]; 3] = [
        &[("A-1", "cats and dogs"), ("A-2", "just cats")],
        &[("B-1", "dogs alone"), ("B-2", "cats dogs birds")],
        &[("C-1", "cats chasing birds"), ("C-2", "quiet cats")],
    ];
    let librarians = || {
        texts
            .iter()
            .enumerate()
            .map(|(i, docs)| Librarian::from_texts(&format!("L{i}"), docs))
    };

    let servers: Vec<TcpServer> = librarians()
        .map(|l| TcpServer::spawn(l, "127.0.0.1:0").unwrap())
        .collect();

    for methodology in [Methodology::CentralNothing, Methodology::CentralVocabulary] {
        let mut inproc = Receptionist::new(
            librarians().map(InProcTransport::new).collect(),
            Analyzer::default(),
        );
        let mut tcp = Receptionist::new(
            servers
                .iter()
                .map(|s| TcpTransport::connect(s.addr()).unwrap())
                .collect(),
            Analyzer::default(),
        );
        if methodology == Methodology::CentralVocabulary {
            inproc.enable_cv().unwrap();
            tcp.enable_cv().unwrap();
        }
        let sink_a = inproc.enable_tracing();
        let sink_b = tcp.enable_tracing();
        inproc.query(methodology, "cats birds", 5).unwrap();
        tcp.query(methodology, "cats birds", 5).unwrap();
        let a = sink_a.take_traces().remove(0).normalized().to_json();
        let b = sink_b.take_traces().remove(0).normalized().to_json();
        if let Some(diff) = diff_json(&a, &b) {
            panic!("{methodology}: in-process and TCP traces diverged:\n{diff}");
        }
    }

    for server in servers {
        server.shutdown();
    }
}

/// The tentpole, end to end over real sockets: one traced TCP query
/// yields one stitched span tree whose librarian spans carry the four
/// server-measured phase leaves; the client-side sum of those leaves
/// equals the phase ledger each server reports over `Stats`; and every
/// span-carrying request lands in the server's flight recorder,
/// dumpable over the admin `FlightRec` message.
#[test]
fn tcp_spans_phase_ledger_and_flight_recorder_agree() {
    use std::collections::HashMap;
    use teraphim::net::Transport;
    use teraphim::obs::{SpanTree, SERVER_PHASES};

    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(33));
    let servers: Vec<TcpServer> = corpus
        .subcollections()
        .iter()
        .map(|s| {
            let mut librarian = Librarian::build(&s.name, Analyzer::default(), &s.docs);
            librarian.enable_flight_recorder(8);
            TcpServer::spawn(librarian, "127.0.0.1:0").unwrap()
        })
        .collect();
    let n = servers.len();

    let mut r = Receptionist::new(
        servers
            .iter()
            .map(|s| TcpTransport::connect(s.addr()).unwrap())
            .collect::<Vec<TcpTransport>>(),
        Analyzer::default(),
    );
    let sink = r.enable_tracing();
    let queries = 3;
    for q in corpus.short_queries().iter().take(queries) {
        r.query(Methodology::CentralNothing, &q.text, 10).unwrap();
    }

    // Fetch every server's flight-recorder dump over the admin message
    // and persist it under target/flightrec/ up front, before any
    // assertion can fail — CI uploads the directory as an artifact so a
    // red run still shows what each librarian spent its time on.
    let dumps: Vec<String> = servers
        .iter()
        .enumerate()
        .map(|(i, server)| {
            let mut t = TcpTransport::connect(server.addr()).unwrap();
            let reply = t
                .request(&teraphim::net::Message::FlightRecRequest)
                .unwrap();
            let teraphim::net::Message::FlightRecReply { json } = reply else {
                panic!("librarian {i}: expected FlightRecReply, got {reply:?}");
            };
            json
        })
        .collect();
    let dump_dir = std::path::Path::new("target").join("flightrec");
    std::fs::create_dir_all(&dump_dir).unwrap();
    for (i, json) in dumps.iter().enumerate() {
        std::fs::write(dump_dir.join(format!("librarian-{i}.json")), json).unwrap();
    }

    let traces = sink.take_traces();
    assert_eq!(traces.len(), queries, "one trace per traced query");
    let mut client_sums: HashMap<u32, u64> = HashMap::new();
    for trace in &traces {
        // One stitched tree per query: the root covers the whole
        // receptionist dispatch, each librarian child carries the four
        // server-side phase leaves in order.
        let tree = SpanTree::from_trace(trace);
        assert_eq!(tree.root.name, "query");
        assert!(!tree.faulted && !tree.degraded);
        let fanout = tree
            .root
            .children
            .iter()
            .find(|c| c.name == "rank_fanout")
            .expect("the rank fan-out phase is a child of the root");
        let lib_spans: Vec<_> = fanout
            .children
            .iter()
            .filter(|c| c.name == "librarian")
            .collect();
        assert_eq!(lib_spans.len(), n, "one librarian span per shard");
        for lib_span in lib_spans {
            let phases: Vec<&str> = lib_span.children.iter().map(|c| c.name.as_str()).collect();
            assert_eq!(phases, SERVER_PHASES, "server-side phase leaves");
            assert!(
                lib_span.start_micros >= tree.root.start_micros
                    && lib_span.start_micros + lib_span.duration_micros
                        <= tree.root.start_micros + tree.root.duration_micros,
                "the root span covers every librarian exchange"
            );
        }
        for event in &trace.events {
            if let teraphim::obs::EventKind::ServerPhase {
                librarian, micros, ..
            } = event.kind
            {
                *client_sums.entry(librarian).or_default() += micros;
            }
        }
    }

    // Ledger agreement: what the client stitched equals what each
    // server accumulated (the `Stats` poll is admin traffic and adds
    // nothing to the ledger itself).
    let report = r.fleet_health();
    assert!(report.all_up());
    for row in &report.librarians {
        let server_total: u64 = row.server_phases.iter().sum();
        assert_eq!(
            server_total,
            client_sums.get(&row.librarian).copied().unwrap_or(0),
            "librarian {}: server phase ledger vs client-side span sums",
            row.librarian
        );
    }

    // Every span-carrying request became a flight exemplar; the dump is
    // self-describing. Admin traffic (the dump fetch itself, the stats
    // polls above) never records exemplars, so counts are exact.
    for (i, json) in dumps.iter().enumerate() {
        assert!(
            json.starts_with("{\"flightrec\":true"),
            "librarian {i}: dump header: {json}"
        );
        assert!(
            json.contains(&format!("\"recorded\":{queries}")),
            "librarian {i}: {queries} traced requests recorded: {json}"
        );
        assert!(json.contains("\"span\":\"serve\""), "librarian {i}: {json}");
    }

    for server in servers {
        server.shutdown();
    }
}

#[test]
fn tcp_traffic_is_counted() {
    let docs = [TrecDoc {
        docno: "X-1".into(),
        text: "a single document".into(),
    }];
    let server = TcpServer::spawn(
        Librarian::build("X", Analyzer::default(), &docs),
        "127.0.0.1:0",
    )
    .unwrap();
    let transport = TcpTransport::connect(server.addr()).unwrap();
    let mut r = Receptionist::new(vec![transport], Analyzer::default());
    r.query(Methodology::CentralNothing, "document", 5).unwrap();
    let traffic = r.traffic();
    assert_eq!(traffic.round_trips, 1);
    assert!(traffic.bytes_sent > 0 && traffic.bytes_received > 0);
    server.shutdown();
}
