//! End-to-end over real TCP on loopback: the same queries must produce
//! the same rankings as the in-process transport.

use teraphim::core::{CiParams, DistributedCollection, Librarian, Methodology, Receptionist};
use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
use teraphim::net::tcp::{TcpServer, TcpTransport};
use teraphim::text::sgml::TrecDoc;
use teraphim::text::Analyzer;

#[test]
fn tcp_and_inproc_agree_on_all_methodologies() {
    let corpus = SyntheticCorpus::generate(&CorpusSpec::small(55));
    let parts: Vec<(&str, &[TrecDoc])> = corpus
        .subcollections()
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect();

    // In-process reference.
    let reference = DistributedCollection::build_with(
        &parts,
        Analyzer::default(),
        CiParams {
            group_size: 10,
            k_prime: 50,
        },
    )
    .unwrap();

    // TCP cluster.
    let servers: Vec<TcpServer> = corpus
        .subcollections()
        .iter()
        .map(|s| {
            TcpServer::spawn(
                Librarian::build(&s.name, Analyzer::default(), &s.docs),
                "127.0.0.1:0",
            )
            .unwrap()
        })
        .collect();
    let transports: Vec<TcpTransport> = servers
        .iter()
        .map(|s| TcpTransport::connect(s.addr()).unwrap())
        .collect();
    let mut tcp = Receptionist::new(transports, Analyzer::default());
    tcp.enable_cv().unwrap();
    tcp.enable_ci(CiParams {
        group_size: 10,
        k_prime: 50,
    })
    .unwrap();

    for methodology in Methodology::ALL {
        for query in corpus.short_queries().iter().take(3) {
            let expected = reference
                .ranked_docnos(methodology, &query.text, 15)
                .unwrap();
            let got = tcp.ranked_docnos(methodology, &query.text, 15).unwrap();
            assert_eq!(got, expected, "{methodology} query {}", query.id);
        }
    }

    // Compressed document fetch over TCP round-trips.
    let hits = tcp
        .query(
            Methodology::CentralVocabulary,
            &corpus.short_queries()[0].text,
            3,
        )
        .unwrap();
    let docs = tcp.fetch(&hits, true).unwrap();
    assert_eq!(docs.len(), 3);
    assert!(docs.iter().all(|d| d.text.is_some()));

    for server in servers {
        server.shutdown();
    }
}

/// One librarian accepts the TCP connection but never replies: the
/// receptionist's read deadline must fire, the query must degrade (not
/// hang), and the other librarians' results must come through intact.
#[test]
fn silent_librarian_degrades_within_the_deadline() {
    use std::time::{Duration, Instant};

    let texts: [&[(&str, &str)]; 3] = [
        &[("A-1", "cats and dogs"), ("A-2", "just cats")],
        &[("B-1", "dogs alone"), ("B-2", "cats dogs birds")],
        &[("C-1", "cats chasing birds"), ("C-2", "quiet cats")],
    ];
    let servers: Vec<TcpServer> = texts
        .iter()
        .enumerate()
        .map(|(i, docs)| {
            TcpServer::spawn(Librarian::from_texts(&format!("L{i}"), docs), "127.0.0.1:0").unwrap()
        })
        .collect();

    // The silent librarian: connections land in the listener's backlog
    // (so connect succeeds) but no reply is ever written.
    let silent = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let silent_addr = silent.local_addr().unwrap();

    let deadline = Duration::from_millis(300);
    let mut transports: Vec<TcpTransport> = servers
        .iter()
        .map(|s| TcpTransport::connect_with_deadline(s.addr(), deadline).unwrap())
        .collect();
    transports.insert(
        2,
        TcpTransport::connect_with_deadline(silent_addr, deadline).unwrap(),
    );

    let mut r = Receptionist::new(transports, Analyzer::default());
    let started = Instant::now();
    let answer = r
        .query_with_coverage(Methodology::CentralNothing, "cats dogs", 8)
        .unwrap();
    let elapsed = started.elapsed();

    // The silent librarian (index 2) timed out; everyone else answered.
    assert_eq!(answer.coverage.answered, vec![0, 1, 3]);
    assert_eq!(answer.coverage.failed, vec![2]);
    assert!(!answer.hits.is_empty());
    assert!(answer.hits.iter().all(|h| h.librarian != 2));
    // Bounded by the read deadline plus scheduling slack — not a hang.
    assert!(
        elapsed < deadline * 4,
        "degraded query took {elapsed:?} against a {deadline:?} deadline"
    );

    // The surviving rankings are exactly what a fan-out to only the
    // healthy librarians produces.
    let subset = r
        .query_subset(Methodology::CentralNothing, "cats dogs", 8, &[0, 1, 3])
        .unwrap();
    let key = |hits: &[teraphim::core::GlobalHit]| -> Vec<(usize, u32, u64)> {
        hits.iter()
            .map(|h| (h.librarian, h.doc, h.score.to_bits()))
            .collect()
    };
    assert_eq!(key(&answer.hits), key(&subset));

    for server in servers {
        server.shutdown();
    }
}

#[test]
fn tcp_traffic_is_counted() {
    let docs = [TrecDoc {
        docno: "X-1".into(),
        text: "a single document".into(),
    }];
    let server = TcpServer::spawn(
        Librarian::build("X", Analyzer::default(), &docs),
        "127.0.0.1:0",
    )
    .unwrap();
    let transport = TcpTransport::connect(server.addr()).unwrap();
    let mut r = Receptionist::new(vec![transport], Analyzer::default());
    r.query(Methodology::CentralNothing, "document", 5).unwrap();
    let traffic = r.traffic();
    assert_eq!(traffic.round_trips, 1);
    assert!(traffic.bytes_sent > 0 && traffic.bytes_received > 0);
    server.shutdown();
}
