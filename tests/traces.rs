//! Query-lifecycle observability: golden traces, cross-driver schema
//! equality, and trace-vs-counter consistency.
//!
//! Every traced operation yields a structured `QueryTrace` whose
//! *normalized* form is deterministic: timestamps zeroed, concurrent
//! arrival order canonicalized per librarian. The normalized JSON for
//! each methodology is committed under `tests/fixtures/traces/` and
//! asserted here; regenerate with `UPDATE_TRACE_GOLDENS=1 cargo test
//! --test traces`. On mismatch the actual trace is written to
//! `target/trace-diffs/` and the structural diff is printed.

use std::collections::HashSet;
use std::path::PathBuf;
use std::time::Duration;

use teraphim::core::sim::{SimDriver, SimMode};
use teraphim::core::{CiParams, Librarian, Methodology, Receptionist};
use teraphim::corpus::{CorpusSpec, SyntheticCorpus};
use teraphim::net::tcp::{TcpServer, TcpTransport};
use teraphim::net::{
    DispatchMode, FaultPlan, FaultyTransport, InProcTransport, RetryPolicy, RetryTransport,
};
use teraphim::obs::{diff_json, EventKind, Phase, QueryTrace, SpanTree, TraceSink};
use teraphim::simnet::{CostModel, Topology};
use teraphim::text::sgml::TrecDoc;
use teraphim::text::Analyzer;

const CI_PARAMS: CiParams = CiParams {
    group_size: 10,
    k_prime: 50,
};
const K: usize = 10;

fn corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(&CorpusSpec::small(33))
}

/// A fresh receptionist over in-process librarians, in sequential
/// dispatch — the canonical event order the goldens are recorded in.
fn receptionist(corpus: &SyntheticCorpus) -> Receptionist<InProcTransport<Librarian>> {
    let transports = corpus
        .subcollections()
        .iter()
        .map(|s| InProcTransport::new(Librarian::build(&s.name, Analyzer::default(), &s.docs)))
        .collect();
    let mut r = Receptionist::new(transports, Analyzer::default());
    r.set_dispatch_mode(DispatchMode::Sequential);
    r
}

fn sim_driver(corpus: &SyntheticCorpus) -> SimDriver {
    let parts: Vec<(&str, &[TrecDoc])> = corpus
        .subcollections()
        .iter()
        .map(|s| (s.name.as_str(), s.docs.as_slice()))
        .collect();
    SimDriver::new(&parts, Analyzer::default(), CI_PARAMS).unwrap()
}

/// Runs one traced query on a fresh receptionist (tracing enabled
/// *after* any preprocessing, so exactly one trace comes back).
fn real_trace(corpus: &SyntheticCorpus, methodology: Methodology, query: &str) -> QueryTrace {
    let mut r = receptionist(corpus);
    match methodology {
        Methodology::CentralNothing => {}
        Methodology::CentralVocabulary => r.enable_cv().unwrap(),
        Methodology::CentralIndex => r.enable_ci(CI_PARAMS).unwrap(),
    }
    let sink = r.enable_tracing();
    r.query(methodology, query, K).unwrap();
    let mut traces = sink.take_traces();
    assert_eq!(traces.len(), 1, "one traced op, one trace");
    traces.remove(0)
}

/// Runs one traced query on the simulation driver (virtual time).
fn sim_trace(driver: &mut SimDriver, mode: SimMode, query: &str) -> QueryTrace {
    let sink = driver.enable_tracing();
    driver
        .time_query(
            &Topology::multi_disk(4),
            &CostModel::default(),
            mode,
            query,
            K,
        )
        .unwrap();
    let mut traces = sink.take_traces();
    assert_eq!(traces.len(), 1);
    driver.set_trace_sink(TraceSink::disabled());
    traces.remove(0)
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/traces")
        .join(format!("{name}.json"))
}

/// Asserts `trace` (normalized) matches the committed golden fixture.
fn assert_matches_golden(name: &str, trace: &QueryTrace) {
    let actual = trace.normalized().to_json() + "\n";
    let path = fixture_path(name);
    if std::env::var("UPDATE_TRACE_GOLDENS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_TRACE_GOLDENS=1 cargo test --test traces",
            path.display()
        )
    });
    if let Some(diff) = diff_json(&expected, &actual) {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/trace-diffs");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join(format!("{name}.actual.json"));
        std::fs::write(&out, &actual).unwrap();
        panic!(
            "golden trace `{name}` diverged (actual written to {}):\n{diff}",
            out.display()
        );
    }
}

/// Asserts a stitched span tree (from a normalized trace) matches its
/// committed golden fixture, with the same regeneration/diff protocol
/// as the event-stream goldens.
fn assert_span_golden(name: &str, tree: &SpanTree) {
    let actual = tree.to_json();
    let path = fixture_path(name);
    if std::env::var("UPDATE_TRACE_GOLDENS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_TRACE_GOLDENS=1 cargo test --test traces",
            path.display()
        )
    });
    if let Some(diff) = diff_json(&expected, &actual) {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/trace-diffs");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join(format!("{name}.actual.json"));
        std::fs::write(&out, &actual).unwrap();
        panic!(
            "golden span tree `{name}` diverged (actual written to {}):\n{diff}",
            out.display()
        );
    }
}

#[test]
fn golden_traces_for_all_methodologies() {
    let corpus = corpus();
    let query = corpus.short_queries()[0].text.clone();

    // MS has no fan-out on the real driver; its golden comes from the
    // simulator, which emits the same schema in virtual time.
    let mut driver = sim_driver(&corpus);
    assert_matches_golden("ms", &sim_trace(&mut driver, SimMode::MonoServer, &query));

    assert_matches_golden(
        "cn",
        &real_trace(&corpus, Methodology::CentralNothing, &query),
    );
    assert_matches_golden(
        "cv",
        &real_trace(&corpus, Methodology::CentralVocabulary, &query),
    );
    assert_matches_golden(
        "ci",
        &real_trace(&corpus, Methodology::CentralIndex, &query),
    );
}

/// Runs one traced query against real TCP servers (one per
/// subcollection), sequential dispatch — the wire path: span contexts
/// travel in v1 envelopes and the servers echo measured phase timings,
/// which normalization then zeroes.
fn tcp_trace(corpus: &SyntheticCorpus, methodology: Methodology, query: &str) -> QueryTrace {
    let servers: Vec<TcpServer> = corpus
        .subcollections()
        .iter()
        .map(|s| {
            TcpServer::spawn(
                Librarian::build(&s.name, Analyzer::default(), &s.docs),
                "127.0.0.1:0",
            )
            .expect("loopback server spawns")
        })
        .collect();
    let transports: Vec<TcpTransport> = servers
        .iter()
        .map(|s| TcpTransport::connect(s.addr()).expect("loopback connects"))
        .collect();
    let mut r = Receptionist::new(transports, Analyzer::default());
    r.set_dispatch_mode(DispatchMode::Sequential);
    match methodology {
        Methodology::CentralNothing => {}
        Methodology::CentralVocabulary => r.enable_cv().unwrap(),
        Methodology::CentralIndex => r.enable_ci(CI_PARAMS).unwrap(),
    }
    let sink = r.enable_tracing();
    r.query(methodology, query, K).unwrap();
    let mut traces = sink.take_traces();
    assert_eq!(traces.len(), 1, "one traced op, one trace");
    traces.remove(0)
}

/// The tentpole invariant, pinned as span-tree goldens: stitching the
/// normalized trace of one query yields the byte-identical span tree on
/// the simulator (virtual time, zero server clocks), the in-process
/// driver, and real TCP (measured phases, zeroed by normalization).
/// MS is pinned from the simulator alone — the real driver has no
/// mono-server fan-out to stitch.
#[test]
fn golden_span_trees_shared_by_sim_inproc_and_tcp() {
    let corpus = corpus();
    let query = corpus.short_queries()[0].text.clone();
    let mut driver = sim_driver(&corpus);
    driver.skipping = true;
    driver.dispatch = teraphim::core::sim::SimDispatch::Sequential;

    let ms = sim_trace(&mut driver, SimMode::MonoServer, &query).normalized();
    assert_span_golden("span_ms", &SpanTree::from_trace(&ms));

    for (name, methodology) in [
        ("span_cn", Methodology::CentralNothing),
        ("span_cv", Methodology::CentralVocabulary),
        ("span_ci", Methodology::CentralIndex),
    ] {
        let real = real_trace(&corpus, methodology, &query).normalized();
        let tcp = tcp_trace(&corpus, methodology, &query).normalized();
        let mut sim =
            sim_trace(&mut driver, SimMode::Distributed(methodology), &query).normalized();
        // The simulator additionally times step 4 (document fetch); the
        // real `query` path stops after the merge. Strip that tail so
        // the three trees cover the same lifecycle.
        let n = sim.events.len();
        assert_eq!(
            sim.events[n - 2].kind,
            EventKind::PhaseStart {
                phase: Phase::DocFetch
            }
        );
        sim.events.truncate(n - 2);

        let real_tree = SpanTree::from_trace(&real);
        let tcp_tree = SpanTree::from_trace(&tcp);
        let sim_tree = SpanTree::from_trace(&sim);
        assert_eq!(
            real_tree.to_json(),
            tcp_tree.to_json(),
            "{name}: in-process and TCP span trees must be byte-identical"
        );
        assert_eq!(
            real_tree.to_json(),
            sim_tree.to_json(),
            "{name}: in-process and simulated span trees must be byte-identical"
        );
        assert_span_golden(name, &real_tree);
    }
}

/// The cache's trace vocabulary, pinned as goldens: a warmed CV query
/// replayed from the result cache (a `cache_hit` trace with no
/// fan-out) and a fresh CV query straight after it (a `cache_miss`
/// trace carrying the full fan-out plus the term-statistics probes).
#[test]
fn golden_cache_hit_and_miss_cv_traces() {
    let corpus = corpus();
    let mut r = receptionist(&corpus);
    r.enable_cv().unwrap();
    r.enable_cache(teraphim::core::CacheConfig::default());
    let warm = corpus.short_queries()[0].text.clone();
    let cold = corpus.short_queries()[1].text.clone();
    // Warm the result cache before tracing starts, so the two traces
    // below are exactly the hit-then-miss pair.
    r.query(Methodology::CentralVocabulary, &warm, K).unwrap();

    let sink = r.enable_tracing();
    r.query(Methodology::CentralVocabulary, &warm, K).unwrap();
    r.query(Methodology::CentralVocabulary, &cold, K).unwrap();
    let traces = sink.take_traces();
    assert_eq!(traces.len(), 2, "two traced queries, two traces");

    let tags =
        |t: &QueryTrace| -> Vec<&'static str> { t.events.iter().map(|e| e.kind.tag()).collect() };
    assert!(
        tags(&traces[0]).contains(&"cache_hit"),
        "warmed query must hit: {:?}",
        tags(&traces[0])
    );
    assert!(
        !tags(&traces[0]).contains(&"sent"),
        "a result-cache hit must not fan out: {:?}",
        tags(&traces[0])
    );
    assert!(
        tags(&traces[1]).contains(&"cache_miss"),
        "fresh query must miss: {:?}",
        tags(&traces[1])
    );
    assert!(tags(&traces[1]).contains(&"sent"));

    assert_matches_golden("cv_cache_hit", &traces[0]);
    assert_matches_golden("cv_cache_miss", &traces[1]);
}

/// Concurrent dispatch interleaves arrivals nondeterministically; the
/// normalized trace must be identical to the sequential one.
#[test]
fn concurrent_trace_normalizes_to_sequential() {
    let corpus = corpus();
    let query = corpus.short_queries()[1].text.clone();
    for methodology in Methodology::ALL {
        let sequential = real_trace(&corpus, methodology, &query);

        let mut conc = receptionist(&corpus);
        conc.set_dispatch_mode(DispatchMode::Concurrent);
        match methodology {
            Methodology::CentralNothing => {}
            Methodology::CentralVocabulary => conc.enable_cv().unwrap(),
            Methodology::CentralIndex => conc.enable_ci(CI_PARAMS).unwrap(),
        }
        let sink = conc.enable_tracing();
        conc.query(methodology, &query, K).unwrap();
        let concurrent = sink.take_traces().remove(0);

        assert_eq!(
            concurrent.normalized(),
            sequential.normalized(),
            "{methodology}: concurrent trace must normalize to the sequential one"
        );
    }
}

/// The simulated and real drivers must emit byte-identical normalized
/// traces for the query lifecycle they share (the simulator additionally
/// times step 4, appending one `doc_fetch` phase at the end).
#[test]
fn sim_and_real_traces_share_schema() {
    let corpus = corpus();
    let mut driver = sim_driver(&corpus);
    // The real librarians score CI candidates with skip-based scoring;
    // flip the simulator onto the same path so `scored` events agree.
    driver.skipping = true;
    driver.dispatch = teraphim::core::sim::SimDispatch::Sequential;
    for methodology in Methodology::ALL {
        for query in corpus.short_queries().iter().take(3) {
            let real = real_trace(&corpus, methodology, &query.text).normalized();
            let sim =
                sim_trace(&mut driver, SimMode::Distributed(methodology), &query.text).normalized();

            assert_eq!(real.op, sim.op);
            assert_eq!(real.methodology, sim.methodology);
            assert_eq!(real.query_id, sim.query_id);
            assert_eq!(real.k, sim.k);
            assert!(real.complete && sim.complete);

            // The sim's last two events are the doc-fetch phase the real
            // `query` path (steps 1–3) does not perform.
            let n = sim.events.len();
            assert!(n >= 2, "{methodology}: sim trace too short");
            assert_eq!(
                sim.events[n - 2].kind,
                EventKind::PhaseStart {
                    phase: Phase::DocFetch
                }
            );
            assert_eq!(
                sim.events[n - 1].kind,
                EventKind::PhaseEnd {
                    phase: Phase::DocFetch
                }
            );
            assert_eq!(
                real.events,
                sim.events[..n - 2],
                "{methodology} query {}: sim and real traces diverged",
                query.id
            );
        }
    }
}

/// CI's defining budget, asserted from the trace: at most k'·G
/// candidates are ever scored, and every returned document came out of
/// the expanded candidate set.
#[test]
fn ci_trace_obeys_candidate_budget() {
    use proptest::test_runner::{case_count, case_seed, TestRng};

    let corpus = corpus();
    let mut r = receptionist(&corpus);
    r.enable_ci(CI_PARAMS).unwrap();
    let sink = r.enable_tracing();
    let queries: Vec<String> = corpus
        .short_queries()
        .iter()
        .map(|q| q.text.clone())
        .collect();

    let budget = CI_PARAMS.k_prime as u64 * u64::from(CI_PARAMS.group_size);
    let cases = case_count().min(24);
    for case in 0..cases {
        let mut rng = TestRng::new(case_seed("traces::ci_trace_obeys_candidate_budget", case));
        let qi = rng.index(queries.len());
        let k = 1 + rng.index(20);
        sink.clear();
        let hits = r
            .query(Methodology::CentralIndex, &queries[qi], k)
            .unwrap_or_else(|e| panic!("case {case} (query {qi}, k={k}): {e}"));
        let traces = sink.take_traces();
        assert_eq!(traces.len(), 1, "case {case}: expected exactly one trace");
        let trace = &traces[0];

        let metrics = trace.metrics();
        assert!(
            metrics.scored_candidates <= budget,
            "case {case}: scored {} candidates, budget k'*G = {budget}",
            metrics.scored_candidates
        );

        let mut expanded: HashSet<(u32, u32)> = HashSet::new();
        for event in &trace.events {
            if let EventKind::Expansion { candidates, .. } = &event.kind {
                for owner in candidates {
                    for &doc in &owner.docs {
                        expanded.insert((owner.librarian, doc));
                    }
                }
            }
        }
        assert!(
            !expanded.is_empty(),
            "case {case}: CI trace must carry an expansion"
        );
        for hit in &hits {
            assert!(
                expanded.contains(&(hit.librarian as u32, hit.doc)),
                "case {case}: hit ({}, {}) not in the expanded candidate set",
                hit.librarian,
                hit.doc
            );
        }
    }
}

fn four_librarians() -> Vec<Librarian> {
    vec![
        Librarian::from_texts("A", &[("A-1", "cats and dogs"), ("A-2", "just cats")]),
        Librarian::from_texts("B", &[("B-1", "dogs alone"), ("B-2", "cats dogs birds")]),
        Librarian::from_texts("C", &[("C-1", "cats chasing birds"), ("C-2", "quiet cats")]),
        Librarian::from_texts("D", &[("D-1", "birds and cats"), ("D-2", "sleeping dogs")]),
    ]
}

type FaultyStack = RetryTransport<FaultyTransport<InProcTransport<Librarian>>>;

/// One shared sink wired through the receptionist *and* the transport
/// decorators, with a transport-layer `fail_nth(0)` on librarian 2 so
/// the first query costs it one retry.
fn traced_faulty_receptionist(mode: DispatchMode) -> (Receptionist<FaultyStack>, TraceSink) {
    let sink = TraceSink::new();
    let transports: Vec<FaultyStack> = four_librarians()
        .into_iter()
        .enumerate()
        .map(|(lib, service)| {
            let plan = if lib == 2 {
                FaultPlan::new().fail_nth(0)
            } else {
                FaultPlan::new()
            };
            let faulty = FaultyTransport::new(InProcTransport::new(service), plan)
                .with_trace(sink.clone(), lib as u32);
            RetryTransport::new(
                faulty,
                RetryPolicy {
                    max_retries: 2,
                    backoff: Duration::ZERO,
                },
            )
            .with_trace(sink.clone(), lib as u32)
        })
        .collect();
    let mut r = Receptionist::new(transports, Analyzer::default());
    r.set_dispatch_mode(mode);
    r.set_trace_sink(sink.clone());
    (r, sink)
}

/// The trace's per-librarian byte/message sums must equal the transport
/// counters — under both dispatch modes, and with a client-side fault
/// plus one retry in the schedule. (Client-side `Fail` consumes no inner
/// bytes, so the retried exchange is counted exactly once by both.)
#[test]
fn trace_totals_match_transport_counters() {
    for mode in [DispatchMode::Sequential, DispatchMode::Concurrent] {
        let (mut r, sink) = traced_faulty_receptionist(mode);
        let hits = r
            .query(Methodology::CentralNothing, "cats dogs", 8)
            .unwrap();
        assert!(!hits.is_empty());

        let traces = sink.take_traces();
        assert_eq!(traces.len(), 1);
        let trace = &traces[0];

        // The injected fault and its retry are on the record.
        let tags: Vec<(&str, Option<u32>)> = trace
            .events
            .iter()
            .map(|e| (e.kind.tag(), e.kind.librarian()))
            .collect();
        assert!(
            tags.contains(&("fault", Some(2))),
            "{mode:?}: missing fault event: {tags:?}"
        );
        assert!(
            tags.contains(&("retry", Some(2))),
            "{mode:?}: missing retry event: {tags:?}"
        );

        // Per-librarian: trace sums == transport counters.
        let from_trace = trace.per_librarian_traffic();
        let from_transports = r.per_librarian_traffic();
        assert_eq!(from_trace.len(), from_transports.len());
        for (row, stats) in from_trace.iter().zip(&from_transports) {
            assert_eq!(
                row.bytes_sent, stats.bytes_sent,
                "{mode:?} librarian {}: sent bytes",
                row.librarian
            );
            assert_eq!(
                row.bytes_received, stats.bytes_received,
                "{mode:?} librarian {}: received bytes",
                row.librarian
            );
            assert_eq!(
                row.messages,
                2 * stats.round_trips,
                "{mode:?} librarian {}: one sent + one reply per round trip",
                row.librarian
            );
        }

        // And in aggregate against the receptionist's rollup.
        let metrics = trace.metrics();
        let total = r.traffic();
        assert_eq!(metrics.bytes_sent, total.bytes_sent);
        assert_eq!(metrics.bytes_received, total.bytes_received);
        assert_eq!(metrics.retries, 1);
        assert_eq!(metrics.faults, 1);
    }
}

/// Builds one churn batch for shard `lib` at epoch `epoch` — the same
/// literal docs on every driver, so the stores and the simulator replay
/// an identical build+append history.
fn asof_batch(lib: usize, epoch: usize) -> Vec<TrecDoc> {
    (0..2)
        .map(|i| TrecDoc {
            docno: format!("ASOF-{lib}-{epoch}-{i}"),
            text: format!("asof churn epoch {epoch} doc {i} shard {lib}"),
        })
        .collect()
}

/// A receptionist over librarians reopened from the serialized as-of
/// collections, sequential dispatch (the golden event order).
fn asof_receptionist(shards: &[Vec<u8>], epoch: u64) -> Receptionist<InProcTransport<Librarian>> {
    let transports = shards
        .iter()
        .map(|bytes| {
            let collection =
                teraphim::engine::Collection::from_bytes(bytes).expect("as-of view deserializes");
            let mut lib = Librarian::from_collection(collection);
            lib.set_epoch(epoch);
            InProcTransport::new(lib)
        })
        .collect();
    let mut r = Receptionist::new(transports, Analyzer::default());
    r.set_dispatch_mode(DispatchMode::Sequential);
    r
}

/// Store-backed "as-of" querying, pinned as goldens: every shard's
/// store commits two batches past creation, then the query is answered
/// from the *earlier* durable epoch via `collection_at(1)`. The
/// normalized CV trace is byte-identical between in-process and TCP
/// librarians opened from the store, and stitches to the same span tree
/// as a simulator replaying the identical build+append history —
/// extending the span-tree contract to store-backed librarians.
#[test]
fn golden_asof_cv_trace_shared_by_sim_inproc_and_tcp() {
    use teraphim::store::{IndexStore, TempDir};

    const ASOF: u64 = 1;
    let corpus = corpus();
    let query = corpus.short_queries()[0].text.clone();

    // One store per shard; epoch 2 is live, epoch 1 is the pinned view.
    let root = TempDir::new("asof-trace").expect("tempdir");
    let mut asof_shards: Vec<Vec<u8>> = Vec::new();
    for (lib, s) in corpus.subcollections().iter().enumerate() {
        let dir = root.path().join(format!("shard-{lib}"));
        let (mut store, _) = IndexStore::create(&dir, &s.name, &Analyzer::default(), &s.docs)
            .expect("fresh shard store creates");
        store
            .log_batch(&asof_batch(lib, 1))
            .expect("epoch 1 commits");
        store
            .log_batch(&asof_batch(lib, 2))
            .expect("epoch 2 commits");
        assert_eq!(store.epoch(), 2);
        let view = store.collection_at(ASOF).expect("as-of replay");
        asof_shards.push(view.to_bytes());
    }

    // In-process: trace the CV query against the as-of librarians.
    let mut r = asof_receptionist(&asof_shards, ASOF);
    r.enable_cv().unwrap();
    let sink = r.enable_tracing();
    r.query(Methodology::CentralVocabulary, &query, K).unwrap();
    let mut traces = sink.take_traces();
    assert_eq!(traces.len(), 1);
    let real = traces.remove(0).normalized();

    // TCP: the same as-of librarians behind real loopback servers.
    let servers: Vec<TcpServer> = asof_shards
        .iter()
        .map(|bytes| {
            let collection =
                teraphim::engine::Collection::from_bytes(bytes).expect("as-of view deserializes");
            let mut lib = Librarian::from_collection(collection);
            lib.set_epoch(ASOF);
            TcpServer::spawn(lib, "127.0.0.1:0").expect("loopback server spawns")
        })
        .collect();
    let transports: Vec<TcpTransport> = servers
        .iter()
        .map(|s| TcpTransport::connect(s.addr()).expect("loopback connects"))
        .collect();
    let mut rt = Receptionist::new(transports, Analyzer::default());
    rt.set_dispatch_mode(DispatchMode::Sequential);
    rt.enable_cv().unwrap();
    let sink = rt.enable_tracing();
    rt.query(Methodology::CentralVocabulary, &query, K).unwrap();
    let mut traces = sink.take_traces();
    assert_eq!(traces.len(), 1);
    let tcp = traces.remove(0).normalized();

    // Simulator: build the base shards, append the epoch-1 batches —
    // the exact history `collection_at(1)` replays from the WAL.
    let mut driver = sim_driver(&corpus);
    driver.skipping = true;
    driver.dispatch = teraphim::core::sim::SimDispatch::Sequential;
    for lib in 0..corpus.subcollections().len() {
        driver
            .append_documents(lib, &asof_batch(lib, 1))
            .expect("sim appends the as-of batch");
    }
    let mut sim = sim_trace(
        &mut driver,
        SimMode::Distributed(Methodology::CentralVocabulary),
        &query,
    )
    .normalized();
    // Strip the simulator's doc-fetch tail (the real `query` path stops
    // after the merge), as in the live-epoch span-tree goldens.
    let n = sim.events.len();
    assert_eq!(
        sim.events[n - 2].kind,
        EventKind::PhaseStart {
            phase: Phase::DocFetch
        }
    );
    sim.events.truncate(n - 2);

    let real_tree = SpanTree::from_trace(&real);
    let tcp_tree = SpanTree::from_trace(&tcp);
    let sim_tree = SpanTree::from_trace(&sim);
    assert_eq!(
        real_tree.to_json(),
        tcp_tree.to_json(),
        "as-of: in-process and TCP span trees must be byte-identical"
    );
    assert_eq!(
        real_tree.to_json(),
        sim_tree.to_json(),
        "as-of: store-backed and simulated span trees must be byte-identical"
    );

    assert_matches_golden("asof_cv", &real);
    assert_span_golden("span_asof_cv", &real_tree);
}

/// Tracing is pay-for-what-you-use: a disabled sink records nothing,
/// and re-enabling the same sink picks events back up.
#[test]
fn disabled_sink_stays_empty_and_reenables() {
    let corpus = corpus();
    let mut r = receptionist(&corpus);
    let query = corpus.short_queries()[0].text.clone();

    let sink = r.enable_tracing();
    sink.set_enabled(false);
    r.query(Methodology::CentralNothing, &query, K).unwrap();
    assert!(sink.take_traces().is_empty());

    sink.set_enabled(true);
    r.query(Methodology::CentralNothing, &query, K).unwrap();
    let traces = sink.take_traces();
    assert_eq!(traces.len(), 1);
    assert_eq!(traces[0].op, "query");
    assert_eq!(traces[0].methodology.as_deref(), Some("CN"));
}
