//! Offline vendored subset of the `criterion` API.
//!
//! The build environment has no registry access, so this crate supplies
//! a compatible benchmark harness: [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`Throughput`],
//! [`BatchSize`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is honest but simple: after a warm-up call, the iteration
//! count doubles until a batch takes at least ~100 ms of wall clock, and
//! the mean per-iteration time of the final batch is reported. There are
//! no statistics, plots or saved baselines; a positional CLI argument
//! filters benchmarks by substring (other `cargo bench` flags are
//! ignored).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Batching hints for [`Bencher::iter_batched`] (accepted for API
/// compatibility; all sizes are measured the same way here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Runs one benchmark body and records its per-iteration time.
#[derive(Debug, Default)]
pub struct Bencher {
    per_iter: Option<Duration>,
}

/// Doubling batches until the measured window is long enough for the
/// clock resolution to be irrelevant.
const MIN_WINDOW: Duration = Duration::from_millis(100);
const MAX_ITERS: u64 = 1 << 22;

impl Bencher {
    /// Measures `routine`, timing everything it does.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_WINDOW || n >= MAX_ITERS {
                self.per_iter = Some(elapsed / u32::try_from(n).unwrap_or(u32::MAX));
                return;
            }
            n *= 2;
        }
    }

    /// Measures `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut n: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_WINDOW || n >= MAX_ITERS {
                self.per_iter = Some(elapsed / u32::try_from(n).unwrap_or(u32::MAX));
                return;
            }
            n *= 2;
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn format_rate(per_iter: Duration, throughput: Throughput) -> String {
    let secs = per_iter.as_secs_f64().max(1e-12);
    match throughput {
        Throughput::Bytes(b) => {
            let rate = b as f64 / secs;
            if rate >= 1e9 {
                format!("{:.3} GiB/s", rate / (1u64 << 30) as f64)
            } else {
                format!("{:.3} MiB/s", rate / (1u64 << 20) as f64)
            }
        }
        Throughput::Elements(e) => format!("{:.3} Melem/s", e as f64 / secs / 1e6),
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut body: F) {
    let mut bencher = Bencher::default();
    body(&mut bencher);
    let per_iter = bencher
        .per_iter
        .expect("benchmark body never called Bencher::iter");
    let rate = throughput
        .map(|t| format!("  thrpt: {}", format_rate(per_iter, t)))
        .unwrap_or_default();
    println!("{id:<48} time: {:>12}{rate}", format_duration(per_iter));
}

/// The benchmark driver: holds the CLI filter and hands out groups.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads the benchmark filter from the command line (first
    /// non-flag argument, as under `cargo bench -- <filter>`).
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion { filter }
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_ref().is_none_or(|f| id.contains(f))
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, body: F) -> &mut Self {
        if self.selected(id) {
            run_one(id, None, body);
        }
        self
    }
}

/// A named group of benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares the work done per iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        body: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        if self.criterion.selected(&full) {
            run_one(&full, self.throughput, body);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function running each target against one
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.per_iter.unwrap() > Duration::ZERO);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::default();
        b.iter_batched(
            || vec![1u8; 16],
            |v| v.iter().map(|&x| u64::from(x)).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.per_iter.is_some());
    }

    #[test]
    fn filter_selects_substrings() {
        let c = Criterion {
            filter: Some("fan".into()),
        };
        assert!(c.selected("fanout/S=4"));
        assert!(!c.selected("merge/k=10"));
    }

    #[test]
    fn formatting_is_scaled() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(1500)).ends_with("ms"));
        let rate = format_rate(Duration::from_millis(1), Throughput::Elements(1000));
        assert!(rate.contains("Melem/s"));
    }
}
