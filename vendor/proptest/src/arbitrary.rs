//! The `any::<T>()` entry point for types with a canonical strategy.

use crate::strategy::Strategy;
use std::ops::RangeInclusive;

/// Types with a default full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any` returns.
    type Strategy: Strategy<Value = Self>;

    /// The full-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy covering all of `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = crate::bool::BoolStrategy;

    fn arbitrary() -> Self::Strategy {
        crate::bool::ANY
    }
}
