//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A fair coin, mirroring `proptest::bool::ANY`.
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

/// Generates `true` and `false` with equal probability.
pub const ANY: BoolStrategy = BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
