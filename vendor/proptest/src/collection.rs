//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.min + rng.index(self.max_inclusive - self.min + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

/// Generates `Vec`s whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `BTreeSet`s whose size falls in `size` (element collisions
/// permitting — matching upstream, the generator retries a bounded
/// number of times to reach the sampled size).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target * 10 + 16 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
