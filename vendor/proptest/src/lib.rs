//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no registry access, so this crate supplies
//! the slice of `proptest` the workspace uses: the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros, the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple
//! strategies, regex-subset string strategies, and the
//! [`collection::vec`] / [`collection::btree_set`] builders.
//!
//! Failing cases are *not* shrunk; the failure message reports the case
//! number and seed so a run can be reproduced (generation is fully
//! deterministic per test). Case count defaults to 64 and can be raised
//! with `PROPTEST_CASES`.

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let cases = $crate::test_runner::case_count();
            let mut rejected = 0u32;
            let mut case = 0u32;
            while case < cases {
                let seed = $crate::test_runner::case_seed(
                    concat!(module_path!(), "::", stringify!($name)),
                    case + rejected,
                );
                let mut rng = $crate::test_runner::TestRng::new(seed);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => case += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > cases * 16 {
                            panic!("proptest: too many rejected cases (prop_assume)");
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {case} failed (seed {seed:#x}): {msg}"
                        );
                    }
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Fails the current case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(left != right, "assertion failed: {:?} == {:?}", left, right);
    }};
}

/// Discards the current case (it is regenerated, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        fn ranges_and_vecs(
            xs in crate::collection::vec(0u32..100, 0..20),
            f in 0.0f64..1.0,
            s in "[a-c]{2,4}",
        ) {
            prop_assert!(xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!((2..=4).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        fn tuples_and_sets(
            set in crate::collection::btree_set(0u32..50, 0..10),
            (a, b) in (0u8..10, 1u64..5),
        ) {
            prop_assert!(set.len() < 10);
            prop_assert!(a < 10);
            prop_assert!((1..5).contains(&b));
        }

        fn assume_discards(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }

        fn maps_apply(v in crate::collection::vec(crate::bool::ANY, 0..8).prop_map(|v| v.len())) {
            prop_assert!(v < 8);
        }

        fn any_u8_covers_all(b in any::<u8>()) {
            let _ = b;
        }
    }

    #[test]
    fn string_patterns_parse() {
        let mut rng = crate::test_runner::TestRng::new(42);
        for pattern in [
            "[a-d]",
            "[a-e]{1,3}",
            "[a-z ]{0,80}",
            "[A-Z]{2}-[0-9]{4}",
            ".{0,400}",
            "\\PC{0,500}",
            "[a-zA-Z0-9,.;:!? éü-]{0,200}",
        ] {
            for _ in 0..20 {
                let s = Strategy::generate(&pattern, &mut rng);
                let _ = s;
            }
        }
        let dash = Strategy::generate(&"[A-Z]{2}-[0-9]{4}", &mut rng);
        assert_eq!(dash.len(), 7);
        assert_eq!(dash.as_bytes()[2], b'-');
    }
}
