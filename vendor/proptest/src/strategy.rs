//! The [`Strategy`] trait and the core strategy implementations.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree or shrinking: a
/// strategy is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "empty range strategy");
                let span = (high as i128 - low as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// String literals are regex-subset strategies (see [`crate::string`]).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}
