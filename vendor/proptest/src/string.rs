//! Regex-subset string generation.
//!
//! Supports the pattern language the workspace's tests actually use:
//! character classes (`[a-z0-9,. ]`, including ranges, escapes and
//! multi-byte literals), `.` (printable ASCII), `\PC` (any non-control
//! character, weighted towards ASCII with some multi-byte samples),
//! literal characters, and `{n}` / `{m,n}` repetition. Alternation,
//! groups and unbounded repetition are not supported.

use crate::test_runner::TestRng;

/// Non-ASCII, non-control characters mixed into `.`/`\PC` output so
/// multi-byte UTF-8 paths get exercised.
const WIDE_CHARS: &[char] = ['é', 'ü', 'ß', 'λ', 'Ж', '中', '€', '—', '☃'].as_slice();

#[derive(Debug, Clone)]
enum CharSet {
    /// Explicit characters from a `[...]` class or a literal.
    Class(Vec<char>),
    /// `.` or `\PC`: printable ASCII plus occasional wide characters.
    Printable,
}

impl CharSet {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Class(chars) => chars[rng.index(chars.len())],
            CharSet::Printable => {
                if rng.index(10) == 0 {
                    WIDE_CHARS[rng.index(WIDE_CHARS.len())]
                } else {
                    char::from(b' ' + rng.index(95) as u8)
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Atom {
    set: CharSet,
    min: usize,
    max: usize,
}

/// Resolves a backslash escape to the character it denotes; unknown
/// escapes (including class metacharacters like `\-` and `\]`) stand for
/// themselves.
fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                i += 1;
                let mut class = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars.get(i).copied().unwrap_or('\\'))
                    } else {
                        chars[i]
                    };
                    // `a-z` range when '-' sits between two class members.
                    if chars.get(i + 1) == Some(&'-') && i + 2 < chars.len() && chars[i + 2] != ']'
                    {
                        let hi = chars[i + 2];
                        assert!(c <= hi, "bad class range in pattern {pattern:?}");
                        class.extend(c..=hi);
                        i += 3;
                    } else {
                        class.push(c);
                        i += 1;
                    }
                }
                assert!(
                    chars.get(i) == Some(&']'),
                    "unterminated class in pattern {pattern:?}"
                );
                i += 1;
                assert!(!class.is_empty(), "empty class in pattern {pattern:?}");
                CharSet::Class(class)
            }
            '.' => {
                i += 1;
                CharSet::Printable
            }
            '\\' => {
                i += 1;
                let esc = chars.get(i).copied().unwrap_or('\\');
                i += 1;
                if esc == 'P' || esc == 'p' {
                    // `\PC` / `\pL`-style one-letter unicode category;
                    // generated as "printable".
                    i += 1;
                    CharSet::Printable
                } else {
                    CharSet::Class(vec![unescape(esc)])
                }
            }
            c => {
                i += 1;
                CharSet::Class(vec![c])
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            i += 1;
            let mut bounds = String::new();
            while i < chars.len() && chars[i] != '}' {
                bounds.push(chars[i]);
                i += 1;
            }
            assert!(
                chars.get(i) == Some(&'}'),
                "unterminated repetition in pattern {pattern:?}"
            );
            i += 1;
            match bounds.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad repetition lower bound"),
                    n.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = bounds.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in pattern {pattern:?}");
        atoms.push(Atom { set, min, max });
    }
    atoms
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let count = atom.min + rng.index(atom.max - atom.min + 1);
        for _ in 0..count {
            out.push(atom.set.sample(rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_ranges_and_literals() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = generate("[a-cx]{1,5}", &mut rng);
            assert!((1..=5).contains(&s.chars().count()));
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | 'x')));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut rng = TestRng::new(2);
        let mut saw_dash = false;
        for _ in 0..500 {
            let s = generate("[a-]{1}", &mut rng);
            assert!(s == "a" || s == "-");
            saw_dash |= s == "-";
        }
        assert!(saw_dash);
    }

    #[test]
    fn printable_patterns_have_no_control_chars() {
        let mut rng = TestRng::new(3);
        for _ in 0..50 {
            let s = generate("\\PC{0,100}", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
            let d = generate(".{0,100}", &mut rng);
            assert!(d.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn fixed_counts_and_concatenation() {
        let mut rng = TestRng::new(4);
        let s = generate("[A-Z]{2}-[0-9]{4}", &mut rng);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 7);
        assert!(chars[0].is_ascii_uppercase() && chars[1].is_ascii_uppercase());
        assert_eq!(chars[2], '-');
        assert!(chars[3..].iter().all(char::is_ascii_digit));
    }
}
