//! Deterministic case generation and failure plumbing.

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` and is regenerated.
    Reject,
    /// The case failed an assertion.
    Fail(String),
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A stable per-case seed: FNV-1a over the test path, mixed with the
/// case number. Reruns of the same binary generate identical inputs.
pub fn case_seed(test_path: &str, case: u32) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ (u64::from(case) << 1 | 1)
}

/// The generator handed to strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty domain");
        (self.next_u64() % n as u64) as usize
    }
}
