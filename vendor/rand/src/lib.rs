//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so this crate provides
//! the small slice of `rand` the workspace actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, and [`Rng::gen_bool`]. The generator is a splitmix64
//! stream — statistically solid for synthetic-corpus generation, with a
//! stable output sequence across builds (unlike upstream `StdRng`, whose
//! algorithm is explicitly unspecified).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform double in `[0, 1)` using the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`. Panics if the range is
    /// empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`. Panics if `low > high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + offset) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * unit_f64(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0u8..=255);
            let _ = i;
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn works_through_dyn_and_unsized() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0usize..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sample(&mut rng) < 10);
    }
}
